//! The paper's §6.4 experiment: maintaining three similar materialized
//! views after inserts into `customer`, with the maintenance expressions
//! optimized as one CSE-sharing batch.
//!
//! Run with: `cargo run --release --example view_maintenance`

use cse_bench::workloads;
use similar_subexpr::prelude::*;

fn main() {
    let cfg = CseConfig::default();
    let mut catalog = generate_catalog(&TpchConfig::new(0.005));

    // Create the three views (the Example 1 queries as view definitions).
    for (name, def) in workloads::maintenance_views() {
        create_materialized_view(&mut catalog, name, &def, &cfg).expect("create view");
        let rows = catalog.table(name).unwrap().row_count();
        println!("created {name}: {rows} rows");
    }

    // Insert 500 new customers; all three views are affected.
    let inserts = cse_bench::experiments::new_customers(&catalog, 500);
    let report = maintain_insert(&mut catalog, "customer", inserts, &cfg).expect("maintain");

    println!(
        "\nmaintained {} views from a {}-row delta in {:?}",
        report.views.len(),
        report.delta_rows,
        report.total_time
    );
    println!(
        "the maintenance batch shared {} covering subexpression candidate(s); \
         estimated cost {:.1} (baseline {:.1})",
        report.cse.candidates.len(),
        report.cse.final_cost,
        report.cse.baseline_cost
    );
    for name in &report.views {
        let rows = catalog.table(name).unwrap().row_count();
        println!("  {name}: {rows} rows after refresh");
    }
}
