//! Candidate introspection: print the covering-subexpression candidates
//! the optimizer generates for the paper's Example 1 batch, with and
//! without heuristic pruning (compare against Figure 6 of the paper).
//!
//! Run with: `cargo run --release --example inspect_candidates`

use similar_subexpr::prelude::*;

const BATCH: &str = "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq from customer, orders, lineitem where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20 group by c_nationkey, c_mktsegment;
select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq from customer, orders, lineitem where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25 group by c_nationkey;
select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq from customer, orders, lineitem, nation where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey and o_orderdate < '1996-07-01' and c_nationkey > 2 and c_nationkey < 24 group by n_regionkey;";

fn main() {
    let catalog = generate_catalog(&TpchConfig::new(0.002));
    for (name, cfg) in [
        ("heuristics", CseConfig::default()),
        ("no-heuristics", CseConfig::no_heuristics()),
    ] {
        let o = optimize_sql(&catalog, BATCH, &cfg).unwrap();
        println!(
            "== {name}: signatures={} candidates={} cse_opts={} base={:.1} final={:.1} spools={}",
            o.report.sharable_signatures,
            o.report.candidates.len(),
            o.report.cse_optimizations,
            o.report.baseline_cost,
            o.report.final_cost,
            o.plan.spools.len()
        );
        for c in &o.report.candidates {
            println!(
                "  {} tables={:?} grouped={} consumers={} rows={:.0} width={:.0}",
                c.id.0, c.tables, c.grouped, c.consumers, c.est_rows, c.est_width
            );
        }
    }
}
