//! A report-generation workload (the motivation of the paper's §1:
//! "data analysis applications frequently require a batch of queries"):
//! a six-panel revenue dashboard whose panels all revolve around the same
//! customer ⋈ orders ⋈ lineitem core, submitted as one batch.
//!
//! Run with: `cargo run --release --example reporting`

use similar_subexpr::optimizer::to_dot;
use similar_subexpr::prelude::*;

const DASHBOARD: &str = "
-- panel 1: revenue by nation
select c_nationkey, sum(l_extendedprice) as revenue
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
group by c_nationkey;

-- panel 2: revenue by market segment
select c_mktsegment, sum(l_extendedprice) as revenue
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
group by c_mktsegment;

-- panel 3: volume by nation and segment
select c_nationkey, c_mktsegment, sum(l_quantity) as volume
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
group by c_nationkey, c_mktsegment;

-- panel 4: discounts by nation, focus region
select c_nationkey, sum(l_discount) as disc
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
  and c_nationkey < 10
group by c_nationkey;

-- panel 5: order counts per nation
select c_nationkey, count(*) as orders_cnt
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
group by c_nationkey;

-- panel 6: regional rollup
select n_regionkey, sum(l_extendedprice) as revenue
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey
  and o_orderdate < '1997-01-01'
group by n_regionkey;
";

fn main() {
    let catalog = generate_catalog(&TpchConfig::new(0.005));
    let session = Session::new(catalog);

    let plan = session.plan(DASHBOARD).expect("optimize");
    println!(
        "six dashboard panels: estimated cost {:.0} shared vs {:.0} unshared ({:.2}x)",
        plan.report.final_cost,
        plan.report.baseline_cost,
        plan.report.baseline_cost / plan.report.final_cost
    );
    println!(
        "{} candidate covering subexpression(s); {} spool(s) in the final plan",
        plan.report.candidates.len(),
        plan.plan.spools.len()
    );

    let out = session.query(DASHBOARD).expect("run dashboard");
    for (i, rs) in out.results.iter().enumerate() {
        println!("panel {}: {} rows", i + 1, rs.rows.len());
    }
    println!("spool reads: {:?}", out.metrics.spool_reads);

    // Write the sharing structure as Graphviz for inspection:
    //   dot -Tsvg dashboard.dot > dashboard.svg
    let dot = to_dot(&plan.plan);
    std::fs::write("target/dashboard.dot", &dot).expect("write dot");
    println!(
        "plan graph written to target/dashboard.dot ({} bytes)",
        dot.len()
    );
}
