//! The paper's §6.3 nested-query experiment: a decision-support query whose
//! HAVING clause contains a scalar subquery over the same
//! customer ⋈ orders ⋈ lineitem aggregate as the main block.
//!
//! Run with: `cargo run --release --example nested_query`

use cse_bench::{experiments, print_table, workloads};
use similar_subexpr::prelude::*;

fn main() {
    let catalog = experiments::catalog(0.005);

    println!("query:\n{}\n", workloads::NESTED);
    let outcomes = experiments::table3(&catalog);
    print_table("Nested query — paper Table 3", &outcomes);

    // Show the shared subexpression the optimizer extracted.
    let optimized = optimize_sql(&catalog, workloads::NESTED, &CseConfig::default()).unwrap();
    for (id, spool) in &optimized.plan.spools {
        println!("\ncovering subexpression {id} (computed once, used by main block and subquery):");
        println!("{}", spool.plan.render());
    }
    println!("final plan:\n{}", optimized.plan.root.render());
}
