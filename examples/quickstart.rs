//! Quickstart: optimize and execute a two-query batch that shares a join,
//! and inspect what the optimizer did.
//!
//! Run with: `cargo run --release --example quickstart`

use similar_subexpr::prelude::*;

fn main() {
    // 1. Data: an in-memory TPC-H instance (deterministic generator).
    let catalog = generate_catalog(&TpchConfig::new(0.002));

    // 2. A batch of two similar queries: same customer ⋈ orders ⋈ lineitem
    //    join, different predicates and grouping.
    let sql = "
        select c_nationkey, sum(l_extendedprice) as revenue
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
          and o_orderdate < '1996-07-01'
          and c_nationkey < 20
        group by c_nationkey;

        select c_nationkey, c_mktsegment, sum(l_quantity) as volume
        from customer, orders, lineitem
        where c_custkey = o_custkey and o_orderkey = l_orderkey
          and o_orderdate < '1996-07-01'
          and c_nationkey < 15
        group by c_nationkey, c_mktsegment;
    ";

    // 3. Optimize with covering-subexpression detection enabled.
    let optimized = optimize_sql(&catalog, sql, &CseConfig::default()).expect("optimize");

    println!(
        "baseline (no sharing) estimated cost: {:.1}",
        optimized.report.baseline_cost
    );
    println!(
        "final plan estimated cost:            {:.1}",
        optimized.report.final_cost
    );
    println!(
        "candidate CSEs considered:            {}",
        optimized.report.candidates.len()
    );
    println!(
        "covering subexpressions in the plan:  {}",
        optimized.plan.spools.len()
    );
    for c in &optimized.report.candidates {
        println!(
            "  candidate {}: tables={:?} grouped={} consumers={} (≈{:.0} rows)",
            c.id, c.tables, c.grouped, c.consumers, c.est_rows
        );
    }

    // 4. The physical plan: the spool is computed once, read per consumer.
    println!("\nfinal plan:\n{}", optimized.plan.root.render());
    for (id, spool) in &optimized.plan.spools {
        println!("spool {id} definition:\n{}", spool.plan.render());
    }

    // 5. Execute. The engine materializes each spool exactly once.
    let engine = Engine::new(&catalog, &optimized.ctx);
    let out = engine.execute(&optimized.plan).expect("execute");
    for (i, rs) in out.results.iter().enumerate() {
        println!(
            "query {} -> {} rows ({:?})",
            i + 1,
            rs.rows.len(),
            rs.columns
        );
    }
    println!("spool reads: {:?}", out.metrics.spool_reads);
}
