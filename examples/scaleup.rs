//! The paper's §6.5 scaleup analysis (Figure 8): batches of 2..10 similar
//! queries. Cost benefit grows with the batch size; optimization time
//! stays linear with heuristic pruning.
//!
//! Run with: `cargo run --release --example scaleup [-- <scale>]`

use cse_bench::experiments;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.003);
    let catalog = experiments::catalog(sf);
    println!(
        "{:>3} {:>12} {:>12} {:>7} {:>12} {:>12} {:>8}",
        "n", "cost NoCSE", "cost CSE", "ratio", "opt NoCSE", "opt CSE", "#cands"
    );
    for p in experiments::fig8(&catalog, &[2, 3, 4, 5, 6, 7, 8, 9, 10]) {
        println!(
            "{:>3} {:>12.0} {:>12.0} {:>6.2}x {:>10.2}ms {:>10.2}ms {:>8}",
            p.n,
            p.no_cse.est_cost,
            p.cse.est_cost,
            p.no_cse.est_cost / p.cse.est_cost,
            p.no_cse.opt_time.as_secs_f64() * 1e3,
            p.cse.opt_time.as_secs_f64() * 1e3,
            p.cse.candidates,
        );
    }
}
