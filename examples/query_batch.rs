//! The paper's Example 1 / §6.1 experiment: the three-query batch over
//! customer ⋈ orders ⋈ lineitem, compared across the paper's three
//! configurations (No CSE / Using CSEs / no heuristics).
//!
//! Run with: `cargo run --release --example query_batch [-- <scale>]`

use cse_bench::{experiments, print_table};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.005);
    println!("generating TPC-H at SF={sf} ...");
    let catalog = experiments::catalog(sf);
    let outcomes = experiments::table1(&catalog);
    print_table("Query batch (Q1, Q2, Q3) — paper Table 1", &outcomes);

    // The paper's observation: with pruning only one candidate — the
    // covering aggregate over customer ⋈ orders ⋈ lineitem — survives, and
    // the final plan computes it once for all three queries.
    let with_heuristics = &outcomes[1];
    println!(
        "\nwith heuristics: {} candidate(s), {} CSE optimization(s), {} spool(s) in the plan",
        with_heuristics.candidates, with_heuristics.cse_optimizations, with_heuristics.spools
    );
}
