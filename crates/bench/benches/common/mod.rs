//! Shared bench scaffolding: one catalog per process, optimize-only and
//! optimize+execute measurement closures for the paper's three
//! configurations.
#![allow(dead_code)] // not every bench target uses every helper

use criterion::{BenchmarkId, Criterion};
use cse_core::{optimize_sql, CseConfig};
use cse_exec::Engine;
use cse_storage::Catalog;
use cse_tpch::{generate_catalog, TpchConfig};
use std::sync::OnceLock;

/// Bench scale factor: small enough for Criterion's repeated sampling,
/// large enough that join sizes dominate constant overheads.
pub const BENCH_SF: f64 = 0.002;

pub fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(|| generate_catalog(&TpchConfig::new(BENCH_SF)))
}

/// The paper's three configurations.
pub fn configs() -> [(&'static str, CseConfig); 3] {
    [
        ("no_cse", CseConfig::no_cse()),
        ("cse", CseConfig::default()),
        ("cse_no_heuristics", CseConfig::no_heuristics()),
    ]
}

/// Keep total bench time CI-friendly: short warm-up and measurement
/// windows, 10 samples (the quantities measured are milliseconds-scale
/// optimizations, stable across samples).
pub fn configure<M: criterion::measurement::Measurement>(
    g: &mut criterion::BenchmarkGroup<'_, M>,
) {
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
}

/// Bench a workload: `<group>/optimize/<config>` measures the full
/// optimization (including the CSE phase), `<group>/execute/<config>`
/// measures execution of the pre-optimized plan — mirroring the paper's
/// "optimization time" and "execution time" rows.
pub fn bench_workload(c: &mut Criterion, group: &str, sql: &str) {
    let catalog = catalog();
    let mut g = c.benchmark_group(group);
    configure(&mut g);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::new("optimize", name), &cfg, |b, cfg| {
            b.iter(|| optimize_sql(catalog, sql, cfg).expect("optimize"));
        });
        let optimized = optimize_sql(catalog, sql, &cfg).expect("optimize");
        g.bench_with_input(BenchmarkId::new("execute", name), &optimized, |b, plan| {
            let engine = Engine::new(catalog, &plan.ctx);
            b.iter(|| engine.execute(&plan.plan).expect("execute"));
        });
    }
    g.finish();
}
