//! The §6 overhead experiment: optimizing queries with *no* sharable
//! subexpressions must cost essentially the same with the CSE machinery on
//! (the paper could not measure the difference reliably; this bench makes
//! the comparison explicit).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cse_bench::workloads;
use cse_core::optimize_sql;

fn bench(c: &mut Criterion) {
    let catalog = common::catalog();
    let sql = workloads::no_sharing_batch();
    let mut g = c.benchmark_group("overhead_no_sharing");
    common::configure(&mut g);
    for (name, cfg) in common::configs() {
        g.bench_with_input(BenchmarkId::new("optimize", name), &sql, |b, sql| {
            b.iter(|| {
                let o = optimize_sql(catalog, sql, &cfg).expect("optimize");
                assert!(o.plan.spools.is_empty());
                o
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
