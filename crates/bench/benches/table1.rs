//! Regenerates paper Table 1: the Example 1 query batch (Q1, Q2, Q3) under
//! No CSE / Using CSEs / no-heuristics.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use cse_bench::workloads;

fn bench(c: &mut Criterion) {
    common::bench_workload(c, "table1_batch_q1q2q3", &workloads::table1_batch());
}

criterion_group!(benches, bench);
criterion_main!(benches);
