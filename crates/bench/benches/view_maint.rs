//! Regenerates the §6.4 view-maintenance experiment: refreshing three
//! similar materialized views after customer inserts, with the maintenance
//! batch optimized with and without CSEs.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cse_bench::{experiments, workloads};
use cse_core::{create_materialized_view, maintain_insert, CseConfig};
use cse_tpch::{generate_catalog, TpchConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("view_maintenance");
    common::configure(&mut g);
    for (name, cfg) in [
        ("no_cse", CseConfig::no_cse()),
        ("cse", CseConfig::default()),
    ] {
        g.bench_with_input(BenchmarkId::new("maintain", name), &cfg, |b, cfg| {
            // Setup outside the timed section: fresh catalog + views.
            b.iter_batched(
                || {
                    let mut catalog = generate_catalog(&TpchConfig::new(0.002));
                    for (vname, def) in workloads::maintenance_views() {
                        create_materialized_view(&mut catalog, vname, &def, cfg)
                            .expect("create view");
                    }
                    let inserts = experiments::new_customers(&catalog, 200);
                    (catalog, inserts)
                },
                |(mut catalog, inserts)| {
                    maintain_insert(&mut catalog, "customer", inserts, cfg).expect("maintain")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
