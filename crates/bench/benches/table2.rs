//! Regenerates paper Table 2: the batch extended with Q4 (part ⋈ orders ⋈
//! lineitem), where the optimal sharing shape changes and stacked CSEs
//! become available.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use cse_bench::workloads;

fn bench(c: &mut Criterion) {
    common::bench_workload(c, "table2_batch_q1q2q3q4", &workloads::table2_batch());
}

criterion_group!(benches, bench);
criterion_main!(benches);
