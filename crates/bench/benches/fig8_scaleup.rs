//! Regenerates paper Figure 8: optimization time and plan cost as the
//! batch size grows from 2 to 10 similar queries.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cse_bench::workloads;
use cse_core::optimize_sql;

fn bench(c: &mut Criterion) {
    let catalog = common::catalog();
    let mut g = c.benchmark_group("fig8_scaleup");
    common::configure(&mut g);
    for n in [2usize, 4, 6, 8, 10] {
        let sql = workloads::scaleup_batch(n);
        for (name, cfg) in common::configs() {
            g.bench_with_input(
                BenchmarkId::new(format!("optimize_{name}"), n),
                &sql,
                |b, sql| {
                    b.iter(|| optimize_sql(catalog, sql, &cfg).expect("optimize"));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
