//! Microbenchmarks of the paper's core mechanisms:
//!
//! - table-signature collection over a fully explored memo (the paper's
//!   "overhead so small we could not reliably measure it" claim),
//! - sharable-set detection in the CSE manager,
//! - covering-subexpression construction,
//! - predicate-implication checking.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use cse_algebra::{implies, CmpOp, RelId, Scalar};
use cse_bench::workloads;
use cse_core::{compute_required, construct, prepare_consumers, CseManager};
use cse_memo::{explore, ExploreConfig, Memo};
use cse_sql::lower_batch_sql;

fn explored_memo() -> Memo {
    let catalog = common::catalog();
    let (ctx, plan) = lower_batch_sql(catalog, &workloads::table1_batch()).expect("lower");
    let mut memo = Memo::new(ctx);
    let root = memo.insert_plan(&plan);
    memo.set_root(root);
    explore(&mut memo, &ExploreConfig::default());
    memo
}

fn bench(c: &mut Criterion) {
    let mut c = c.benchmark_group("micro");
    common::configure(&mut c);
    // Memo build + exploration (signatures are computed incrementally as
    // part of this; there is no separate signature pass to measure).
    c.bench_function("memo_insert_and_explore", |b| {
        let catalog = common::catalog();
        let (ctx, plan) = lower_batch_sql(catalog, &workloads::table1_batch()).expect("lower");
        b.iter(|| {
            let mut memo = Memo::new(ctx.clone());
            let root = memo.insert_plan(&plan);
            memo.set_root(root);
            explore(&mut memo, &ExploreConfig::default());
            memo.num_gexprs()
        });
    });

    // Sharable-set detection over the explored memo.
    c.bench_function("manager_detection", |b| {
        let memo = explored_memo();
        b.iter(|| CseManager::build(&memo).sharable_sets().len());
    });

    // Covering-subexpression construction for the main sharable set.
    c.bench_function("cse_construction", |b| {
        let mut memo = explored_memo();
        let mgr = CseManager::build(&memo);
        let sets = mgr.sharable_sets();
        let (_, consumers) = sets
            .iter()
            .max_by_key(|(_, c)| c.len())
            .expect("sharable set")
            .clone();
        let required = compute_required(&memo, &[memo.root()]);
        b.iter(|| {
            let prepared = prepare_consumers(&memo, &consumers);
            construct(&mut memo, prepared, &required).map(|c| c.output.len())
        });
    });

    // Predicate implication on range predicates.
    c.bench_function("implication_ranges", |b| {
        let col = |i: u16| Scalar::col(RelId(0), i);
        let p = Scalar::and([
            Scalar::cmp(CmpOp::Gt, col(0), Scalar::int(5)),
            Scalar::cmp(CmpOp::Lt, col(0), Scalar::int(20)),
            Scalar::cmp(CmpOp::Lt, col(1), Scalar::int(100)),
        ]);
        let q = Scalar::and([
            Scalar::cmp(CmpOp::Gt, col(0), Scalar::int(0)),
            Scalar::cmp(CmpOp::Lt, col(0), Scalar::int(25)),
        ]);
        b.iter(|| implies(&p, &q));
    });
    c.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
