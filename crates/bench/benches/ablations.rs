//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **LCA cost placement** (§5.2): charging the spool's initial cost at
//!   the consumers' least common ancestor vs deferring it to the plan root.
//! - **Enumeration pruning** (§5.3): the proposition-driven subset walk vs
//!   a single all-candidates optimization (`max_cse_optimizations = 1`).
//! - **Stacked CSEs** (§5.5): detection over candidate definitions on/off.
//! - **Eager aggregation** exploration on/off (the source of
//!   pre-aggregation candidates).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cse_bench::workloads;
use cse_core::optimize_sql;
use cse_core::CseConfig;

fn bench(c: &mut Criterion) {
    let catalog = common::catalog();
    let mut g = c.benchmark_group("ablations");
    common::configure(&mut g);

    let variants: Vec<(&str, CseConfig)> = vec![
        ("baseline", CseConfig::default()),
        ("charge_at_root", {
            let mut cfg = CseConfig::default();
            cfg.optimizer.charge_at_root = true;
            cfg
        }),
        ("single_optimization", CseConfig {
            max_cse_optimizations: 1,
            ..Default::default()
        }),
        ("no_stacked", CseConfig {
            stacked: false,
            ..Default::default()
        }),
        ("no_eager_agg", {
            let mut cfg = CseConfig::default();
            cfg.explore.enable_eager_agg = false;
            cfg
        }),
    ];

    for (workload_name, sql) in [
        ("table1", workloads::table1_batch()),
        ("table2", workloads::table2_batch()),
    ] {
        for (name, cfg) in &variants {
            g.bench_with_input(
                BenchmarkId::new(format!("{workload_name}/{name}"), "optimize"),
                &sql,
                |b, sql| {
                    b.iter(|| optimize_sql(catalog, sql, cfg).expect("optimize"));
                },
            );
        }
    }
    g.finish();

    // Plan-quality side of the ablation (printed once; Criterion measures
    // only time).
    println!("\nablation plan costs (table2):");
    for (name, cfg) in &variants {
        let o = optimize_sql(catalog, &workloads::table2_batch(), cfg).expect("optimize");
        println!(
            "  {name:<22} cost {:>12.1} candidates {} opts {}",
            o.report.final_cost,
            o.report.candidates.len(),
            o.report.cse_optimizations
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
