//! Regenerates paper Table 3: the nested query whose HAVING subquery
//! shares the customer ⋈ orders ⋈ lineitem aggregate with the main block.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use cse_bench::workloads;

fn bench(c: &mut Criterion) {
    common::bench_workload(c, "table3_nested_query", workloads::NESTED);
}

criterion_group!(benches, bench);
criterion_main!(benches);
