//! Regenerates paper Table 4: two eight-table joins with different local
//! predicates (the candidate-explosion stress test: dozens of candidates
//! without heuristics, a couple with).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use cse_bench::workloads;

fn bench(c: &mut Criterion) {
    common::bench_workload(c, "table4_complex_joins", &workloads::complex_join_batch());
}

criterion_group!(benches, bench);
criterion_main!(benches);
