//! Experiment drivers: one function per paper table/figure. Each returns
//! the measured outcomes so benches, tests and the report binary share the
//! same code path.

use crate::harness::{self, RunOutcome};
use crate::workloads;
use cse_core::{create_materialized_view, maintain_insert, CseConfig};
use cse_storage::testkit::TestRng;
use cse_storage::{Catalog, Row};
use cse_tpch::{generate_catalog, TpchConfig};
use std::time::{Duration, Instant};

/// Default scale factor for experiment runs; the paper uses SF=1, the
/// in-memory substitute defaults to a laptop-friendly SF (the *shape* of
/// the results is cardinality-ratio-driven, not absolute-size-driven).
pub const DEFAULT_SF: f64 = 0.01;

pub fn catalog(sf: f64) -> Catalog {
    generate_catalog(&TpchConfig::new(sf))
}

/// Table 1: the Example 1 batch (Q1, Q2, Q3).
pub fn table1(catalog: &Catalog) -> [RunOutcome; 3] {
    let out = harness::three_way(catalog, &workloads::table1_batch());
    harness::assert_results_agree(&out);
    out
}

/// Table 2: the batch with Q4 added (stacked CSEs).
pub fn table2(catalog: &Catalog) -> [RunOutcome; 3] {
    let out = harness::three_way(catalog, &workloads::table2_batch());
    harness::assert_results_agree(&out);
    out
}

/// Table 3: the nested query.
pub fn table3(catalog: &Catalog) -> [RunOutcome; 3] {
    let out = harness::three_way(catalog, workloads::NESTED);
    harness::assert_results_agree(&out);
    out
}

/// Table 4: two eight-table joins.
pub fn table4(catalog: &Catalog) -> [RunOutcome; 3] {
    let out = harness::three_way(catalog, &workloads::complex_join_batch());
    harness::assert_results_agree(&out);
    out
}

/// One point of Figure 8: batch of `n` similar queries, with and without
/// heuristic pruning, plus the no-CSE baseline.
pub struct ScaleupPoint {
    pub n: usize,
    pub no_cse: RunOutcome,
    pub cse: RunOutcome,
    pub cse_no_heuristics: RunOutcome,
}

/// Figure 8: scaleup over batch sizes 2..=10.
pub fn fig8(catalog: &Catalog, sizes: &[usize]) -> Vec<ScaleupPoint> {
    sizes
        .iter()
        .map(|&n| {
            let sql = workloads::scaleup_batch(n);
            let outcomes = harness::three_way(catalog, &sql);
            harness::assert_results_agree(&outcomes);
            let [no_cse, cse, cse_no_heuristics] = outcomes;
            ScaleupPoint {
                n,
                no_cse,
                cse,
                cse_no_heuristics,
            }
        })
        .collect()
}

/// §6.4 view maintenance outcome.
pub struct MaintenanceOutcome {
    pub config: &'static str,
    pub maintain_time: Duration,
    pub candidates: usize,
    pub views: usize,
}

/// §6.4: create the three views, insert customers, maintain with and
/// without CSEs. Returns (no-CSE, with-CSE) outcomes; correctness is
/// verified by comparing the refreshed view contents.
pub fn view_maintenance(sf: f64, insert_count: usize) -> (MaintenanceOutcome, MaintenanceOutcome) {
    let run =
        |cfg: &CseConfig, name: &'static str| -> (MaintenanceOutcome, Vec<Vec<cse_storage::Row>>) {
            let mut catalog = catalog(sf);
            for (vname, def) in workloads::maintenance_views() {
                create_materialized_view(&mut catalog, vname, &def, cfg).expect("create view");
            }
            let inserts = new_customers(&catalog, insert_count);
            let report = maintain_insert(&mut catalog, "customer", inserts, cfg).expect("maintain");
            let contents: Vec<Vec<Row>> = workloads::maintenance_views()
                .iter()
                .map(|(vname, _)| {
                    let mut rows = catalog.table(vname).unwrap().rows().to_vec();
                    rows.sort_by(|a, b| {
                        for (x, y) in a.iter().zip(b.iter()) {
                            let o = x.total_cmp(y);
                            if !o.is_eq() {
                                return o;
                            }
                        }
                        std::cmp::Ordering::Equal
                    });
                    rows
                })
                .collect();
            (
                MaintenanceOutcome {
                    config: name,
                    maintain_time: report.total_time,
                    candidates: report.cse.candidates.len(),
                    views: report.views.len(),
                },
                contents,
            )
        };
    let (no, c_no) = run(&CseConfig::no_cse(), "No CSE");
    let (yes, c_yes) = run(&CseConfig::default(), "Using CSEs");
    // Refreshed contents must agree (FP tolerance on sums).
    for (a, b) in c_no.iter().zip(c_yes.iter()) {
        assert_eq!(a.len(), b.len(), "view row counts diverged");
        for (ra, rb) in a.iter().zip(b.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                match (x.as_f64(), y.as_f64()) {
                    (Some(fx), Some(fy)) => {
                        assert!((fx - fy).abs() <= 1e-6 * fx.abs().max(fy.abs()).max(1.0))
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
    }
    (no, yes)
}

/// Fabricate `n` new customer rows with fresh keys.
pub fn new_customers(catalog: &Catalog, n: usize) -> Vec<Row> {
    use cse_tpch::rng::SplitMix64;
    use cse_tpch::text::CommentPool;
    let existing = catalog.table("customer").unwrap().row_count() as i64;
    let mut rng = SplitMix64::derive(0xfeed, "maintenance");
    let pool = CommentPool::new(0xfeed, 64);
    (0..n)
        .map(|i| {
            let key = existing + 1 + i as i64;
            let nation = rng.int_range(0, 24);
            cse_tpch::customer_row(key, nation, &mut rng, &pool)
        })
        .collect()
}

/// §6 overhead check: optimize a batch with no sharable subexpressions
/// with and without the CSE machinery; returns (off, on) outcomes — the
/// candidate count of the "on" run must be 0 and its optimization-time
/// overhead negligible.
pub fn overhead(catalog: &Catalog) -> (RunOutcome, RunOutcome) {
    let sql = workloads::no_sharing_batch();
    let off = harness::run(catalog, &sql, "No CSE", &CseConfig::no_cse());
    let on = harness::run(catalog, &sql, "Using CSEs", &CseConfig::default());
    assert_eq!(
        on.candidates, 0,
        "no-sharing batch must yield no candidates"
    );
    (off, on)
}

/// One scenario of the robustness drill: a governed run (budget, forced
/// fallback, armed failpoint, or execution limit) whose results must match
/// the ungoverned no-CSE reference.
#[derive(Debug)]
pub struct RobustnessOutcome {
    pub scenario: &'static str,
    /// Degradation-ladder rung of the final plan.
    pub rung: String,
    /// Stable reason codes of every degradation observed (optimizer
    /// ladder events followed by runtime recoveries).
    pub events: Vec<String>,
    /// Did anything degrade at all?
    pub degraded: bool,
    /// Results approx-equal to the reference?
    pub correct: bool,
}

/// Drive the degradation ladder and every failpoint site against the
/// Table 1 batch. Covers: an ungoverned control, a zero-millisecond
/// optimization budget, a forced baseline, each execution failpoint at
/// probability 1.0, the optimizer-phase panic failpoint, and a tiny row
/// budget. Every scenario must still deliver correct results — the whole
/// point of the ladder.
pub fn robustness(catalog: &Catalog) -> Vec<RobustnessOutcome> {
    use cse_exec::Engine;
    use cse_govern::{sites, Budget, ExecLimits, FailSpec, FailpointRegistry};

    let sql = workloads::table1_batch();
    // Ungoverned no-CSE reference results.
    let reference = {
        let optimized =
            cse_core::optimize_sql(catalog, &sql, &CseConfig::no_cse()).expect("reference plan");
        let engine = Engine::new(catalog, &optimized.ctx);
        engine
            .execute(&optimized.plan)
            .expect("reference execution")
            .results
    };

    let fail = |site: &str| {
        FailpointRegistry::from_specs(&[FailSpec {
            site: site.to_string(),
            probability: 1.0,
            seed: 42,
        }])
    };
    let scenarios: Vec<(&'static str, CseConfig)> = vec![
        ("ungoverned", CseConfig::default()),
        (
            "budget-0ms",
            CseConfig {
                budget: Budget::with_time_ms(0),
                ..CseConfig::default()
            },
        ),
        (
            "fallback-only",
            CseConfig {
                fallback_only: true,
                ..CseConfig::default()
            },
        ),
        (
            "fail-spool",
            CseConfig {
                failpoints: fail(sites::SPOOL_MATERIALIZE),
                ..CseConfig::default()
            },
        ),
        (
            "fail-table-scan",
            CseConfig {
                failpoints: fail(sites::SCAN_TABLE),
                ..CseConfig::default()
            },
        ),
        (
            "fail-opt-phase",
            CseConfig {
                failpoints: fail(sites::OPT_CSE_PHASE),
                ..CseConfig::default()
            },
        ),
        (
            "rows-budget-64",
            CseConfig {
                exec_limits: ExecLimits {
                    max_rows: Some(64),
                    max_bytes: None,
                },
                ..CseConfig::default()
            },
        ),
    ];
    let drive = |catalog: &Catalog,
                 sql: &str,
                 reference: &[cse_exec::ResultSet],
                 name: &'static str,
                 cfg: CseConfig| {
        let optimized = cse_core::optimize_sql(catalog, sql, &cfg).expect("governed optimization");
        let engine = Engine::new(catalog, &optimized.ctx);
        let out = engine
            .execute_governed(&optimized.plan, &cfg.failpoints, &cfg.exec_limits)
            .expect("governed execution");
        let mut events: Vec<String> = optimized
            .report
            .degradations
            .iter()
            .map(|e| e.reason.code().to_string())
            .collect();
        events.extend(out.events.iter().map(|e| e.reason.code().to_string()));
        let correct = reference.len() == out.results.len()
            && reference
                .iter()
                .zip(out.results.iter())
                .all(|(a, b)| a.approx_eq(b, 1e-9));
        RobustnessOutcome {
            scenario: name,
            rung: optimized.report.rung.as_str().to_string(),
            degraded: !events.is_empty(),
            events,
            correct,
        }
    };

    let mut rows: Vec<RobustnessOutcome> = scenarios
        .into_iter()
        .map(|(name, cfg)| drive(catalog, &sql, &reference, name, cfg))
        .collect();

    // The index failpoint needs a plan that actually chooses an index:
    // run it against an indexed copy of the catalog with a point query.
    let mut indexed = catalog.clone();
    indexed
        .create_btree_index("orders", "o_orderdate")
        .expect("index on o_orderdate");
    let pointy = "select o_orderkey, o_totalprice from orders \
                  where o_orderdate = '1995-01-01'";
    let index_reference = {
        let optimized = cse_core::optimize_sql(&indexed, pointy, &CseConfig::no_cse())
            .expect("index reference plan");
        Engine::new(&indexed, &optimized.ctx)
            .execute(&optimized.plan)
            .expect("index reference execution")
            .results
    };
    rows.push(drive(
        &indexed,
        pointy,
        &index_reference,
        "fail-index-scan",
        CseConfig {
            failpoints: fail(sites::SCAN_INDEX),
            ..CseConfig::default()
        },
    ));
    rows
}

/// Hand-rolled JSON for the robustness report (this tree has no serde).
pub fn robustness_json(sf: f64, rows: &[RobustnessOutcome]) -> String {
    use std::fmt::Write as _;
    let degraded = rows.iter().filter(|r| r.degraded).count();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"experiment\": \"robustness\",");
    let _ = writeln!(s, "  \"sf\": {sf},");
    let _ = writeln!(
        s,
        "  \"fallback_rate\": {:.4},",
        degraded as f64 / rows.len().max(1) as f64
    );
    let _ = writeln!(s, "  \"all_correct\": {},", rows.iter().all(|r| r.correct));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let events: Vec<String> = r.events.iter().map(|e| format!("\"{e}\"")).collect();
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"rung\": \"{}\", \"degraded\": {}, \"correct\": {}, \"events\": [{}]}}",
            r.scenario,
            r.rung,
            r.degraded,
            r.correct,
            events.join(", ")
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// One row of the serving benchmark: one worker-pool size driven through
/// the same request mix.
#[derive(Debug)]
pub struct ServePoint {
    pub workers: usize,
    pub requests: usize,
    pub completed: u64,
    pub degraded: u64,
    pub rejected: u64,
    pub shed: u64,
    pub retries: u64,
    pub breaker_trips: u64,
    /// Requests per second, submit of the first to reply of the last.
    pub throughput_rps: f64,
    /// Latency percentiles over completed requests (submit → reply).
    pub p50: Duration,
    pub p99: Duration,
    /// Per-lock acquisition/contention/hold-time counters from the
    /// server's `TrackedMutex` sites (queue, breaker, inflight table).
    /// All zeros unless built with `--features lock-stats`;
    /// [`ServePoint::lock_stats_recorded`] distinguishes "not measured"
    /// from "uncontended".
    pub lock_sites: Vec<cse_serve::LockSiteStats>,
    pub lock_stats_recorded: bool,
    /// Largest per-request execution memory high-water mark
    /// (`ExecMetrics::peak_bytes`, final attempt only) observed this point.
    pub peak_bytes_max: usize,
}

/// The serving benchmark's request mix: paper batches (heavy, sharing-rich)
/// interleaved with light single-statement queries, `n` requests total.
pub fn serve_requests(n: usize) -> Vec<String> {
    let mix = [
        workloads::table1_batch(),
        "select c_mktsegment, count(*) as n from customer group by c_mktsegment".to_string(),
        workloads::scaleup_batch(3),
        "select o_orderstatus, sum(o_totalprice) as s from orders group by o_orderstatus"
            .to_string(),
    ];
    (0..n).map(|i| mix[i % mix.len()].clone()).collect()
}

/// Throughput/latency of the batch server at each worker-pool size, over
/// the same request mix. Backpressure admission (no shedding) so every
/// point serves the identical workload; the breaker stays at its default
/// configuration and must not trip on a healthy run.
pub fn serve_bench(catalog: &Catalog, worker_counts: &[usize], requests: usize) -> Vec<ServePoint> {
    use cse_serve::{AdmitPolicy, Outcome, Server, ServerConfig};
    use std::sync::Arc;

    let shared = Arc::new(catalog.clone());
    let sqls = serve_requests(requests);
    worker_counts
        .iter()
        .map(|&workers| {
            let mut server = Server::new(
                Arc::clone(&shared),
                ServerConfig {
                    workers,
                    queue_capacity: 16,
                    admit: AdmitPolicy::Block,
                    ..ServerConfig::default()
                },
            );
            let started = Instant::now();
            let tickets: Vec<_> = sqls
                .iter()
                .map(|sql| server.submit(sql).expect("blocking admission never sheds"))
                .collect();
            let mut latencies: Vec<Duration> = Vec::new();
            let mut peak_bytes_max = 0usize;
            for t in tickets {
                match t.wait() {
                    Outcome::Done(reply) => {
                        peak_bytes_max = peak_bytes_max.max(reply.metrics.peak_bytes);
                        latencies.push(reply.latency);
                    }
                    Outcome::Rejected(r) => panic!("healthy bench run rejected: {r:?}"),
                }
            }
            let elapsed = started.elapsed();
            let stats = server.drain();
            let lock_sites = server.lock_stats();
            latencies.sort();
            let pct = |p: f64| -> Duration {
                let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
                latencies[idx]
            };
            ServePoint {
                workers,
                requests,
                completed: stats.completed,
                degraded: stats.degraded,
                rejected: stats.rejected,
                shed: stats.shed,
                retries: stats.retries,
                breaker_trips: stats.breaker.trips,
                throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
                p50: pct(0.50),
                p99: pct(0.99),
                lock_sites,
                lock_stats_recorded: cse_serve::lock_stats_recording(),
                peak_bytes_max,
            }
        })
        .collect()
}

/// Hand-rolled JSON for the serving report (this tree has no serde).
pub fn serve_json(sf: f64, rows: &[ServePoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"experiment\": \"serve\",");
    let _ = writeln!(s, "  \"sf\": {sf},");
    s.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workers\": {}, \"requests\": {}, \"completed\": {}, \"degraded\": {}, \
             \"rejected\": {}, \"shed\": {}, \"retries\": {}, \"breaker_trips\": {}, \
             \"throughput_rps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"peak_bytes_max\": {}, \"lock_stats_recorded\": {}, \"lock_sites\": [",
            r.workers,
            r.requests,
            r.completed,
            r.degraded,
            r.rejected,
            r.shed,
            r.retries,
            r.breaker_trips,
            r.throughput_rps,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.peak_bytes_max,
            r.lock_stats_recorded,
        );
        for (j, site) in r.lock_sites.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"site\": \"{}\", \"acquisitions\": {}, \"contended\": {}, \
                 \"hold_nanos\": {}}}",
                if j == 0 { "" } else { ", " },
                site.site,
                site.acquisitions,
                site.contended,
                site.hold_nanos,
            );
        }
        s.push_str("]}");
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Latency-histogram bucket upper bounds, in milliseconds (the last
/// bucket is open-ended). Powers of two so the buckets are stable across
/// runs and machines.
pub const OVERLOAD_BUCKETS_MS: [f64; 13] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// One operating point of the open-loop overload experiment: Poisson
/// arrivals at `multiplier` times the measured saturation throughput.
#[derive(Debug)]
pub struct OverloadPoint {
    pub multiplier: f64,
    /// Target arrival rate (requests/second) this point offered.
    pub offered_rps: f64,
    pub requests: usize,
    pub completed: u64,
    /// Completed but off a lower rung / with degradation events.
    pub degraded: u64,
    /// `SHED_MEMORY`: admission-time pressure sheds plus exhausted
    /// reservations.
    pub shed_memory: u64,
    /// `SHED_QUEUE_FULL` sheds at submit time.
    pub shed_queue: u64,
    /// `REQ_DEADLINE`: watchdog-expired attempts, retries exhausted.
    pub deadline_expired: u64,
    /// Any other rejection (must stay zero — asserted by the harness).
    pub other_rejected: u64,
    /// Completed requests per second of wall clock (the goodput curve the
    /// admission controller exists to defend).
    pub goodput_rps: f64,
    /// Latency percentiles over *completed* requests.
    pub p50: Duration,
    pub p99: Duration,
    /// Completed-request latency counts per [`OVERLOAD_BUCKETS_MS`] bucket
    /// (one extra open-ended bucket at the end).
    pub histogram: Vec<u64>,
    /// Largest `ExecMetrics::peak_bytes` across completed requests.
    pub peak_bytes_max: usize,
    pub worker_panics: u64,
}

/// The overload mix: mostly light single-statement queries with an
/// occasional heavy sharing-rich batch (the batch is what drives memory
/// reservations up). Deterministic for a fixed seed.
pub fn overload_requests(n: usize, seed: u64) -> Vec<String> {
    let mut rng = TestRng::new(seed ^ 0x6f76_6572_6c6f_6164); // "overload"
    let light = [
        "select c_mktsegment, count(*) as n from customer group by c_mktsegment".to_string(),
        "select o_orderstatus, sum(o_totalprice) as s from orders group by o_orderstatus"
            .to_string(),
        "select l_returnflag, sum(l_quantity) as q from lineitem group by l_returnflag".to_string(),
    ];
    let heavy = workloads::scaleup_batch(3);
    (0..n)
        .map(|_| {
            if rng.chance(0.125) {
                heavy.clone()
            } else {
                rng.pick(&light).clone()
            }
        })
        .collect()
}

/// Closed-loop calibration: measure the server's saturation throughput on
/// the overload mix (blocking admission, no deadline, no governor — pure
/// capacity).
fn overload_saturation_rps(catalog: &Catalog, workers: usize, seed: u64) -> f64 {
    use cse_serve::{AdmitPolicy, Outcome, Server, ServerConfig};
    use std::sync::Arc;

    let n = 96;
    let sqls = overload_requests(n, seed ^ 1);
    let mut server = Server::new(
        Arc::new(catalog.clone()),
        ServerConfig {
            workers,
            queue_capacity: 16,
            admit: AdmitPolicy::Block,
            ..ServerConfig::default()
        },
    );
    let started = Instant::now();
    let tickets: Vec<_> = sqls
        .iter()
        .map(|sql| server.submit(sql).expect("blocking admission never sheds"))
        .collect();
    for t in tickets {
        assert!(
            matches!(t.wait(), Outcome::Done(_)),
            "calibration run must complete every request"
        );
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-6);
    server.drain();
    n as f64 / elapsed
}

/// The open-loop overload experiment: Poisson arrivals (inter-arrival
/// `-ln(1-u)/rate` off the testkit PRNG) at 1x/2x/4x the calibrated
/// saturation rate, against a shedding server with an attempt deadline
/// and a global memory budget. Arrivals do **not** wait for replies —
/// that is what makes saturation observable instead of self-throttling.
///
/// The harness asserts the robustness contract (every request reaches
/// exactly one terminal outcome; rejections only carry `SHED_MEMORY`,
/// `SHED_QUEUE_FULL` or `REQ_DEADLINE`; zero worker panics) and returns
/// the measured points; callers decide what to print or persist.
pub fn overload(catalog: &Catalog, requests: usize, seed: u64) -> Vec<OverloadPoint> {
    use cse_serve::{AdmitPolicy, Outcome, RejectReason, Server, ServerConfig};
    use std::sync::Arc;

    let workers = 6;
    let shared = Arc::new(catalog.clone());
    let saturation = overload_saturation_rps(catalog, workers, seed);
    [1.0, 2.0, 4.0]
        .iter()
        .map(|&multiplier| {
            let rate = (saturation * multiplier).max(1.0);
            let sqls = overload_requests(requests, seed);
            let mut rng = TestRng::new(seed ^ (multiplier as u64) << 32);
            let mut server = Server::new(
                Arc::clone(&shared),
                ServerConfig {
                    workers,
                    queue_capacity: 16,
                    admit: AdmitPolicy::Shed,
                    deadline: Some(Duration::from_millis(250)),
                    max_retries: 1,
                    // Tight enough that concurrent heavy batches contend:
                    // six workers' grown grants sit near the Elevated
                    // threshold, so bursts of heavy batches push the pool
                    // into Critical and shed.
                    mem_budget: Some(6 << 20),
                    mem_grant: 256 * 1024,
                    ..ServerConfig::default()
                },
            );
            let started = Instant::now();
            let mut next_at = Duration::ZERO;
            let mut tickets = Vec::with_capacity(requests);
            let mut submit_rejects: Vec<RejectReason> = Vec::new();
            for sql in &sqls {
                // Poisson process: exponential inter-arrival times.
                let u = rng.range_f64(0.0, 1.0).min(0.999_999);
                next_at += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
                let now = started.elapsed();
                if next_at > now {
                    std::thread::sleep(next_at - now);
                }
                match server.submit(sql) {
                    Ok(t) => tickets.push(t),
                    Err(r) => submit_rejects.push(r.reason),
                }
            }
            let mut latencies: Vec<Duration> = Vec::new();
            let mut peak_bytes_max = 0usize;
            let mut degraded = 0u64;
            let mut reasons: Vec<RejectReason> = submit_rejects;
            for t in tickets {
                match t.wait() {
                    Outcome::Done(reply) => {
                        peak_bytes_max = peak_bytes_max.max(reply.metrics.peak_bytes);
                        if !reply.events.is_empty() {
                            degraded += 1;
                        }
                        latencies.push(reply.latency);
                    }
                    Outcome::Rejected(r) => reasons.push(r.reason),
                }
            }
            let wall = started.elapsed().as_secs_f64().max(1e-6);
            let stats = server.drain();
            let completed = latencies.len() as u64;
            assert_eq!(
                completed + reasons.len() as u64,
                requests as u64,
                "every request reaches exactly one terminal outcome"
            );
            assert_eq!(stats.worker_panics, 0, "overload must not panic workers");
            let count = |r: RejectReason| reasons.iter().filter(|&&x| x == r).count() as u64;
            let shed_memory = count(RejectReason::ShedMemory);
            let shed_queue = count(RejectReason::ShedQueueFull);
            let deadline_expired = count(RejectReason::ReqDeadline);
            let other_rejected = reasons.len() as u64 - shed_memory - shed_queue - deadline_expired;
            assert_eq!(
                other_rejected, 0,
                "overload rejections must carry a load-shedding reason code, got {reasons:?}"
            );
            latencies.sort();
            let pct = |p: f64| -> Duration {
                if latencies.is_empty() {
                    return Duration::ZERO;
                }
                latencies[((latencies.len() as f64 - 1.0) * p).round() as usize]
            };
            let mut histogram = vec![0u64; OVERLOAD_BUCKETS_MS.len() + 1];
            for l in &latencies {
                let ms = l.as_secs_f64() * 1e3;
                let idx = OVERLOAD_BUCKETS_MS
                    .iter()
                    .position(|&ub| ms <= ub)
                    .unwrap_or(OVERLOAD_BUCKETS_MS.len());
                histogram[idx] += 1;
            }
            OverloadPoint {
                multiplier,
                offered_rps: rate,
                requests,
                completed,
                degraded,
                shed_memory,
                shed_queue,
                deadline_expired,
                other_rejected,
                goodput_rps: completed as f64 / wall,
                p50: pct(0.50),
                p99: pct(0.99),
                histogram,
                peak_bytes_max,
                worker_panics: stats.worker_panics,
            }
        })
        .collect()
}

/// Hand-rolled JSON for the overload report.
pub fn overload_json(sf: f64, seed: u64, rows: &[OverloadPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"experiment\": \"overload\",");
    let _ = writeln!(s, "  \"sf\": {sf},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = write!(s, "  \"histogram_buckets_ms\": [");
    for (i, ub) in OVERLOAD_BUCKETS_MS.iter().enumerate() {
        let _ = write!(s, "{}{ub}", if i == 0 { "" } else { ", " });
    }
    s.push_str(", null],\n");
    s.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"multiplier\": {}, \"offered_rps\": {:.1}, \"requests\": {}, \
             \"completed\": {}, \"degraded\": {}, \"shed_memory\": {}, \"shed_queue\": {}, \
             \"deadline_expired\": {}, \"other_rejected\": {}, \"goodput_rps\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"peak_bytes_max\": {}, \
             \"worker_panics\": {}, \"histogram\": [",
            r.multiplier,
            r.offered_rps,
            r.requests,
            r.completed,
            r.degraded,
            r.shed_memory,
            r.shed_queue,
            r.deadline_expired,
            r.other_rejected,
            r.goodput_rps,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.peak_bytes_max,
            r.worker_panics,
        );
        for (j, c) in r.histogram.iter().enumerate() {
            let _ = write!(s, "{}{c}", if j == 0 { "" } else { ", " });
        }
        s.push_str("]}");
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// One row of the verification report: workload name, candidate count and
/// the diagnostics the `cse-verify` passes produced (always zero unless an
/// invariant regressed — errors abort optimization outright).
#[derive(Debug)]
pub struct VerifyOutcome {
    pub workload: &'static str,
    pub config: &'static str,
    pub candidates: usize,
    pub diagnostics: usize,
}

/// Run every paper workload with the `cse-verify` passes forced on (they
/// default off in release builds) under both CSE configurations, and
/// report the diagnostics. Panics if any workload fails verification.
pub fn verify_all(catalog: &Catalog) -> Vec<VerifyOutcome> {
    let workloads: [(&'static str, String); 5] = [
        ("table1 batch", workloads::table1_batch()),
        ("table2 batch", workloads::table2_batch()),
        ("nested query", workloads::NESTED.to_string()),
        ("complex joins", workloads::complex_join_batch()),
        ("no-sharing batch", workloads::no_sharing_batch()),
    ];
    let configs: [(&'static str, CseConfig); 2] = [
        (
            "Using CSEs",
            CseConfig {
                verify: true,
                ..CseConfig::default()
            },
        ),
        (
            "no heuristics",
            CseConfig {
                verify: true,
                ..CseConfig::no_heuristics()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, sql) in &workloads {
        for (cname, cfg) in &configs {
            let optimized = cse_core::optimize_sql(catalog, sql, cfg)
                .unwrap_or_else(|e| panic!("{name} [{cname}] failed verification: {e}"));
            rows.push(VerifyOutcome {
                workload: name,
                config: cname,
                candidates: optimized.report.candidates.len(),
                diagnostics: optimized
                    .report
                    .verification
                    .as_ref()
                    .map(|v| v.diagnostics.len())
                    .unwrap_or(0),
            });
        }
    }
    rows
}

/// One row of the qlint report: analyzer findings and timing per
/// workload.
#[derive(Debug)]
pub struct LintRow {
    pub workload: &'static str,
    pub statements: usize,
    pub warnings: usize,
    pub notes: usize,
    /// `lint/share-hint` diagnostics: the analyzer's *static* prediction
    /// of sharable pairs, before any memo exists.
    pub share_hints: usize,
    pub lint_time: Duration,
}

/// Run the qlint static analyzer over every paper workload. The paper
/// batches are clean by construction, so warnings stay zero while the
/// share hints predict the sharing the pipeline then finds — this arm is
/// a drift alarm between the lint-time and memo-time detection paths.
pub fn lint_all(catalog: &Catalog) -> Vec<LintRow> {
    let workloads: [(&'static str, String); 5] = [
        ("table1 batch", workloads::table1_batch()),
        ("table2 batch", workloads::table2_batch()),
        ("nested query", workloads::NESTED.to_string()),
        ("complex joins", workloads::complex_join_batch()),
        ("no-sharing batch", workloads::no_sharing_batch()),
    ];
    let mut rows = Vec::new();
    for (name, sql) in &workloads {
        let t = Instant::now();
        let out = cse_lint::lint_batch(catalog, sql);
        let lint_time = t.elapsed();
        assert_eq!(
            out.report.error_count(),
            0,
            "{name}: paper workloads must lint without errors:\n{}",
            out.report.render_as("lint")
        );
        rows.push(LintRow {
            workload: name,
            statements: out.statements,
            warnings: out.report.warning_count(),
            notes: out
                .report
                .diagnostics
                .iter()
                .filter(|d| d.severity == cse_lint::Severity::Note)
                .count(),
            share_hints: out
                .report
                .diagnostics
                .iter()
                .filter(|d| d.rule_id == cse_lint::rules::SHARE_HINT)
                .count(),
            lint_time,
        });
    }
    rows
}

/// One measured configuration of the durability bench: a mutation log of
/// `mutations` records committed at `group_commit` cadence (with or
/// without snapshots), then recovered from scratch.
#[derive(Debug)]
pub struct RecoveryPoint {
    pub mutations: usize,
    pub group_commit: usize,
    pub snapshot_every: u64,
    /// Per-mutation apply cost with no durability at all (the baseline
    /// every overhead figure is relative to).
    pub plain_ns_per_mutation: f64,
    /// Per-mutation apply cost through the journal.
    pub commit_ns_per_mutation: f64,
    pub wal_bytes: usize,
    pub replayed: usize,
    pub skipped: usize,
    pub recovery_ms: f64,
    /// Records replayed per second during recovery.
    pub replay_rps: f64,
}

/// The mutation workload the durability bench journals: a handful of base
/// tables, then a long stream of single-row deltas round-robined across
/// them — the catalog-mutation shape a serving deployment actually
/// produces (views refreshing, maintenance trickle), not pathological
/// bulk registration.
fn recovery_workload(n: usize) -> Vec<cse_storage::CatalogMutation> {
    use cse_storage::delta::{DeltaAction, DeltaTable};
    use cse_storage::schema::Schema;
    use cse_storage::table::{row, Table};
    use cse_storage::value::{DataType, Value};
    const BASES: usize = 8;
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Str)]);
    let mut out = Vec::with_capacity(n);
    for b in 0..BASES.min(n) {
        let mut t = Table::new(format!("base{b}"), schema.clone());
        t.push(row(vec![Value::Int(b as i64), Value::str("seed")]))
            .expect("seed row");
        out.push(cse_storage::CatalogMutation::RegisterTable { table: t });
    }
    let mut i = out.len();
    while i < n {
        let b = i % BASES;
        let mut delta = DeltaTable::new(format!("base{b}"), &schema);
        delta
            .record(
                DeltaAction::Insert,
                row(vec![Value::Int(i as i64), Value::str(format!("r{i}"))]),
            )
            .expect("delta row");
        out.push(cse_storage::CatalogMutation::ApplyDelta { delta });
        i += 1;
    }
    out
}

/// Durability bench: commit-latency overhead of the WAL (per group-commit
/// cadence, against the journal-free baseline), WAL size, and recovery
/// time / replay throughput as a function of log length. Runs on the
/// in-memory simulated store, so the overhead measured is the engine's
/// own (encode + checksum + frame + apply), not the host's fsync latency.
pub fn recovery(log_lengths: &[usize]) -> Vec<RecoveryPoint> {
    use cse_durable::{recover, DurableCatalog, DurableOptions, SimStore};
    use cse_govern::FailpointRegistry;

    let mut points = Vec::new();
    for &n in log_lengths {
        let workload = recovery_workload(n);

        // Baseline: the same mutations against a bare catalog.
        let mut plain = cse_storage::Catalog::new();
        let t = Instant::now();
        for m in &workload {
            plain.apply_mutation(m).expect("workload applies");
        }
        let plain_ns = t.elapsed().as_nanos() as f64 / n as f64;

        for (group_commit, snapshot_every) in [(1usize, 0u64), (8, 0), (64, 0), (8, (n / 4) as u64)]
        {
            let store = SimStore::new();
            let (mut dc, _) = DurableCatalog::open(
                store.clone(),
                DurableOptions {
                    group_commit,
                    snapshot_every,
                },
                FailpointRegistry::disabled(),
            )
            .expect("open empty store");
            let t = Instant::now();
            for m in &workload {
                dc.apply(m).expect("journaled apply");
            }
            dc.flush().expect("final barrier");
            let commit_ns = t.elapsed().as_nanos() as f64 / n as f64;
            let wal_bytes = store.wal_len();
            drop(dc);

            let t = Instant::now();
            let (_, info) =
                recover(&store, &FailpointRegistry::disabled()).expect("clean recovery");
            let recovery_s = t.elapsed().as_secs_f64().max(1e-9);
            points.push(RecoveryPoint {
                mutations: n,
                group_commit,
                snapshot_every,
                plain_ns_per_mutation: plain_ns,
                commit_ns_per_mutation: commit_ns,
                wal_bytes,
                replayed: info.replayed,
                skipped: info.skipped,
                recovery_ms: recovery_s * 1e3,
                replay_rps: info.replayed as f64 / recovery_s,
            });
        }
    }
    points
}

/// Machine-readable dump of the durability bench.
pub fn recovery_json(rows: &[RecoveryPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"experiment\": \"recovery\",");
    s.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"mutations\": {}, \"group_commit\": {}, \"snapshot_every\": {}, \
             \"plain_ns_per_mutation\": {:.0}, \"commit_ns_per_mutation\": {:.0}, \
             \"overhead_x\": {:.3}, \"wal_bytes\": {}, \"replayed\": {}, \"skipped\": {}, \
             \"recovery_ms\": {:.3}, \"replay_rps\": {:.0}}}",
            r.mutations,
            r.group_commit,
            r.snapshot_every,
            r.plain_ns_per_mutation,
            r.commit_ns_per_mutation,
            r.commit_ns_per_mutation / r.plain_ns_per_mutation.max(1.0),
            r.wal_bytes,
            r.replayed,
            r.skipped,
            r.recovery_ms,
            r.replay_rps,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
