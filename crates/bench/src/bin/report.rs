//! Paper-style report generator: regenerates every table and figure of the
//! evaluation section.
//!
//! Usage: `cargo run --release -p cse-bench --bin report [-- <experiment>] [--sf <f>]`
//! where `<experiment>` is one of `table1 table2 table3 table4 fig8
//! viewmaint overhead verify lint robustness serve overload recovery all`
//! (default `all`). The `overload` arm also honours `--requests <n>`
//! (default 10000), `--seed <u64>` (default 42) and `--out <path>`
//! (default `BENCH_overload.json`); `recovery` honours `--out` too
//! (default `BENCH_recovery.json`).

use cse_bench::{experiments, print_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut sf = experiments::DEFAULT_SF;
    let mut requests = 10_000usize;
    let mut seed = 42u64;
    let mut out = "BENCH_overload.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args[i].parse().expect("--sf expects a number");
            }
            "--requests" => {
                i += 1;
                requests = args[i].parse().expect("--requests expects an integer");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed expects a u64");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            other => which = other.to_string(),
        }
        i += 1;
    }
    println!("TPC-H scale factor: {sf}");
    let catalog = experiments::catalog(sf);

    let run_all = which == "all";
    if run_all || which == "table1" {
        print_table(
            "Table 1: query batch (Q1, Q2, Q3)",
            &experiments::table1(&catalog),
        );
    }
    if run_all || which == "table2" {
        print_table(
            "Table 2: query batch (Q1..Q4), stacked CSEs",
            &experiments::table2(&catalog),
        );
    }
    if run_all || which == "table3" {
        print_table("Table 3: nested query", &experiments::table3(&catalog));
    }
    if run_all || which == "table4" {
        print_table(
            "Table 4: complex joins (8 tables)",
            &experiments::table4(&catalog),
        );
    }
    if run_all || which == "fig8" {
        println!("\n=== Figure 8: scaleup (batch size 2..10) ===");
        println!(
            "{:>3} {:>14} {:>14} {:>14} {:>12} {:>12} {:>12} {:>6} {:>6}",
            "n",
            "cost NoCSE",
            "cost CSE",
            "cost CSE-noH",
            "opt NoCSE",
            "opt CSE",
            "opt CSE-noH",
            "#cand",
            "#candH"
        );
        for p in experiments::fig8(&catalog, &[2, 3, 4, 5, 6, 7, 8, 9, 10]) {
            println!(
                "{:>3} {:>14.1} {:>14.1} {:>14.1} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>6} {:>6}",
                p.n,
                p.no_cse.est_cost,
                p.cse.est_cost,
                p.cse_no_heuristics.est_cost,
                p.no_cse.opt_time.as_secs_f64() * 1e3,
                p.cse.opt_time.as_secs_f64() * 1e3,
                p.cse_no_heuristics.opt_time.as_secs_f64() * 1e3,
                p.cse_no_heuristics.candidates,
                p.cse.candidates,
            );
        }
    }
    if run_all || which == "viewmaint" {
        println!("\n=== §6.4: materialized view maintenance ===");
        let (no, yes) = experiments::view_maintenance(sf, 200);
        for o in [&no, &yes] {
            println!(
                "{:<12} maintain {:>10.3} ms  candidates {}  views {}",
                o.config,
                o.maintain_time.as_secs_f64() * 1e3,
                o.candidates,
                o.views
            );
        }
        println!(
            "  maintenance-time ratio: {:.2}x",
            no.maintain_time.as_secs_f64() / yes.maintain_time.as_secs_f64().max(1e-9)
        );
    }
    if run_all || which == "overhead" {
        println!("\n=== §6: overhead on non-sharing queries ===");
        let (off, on) = experiments::overhead(&catalog);
        println!(
            "optimization: CSE machinery off {:.3} ms, on {:.3} ms (candidates: {})",
            off.opt_time.as_secs_f64() * 1e3,
            on.opt_time.as_secs_f64() * 1e3,
            on.candidates
        );
    }
    if run_all || which == "verify" {
        println!("\n=== cse-verify: invariant audit over every workload ===");
        println!(
            "{:<18} {:<16} {:>10} {:>12}",
            "workload", "config", "candidates", "diagnostics"
        );
        for v in experiments::verify_all(&catalog) {
            println!(
                "{:<18} {:<16} {:>10} {:>12}",
                v.workload, v.config, v.candidates, v.diagnostics
            );
        }
        println!("all workloads passed verification (errors would have aborted).");
    }
    if run_all || which == "lint" {
        println!("\n=== qlint: static batch analysis over every workload ===");
        println!(
            "{:<18} {:>6} {:>9} {:>6} {:>12} {:>10}",
            "workload", "stmts", "warnings", "notes", "share hints", "lint time"
        );
        for r in experiments::lint_all(&catalog) {
            println!(
                "{:<18} {:>6} {:>9} {:>6} {:>12} {:>8.2}ms",
                r.workload,
                r.statements,
                r.warnings,
                r.notes,
                r.share_hints,
                r.lint_time.as_secs_f64() * 1e3
            );
        }
        println!("all workloads linted without errors (errors would have aborted).");
    }
    if run_all || which == "robustness" {
        println!("\n=== robustness: degradation ladder + fault injection ===");
        println!(
            "{:<18} {:<12} {:>8} {:>8}  events",
            "scenario", "rung", "degraded", "correct"
        );
        let rows = experiments::robustness(&catalog);
        for r in &rows {
            println!(
                "{:<18} {:<12} {:>8} {:>8}  {}",
                r.scenario,
                r.rung,
                r.degraded,
                r.correct,
                if r.events.is_empty() {
                    "-".to_string()
                } else {
                    r.events.join(",")
                }
            );
        }
        let json = experiments::robustness_json(sf, &rows);
        std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
        println!("wrote BENCH_robustness.json");
        assert!(
            rows.iter().all(|r| r.correct),
            "robustness scenarios must all stay correct"
        );
    }
    if run_all || which == "serve" {
        println!("\n=== serving: concurrent batch server (1/4/8 workers) ===");
        println!(
            "{:>7} {:>8} {:>9} {:>8} {:>7} {:>7} {:>10} {:>9} {:>9}",
            "workers", "requests", "completed", "degraded", "shed", "retries", "rps", "p50", "p99"
        );
        let rows = experiments::serve_bench(&catalog, &[1, 4, 8], 24);
        for r in &rows {
            println!(
                "{:>7} {:>8} {:>9} {:>8} {:>7} {:>7} {:>10.1} {:>7.2}ms {:>7.2}ms",
                r.workers,
                r.requests,
                r.completed,
                r.degraded,
                r.shed,
                r.retries,
                r.throughput_rps,
                r.p50.as_secs_f64() * 1e3,
                r.p99.as_secs_f64() * 1e3
            );
        }
        if rows.first().is_some_and(|r| r.lock_stats_recorded) {
            println!("per-lock contention (lock-stats build):");
            for r in &rows {
                for site in &r.lock_sites {
                    println!(
                        "  workers={:<2} {:<14} acquisitions={:<7} contended={:<6} hold={:.2}ms",
                        r.workers,
                        site.site,
                        site.acquisitions,
                        site.contended,
                        site.hold_nanos as f64 / 1e6
                    );
                }
            }
        } else {
            println!("per-lock contention: not measured (build with --features lock-stats)");
        }
        let json = experiments::serve_json(sf, &rows);
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
        assert!(
            rows.iter().all(|r| r.completed == r.requests as u64),
            "healthy serving runs must complete every request"
        );
    }
    // Not part of `all`: a 10k-request open-loop run takes a while and
    // its numbers only mean something at a fixed machine + seed.
    if which == "overload" {
        println!("\n=== overload: open-loop arrivals at 1x/2x/4x saturation ===");
        println!(
            "{:>4} {:>10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>10} {:>9} {:>9}",
            "mult",
            "offered",
            "completed",
            "degraded",
            "shed_mem",
            "shed_q",
            "deadline",
            "goodput",
            "p50",
            "p99"
        );
        let rows = experiments::overload(&catalog, requests, seed);
        for r in &rows {
            println!(
                "{:>4} {:>8.1}/s {:>9} {:>8} {:>9} {:>9} {:>9} {:>8.1}/s {:>7.2}ms {:>7.2}ms",
                r.multiplier,
                r.offered_rps,
                r.completed,
                r.degraded,
                r.shed_memory,
                r.shed_queue,
                r.deadline_expired,
                r.goodput_rps,
                r.p50.as_secs_f64() * 1e3,
                r.p99.as_secs_f64() * 1e3
            );
        }
        let json = experiments::overload_json(sf, seed, &rows);
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        println!("wrote {out}");
    }

    // Not part of `all`: the durability bench needs no catalog and its
    // absolute numbers are machine-dependent; run it on demand.
    if which == "recovery" {
        println!("\n=== recovery: WAL commit overhead and replay throughput ===");
        println!(
            "{:>9} {:>6} {:>9} {:>9} {:>10} {:>9} {:>9} {:>8} {:>11} {:>12}",
            "mutations",
            "group",
            "snap",
            "plain",
            "commit",
            "overhead",
            "wal",
            "replayed",
            "recovery",
            "replay"
        );
        let rows = experiments::recovery(&[256, 1024, 4096]);
        for r in &rows {
            println!(
                "{:>9} {:>6} {:>9} {:>7.0}ns {:>8.0}ns {:>8.2}x {:>8}B {:>8} {:>9.2}ms {:>8.0}/s",
                r.mutations,
                r.group_commit,
                r.snapshot_every,
                r.plain_ns_per_mutation,
                r.commit_ns_per_mutation,
                r.commit_ns_per_mutation / r.plain_ns_per_mutation.max(1.0),
                r.wal_bytes,
                r.replayed,
                r.recovery_ms,
                r.replay_rps
            );
        }
        let json = experiments::recovery_json(&rows);
        let path = if out == "BENCH_overload.json" {
            "BENCH_recovery.json".to_string()
        } else {
            out.clone()
        };
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
