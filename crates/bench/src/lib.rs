//! # cse-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§6): workload definitions, a three-configuration
//! measurement harness, and the experiment drivers used by both the
//! Criterion benches and the `report` binary.

pub mod experiments;
pub mod harness;
pub mod workloads;

pub use harness::{assert_results_agree, print_table, run, three_way, RunOutcome};
