//! The paper's workloads (§6), shared by the benchmark harness, the
//! report binary and the integration tests.

/// Example 1 / §6.1, Q1: per-(nation, segment) revenue summary.
pub const Q1: &str =
    "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq \
 from customer, orders, lineitem \
 where c_custkey = o_custkey and o_orderkey = l_orderkey \
   and o_orderdate < '1996-07-01' \
   and c_nationkey > 0 and c_nationkey < 20 \
 group by c_nationkey, c_mktsegment";

/// Example 1 / §6.1, Q2: per-nation summary, shifted predicate range.
pub const Q2: &str = "select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq \
 from customer, orders, lineitem \
 where c_custkey = o_custkey and o_orderkey = l_orderkey \
   and o_orderdate < '1996-07-01' \
   and c_nationkey > 5 and c_nationkey < 25 \
 group by c_nationkey";

/// Example 1 / §6.1, Q3: joins nation additionally, groups by region.
pub const Q3: &str = "select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq \
 from customer, orders, lineitem, nation \
 where c_custkey = o_custkey and o_orderkey = l_orderkey \
   and c_nationkey = n_nationkey \
   and o_orderdate < '1996-07-01' \
   and c_nationkey > 2 and c_nationkey < 24 \
 group by n_regionkey";

/// §6.2's Q4: part ⋈ orders ⋈ lineitem (the paper's projection uses a
/// part column; the quantity sum keeps the same shape against standard
/// TPC-H columns).
pub const Q4: &str = "select p_type, sum(l_quantity) as qty \
 from part, orders, lineitem \
 where p_partkey = l_partkey and o_orderkey = l_orderkey \
   and o_orderdate < '1996-07-01' \
 group by p_type";

/// §6.3's nested query (TPC-H Q11-like): nations whose total discount
/// exceeds 1/25 of the global total — main block and subquery share the
/// customer ⋈ orders ⋈ lineitem aggregate.
pub const NESTED: &str = "select c_nationkey, n_name, sum(l_discount) as totaldisc \
 from customer, orders, lineitem, nation \
 where c_custkey = o_custkey and o_orderkey = l_orderkey \
   and c_nationkey = n_nationkey \
 group by c_nationkey, n_name \
 having sum(l_discount) > (select sum(l_discount) / 25 \
   from customer, orders, lineitem \
   where c_custkey = o_custkey and o_orderkey = l_orderkey) \
 order by totaldisc desc";

/// The batch of Table 1.
pub fn table1_batch() -> String {
    format!("{Q1};\n{Q2};\n{Q3};")
}

/// The batch of Table 2 (adds Q4, triggering stacked CSEs).
pub fn table2_batch() -> String {
    format!("{Q1};\n{Q2};\n{Q3};\n{Q4};")
}

/// §6.5 scaleup batches: `n` queries joining customer/orders/lineitem with
/// varying predicates, groupings, and optional nation/region joins.
pub fn scaleup_batch(n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        let lo = i % 5;
        let hi = 20 + (i % 5);
        let date = [
            "1995-01-01",
            "1995-07-01",
            "1996-01-01",
            "1996-07-01",
            "1997-01-01",
        ][i % 5];
        let q = match i % 3 {
            0 => format!(
                "select c_nationkey, sum(l_extendedprice) as le \
                 from customer, orders, lineitem \
                 where c_custkey = o_custkey and o_orderkey = l_orderkey \
                   and o_orderdate < '{date}' \
                   and c_nationkey > {lo} and c_nationkey < {hi} \
                 group by c_nationkey"
            ),
            1 => format!(
                "select c_nationkey, c_mktsegment, sum(l_quantity) as lq \
                 from customer, orders, lineitem \
                 where c_custkey = o_custkey and o_orderkey = l_orderkey \
                   and o_orderdate < '{date}' \
                   and c_nationkey > {lo} and c_nationkey < {hi} \
                 group by c_nationkey, c_mktsegment"
            ),
            _ => format!(
                "select n_regionkey, sum(l_extendedprice) as le \
                 from customer, orders, lineitem, nation \
                 where c_custkey = o_custkey and o_orderkey = l_orderkey \
                   and c_nationkey = n_nationkey \
                   and o_orderdate < '{date}' \
                   and c_nationkey > {lo} and c_nationkey < {hi} \
                 group by n_regionkey"
            ),
        };
        out.push_str(&q);
        out.push_str(";\n");
    }
    out
}

/// §6.5's complex-join batch: two queries joining all eight TPC-H tables,
/// aggregating by region, with different local predicates.
pub fn complex_join_batch() -> String {
    let q = |date: &str, lo: i64, hi: i64, size: i64| {
        format!(
            "select r_name, sum(l_extendedprice) as revenue, sum(ps_supplycost) as cost \
             from region, nation, customer, orders, lineitem, part, partsupp, supplier \
             where r_regionkey = n_regionkey and n_nationkey = c_nationkey \
               and c_custkey = o_custkey and o_orderkey = l_orderkey \
               and l_partkey = p_partkey and l_suppkey = s_suppkey \
               and ps_partkey = p_partkey and ps_suppkey = s_suppkey \
               and o_orderdate < '{date}' \
               and c_nationkey > {lo} and c_nationkey < {hi} \
               and p_size < {size} \
             group by r_name"
        )
    };
    format!(
        "{};\n{};",
        q("1996-07-01", 0, 20, 30),
        q("1997-01-01", 2, 24, 40)
    )
}

/// Queries with no sharing opportunity (§6 overhead paragraph): distinct
/// table sets per statement.
pub fn no_sharing_batch() -> String {
    [
        "select c_nationkey, count(*) as n from customer where c_acctbal > 0 group by c_nationkey",
        "select o_orderpriority, count(*) as n from orders where o_orderdate < '1996-01-01' group by o_orderpriority",
        "select l_returnflag, sum(l_quantity) as q from lineitem where l_shipdate < '1996-01-01' group by l_returnflag",
        "select p_brand, count(*) as n from part where p_size < 20 group by p_brand",
        "select s_nationkey, sum(s_acctbal) as bal from supplier group by s_nationkey",
    ]
    .join(";\n")
}

/// The three materialized views of §6.4 (the Example 1 queries as views).
pub fn maintenance_views() -> Vec<(&'static str, String)> {
    vec![
        ("mv_nation_segment", Q1.to_string()),
        ("mv_nation", Q2.to_string()),
        ("mv_region", Q3.to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_parse() {
        for sql in [
            table1_batch(),
            table2_batch(),
            scaleup_batch(2),
            scaleup_batch(10),
            complex_join_batch(),
            no_sharing_batch(),
        ] {
            cse_sql::parse_batch(&sql).expect("workload must parse");
        }
        cse_sql::parse_one(NESTED).expect("nested query must parse");
    }

    #[test]
    fn scaleup_sizes() {
        for n in 2..=10 {
            let stmts = cse_sql::parse_batch(&scaleup_batch(n)).unwrap();
            assert_eq!(stmts.len(), n);
        }
    }
}
