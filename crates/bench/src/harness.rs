//! Measurement harness: run a workload under the paper's three
//! configurations and report the rows its tables print.

use cse_core::{optimize_sql, CseConfig};
use cse_exec::{Engine, ExecOutput};
use cse_storage::Catalog;
use std::time::{Duration, Instant};

/// One measured configuration run.
#[derive(Debug)]
pub struct RunOutcome {
    pub config: &'static str,
    /// Candidate CSEs handed to the optimizer ("# of CSEs").
    pub candidates: usize,
    /// CSE re-optimizations (the bracketed number).
    pub cse_optimizations: u32,
    /// Total optimization wall-clock.
    pub opt_time: Duration,
    /// Estimated cost of the chosen plan.
    pub est_cost: f64,
    /// Execution wall-clock.
    pub exec_time: Duration,
    /// Spools in the final plan.
    pub spools: usize,
    pub output: ExecOutput,
}

/// Optimize + execute one workload under one configuration.
pub fn run(catalog: &Catalog, sql: &str, config: &'static str, cfg: &CseConfig) -> RunOutcome {
    let optimized = optimize_sql(catalog, sql, cfg).expect("optimization failed");
    let engine = Engine::new(catalog, &optimized.ctx);
    let t0 = Instant::now();
    let output = engine.execute(&optimized.plan).expect("execution failed");
    let exec_time = t0.elapsed();
    RunOutcome {
        config,
        candidates: optimized.report.candidates.len(),
        cse_optimizations: optimized.report.cse_optimizations,
        opt_time: optimized.report.total_time,
        est_cost: optimized.report.final_cost,
        exec_time,
        spools: optimized.plan.spools.len(),
        output,
    }
}

/// The paper's three configurations: No CSE / Using CSEs / no heuristics.
pub fn three_way(catalog: &Catalog, sql: &str) -> [RunOutcome; 3] {
    [
        run(catalog, sql, "No CSE", &CseConfig::no_cse()),
        run(catalog, sql, "Using CSEs", &CseConfig::default()),
        run(
            catalog,
            sql,
            "Using CSEs (no heuristics)",
            &CseConfig::no_heuristics(),
        ),
    ]
}

/// Verify all configurations produced identical results (FP-tolerant);
/// panics with a diagnostic otherwise.
pub fn assert_results_agree(outcomes: &[RunOutcome]) {
    let base = &outcomes[0].output.results;
    for o in &outcomes[1..] {
        assert_eq!(
            base.len(),
            o.output.results.len(),
            "{} delivered a different number of result sets",
            o.config
        );
        for (i, (a, b)) in base.iter().zip(o.output.results.iter()).enumerate() {
            assert!(
                a.approx_eq(b, 1e-9),
                "result {} of '{}' differs from baseline",
                i,
                o.config
            );
        }
    }
}

/// Render a paper-style table to stdout.
pub fn print_table(title: &str, outcomes: &[RunOutcome]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:>14} {:>16} {:>14} {:>14} {:>8}",
        "", "# CSEs [opts]", "opt time (ms)", "est. cost", "exec (ms)", "spools"
    );
    for o in outcomes {
        println!(
            "{:<28} {:>9} [{:>2}] {:>16.3} {:>14.1} {:>14.3} {:>8}",
            o.config,
            o.candidates,
            o.cse_optimizations,
            o.opt_time.as_secs_f64() * 1e3,
            o.est_cost,
            o.exec_time.as_secs_f64() * 1e3,
            o.spools
        );
    }
    let base = &outcomes[0];
    for o in &outcomes[1..] {
        println!(
            "  {}: est-cost ratio {:.2}x, exec-time ratio {:.2}x vs No CSE",
            o.config,
            base.est_cost / o.est_cost.max(1e-9),
            base.exec_time.as_secs_f64() / o.exec_time.as_secs_f64().max(1e-9)
        );
    }
}
