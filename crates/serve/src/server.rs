//! The batch server: N worker threads over one shared catalog.
//!
//! Life of a request:
//!
//! 1. [`Server::submit`] assigns an id, wraps the SQL in a [`Request`] with
//!    a request-level [`CancelToken`] (explicit cancels only) and pushes it
//!    onto the bounded admission queue. A full queue either sheds
//!    (`SHED_QUEUE_FULL`, [`AdmitPolicy::Shed`]) or blocks the submitter
//!    ([`AdmitPolicy::Block`]).
//! 2. A worker pops the request and runs up to `1 + max_retries` attempts.
//!    Each attempt gets a *fresh* attempt-level token carrying the
//!    per-attempt deadline; the watchdog thread propagates request-level
//!    cancels onto it and cancels it when the deadline passes, so a runaway
//!    attempt is stopped cooperatively — the worker thread survives.
//! 3. Before planning, the breaker decides the attempt's [`Admission`]:
//!    `Full` runs the whole CSE phase (and reports its downgrade bit back),
//!    `BaselineOnly` forces the baseline rung, `Probe` runs full CSE and
//!    reports health. Planning + execution then run under the session
//!    pipeline; `strict_faults` selects [`Engine::execute_strict`] so
//!    transient faults bubble here instead of being retried in-engine.
//! 4. Transient failures (injected faults, breached limits, expired
//!    attempt deadlines, `serve.worker` trips) are retried after a
//!    deterministic jittered backoff; everything else — and exhausted
//!    retries — becomes a structured [`Rejection`]. Success becomes a
//!    [`BatchReply`]. Either way the submitter's [`Ticket`] resolves:
//!    every request reaches exactly one terminal outcome.
//!
//! A worker that panics mid-request (an optimizer or engine bug outside
//! the pipeline's own `catch_unwind`) converts the panic into an
//! `EXEC_INTERNAL` rejection and keeps serving.

use crate::breaker::{Admission, Breaker, BreakerConfig, BreakerSnapshot};
use crate::queue::{BoundedQueue, PushError};
use cse_conc::{LockSiteStats, TrackedGuard, TrackedMutex};
use cse_core::CseConfig;
use cse_exec::{Engine, ExecError, ExecMetrics, ResultSet};
use cse_govern::{
    sites, CancelToken, DegradationEvent, FailpointRegistry, MemReservation, MemoryGovernor,
    Pressure, ReserveError, Rung,
};
use cse_storage::testkit::TestRng;
use cse_storage::Catalog;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What to do when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Refuse immediately with `SHED_QUEUE_FULL` (load shedding).
    Shed,
    /// Block the submitting thread until there is room (backpressure).
    Block,
}

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each one independent optimizer + engine state).
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    pub admit: AdmitPolicy,
    /// Per-*attempt* watchdog deadline. `None` disables the watchdog for
    /// the request (explicit cancels still work).
    pub deadline: Option<Duration>,
    /// Retries after the first attempt; transient failures only.
    pub max_retries: u32,
    /// Base backoff; attempt `n` waits `base · 2^(n-1) · jitter`.
    pub retry_backoff: Duration,
    /// Seed for the deterministic backoff jitter (testkit PRNG, mixed with
    /// the request id so concurrent requests do not share a schedule).
    pub retry_seed: u64,
    /// Use [`Engine::execute_strict`]: recoverable faults bubble to the
    /// server's retry loop instead of being retried in-engine against the
    /// baseline plan. Off reproduces the single-session behaviour
    /// (faults recovered invisibly, never rejected).
    pub strict_faults: bool,
    pub breaker: BreakerConfig,
    /// Global memory budget shared by all in-flight requests. `None`
    /// disables memory governance (the single-session behaviour). With a
    /// budget set, every attempt takes a [`MemReservation`] before
    /// planning; Critical pool pressure sheds new admissions with
    /// `SHED_MEMORY`, Elevated pressure caps the planning rung.
    pub mem_budget: Option<usize>,
    /// Initial per-request reservation grant (grows on demand in
    /// [`cse_govern::memory::GRANT_CHUNK`] steps).
    pub mem_grant: usize,
    /// Base optimizer configuration. Its failpoint registry is shared
    /// across all workers (one process-wide fault schedule); its cancel
    /// token is replaced per attempt.
    pub cse: CseConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            admit: AdmitPolicy::Shed,
            deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            retry_seed: 42,
            strict_faults: true,
            breaker: BreakerConfig::default(),
            mem_budget: None,
            mem_grant: 1 << 20,
            cse: CseConfig::default(),
        }
    }
}

/// Stable rejection reason codes — the serving layer's error ABI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission queue full under [`AdmitPolicy::Shed`].
    ShedQueueFull,
    /// Submitted after [`Server::drain`] closed the queue.
    ShedShutdown,
    /// Shed for memory: admission refused at Critical pool pressure, or a
    /// request's reservation could not be taken/grown and retries were
    /// exhausted.
    ShedMemory,
    /// Attempt deadline expired (watchdog), retries exhausted.
    ReqDeadline,
    /// The client canceled via [`Ticket::cancel`].
    ReqCanceled,
    /// Transient execution fault, retries exhausted.
    ExecFault,
    /// Planning failed deterministically (parse/bind/lint/verify).
    PlanRejected,
    /// Worker-side bug: a panic outside the pipeline's own isolation, or
    /// a non-recoverable engine error.
    ExecInternal,
}

impl RejectReason {
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::ShedQueueFull => "SHED_QUEUE_FULL",
            RejectReason::ShedShutdown => "SHED_SHUTDOWN",
            RejectReason::ShedMemory => "SHED_MEMORY",
            RejectReason::ReqDeadline => "REQ_DEADLINE",
            RejectReason::ReqCanceled => "REQ_CANCELED",
            RejectReason::ExecFault => "EXEC_FAULT",
            RejectReason::PlanRejected => "PLAN_REJECTED",
            RejectReason::ExecInternal => "EXEC_INTERNAL",
        }
    }
}

/// A structured rejection: reason code + human detail + attempt count.
#[derive(Debug, Clone)]
pub struct Rejection {
    pub id: u64,
    pub reason: RejectReason,
    pub detail: String,
    /// Retries performed before giving up (0 for shed/immediate).
    pub retries: u32,
}

/// A successfully served batch.
#[derive(Debug)]
pub struct BatchReply {
    pub id: u64,
    pub results: Vec<ResultSet>,
    pub metrics: ExecMetrics,
    /// Degradation-ladder rung the plan was produced on.
    pub rung: Rung,
    /// Planning + execution degradations, in order.
    pub events: Vec<DegradationEvent>,
    /// How the breaker admitted the successful attempt.
    pub admission: Admission,
    pub retries: u32,
    /// Submit-to-reply wall clock.
    pub latency: Duration,
}

/// Terminal outcome of a request.
#[derive(Debug)]
pub enum Outcome {
    Done(BatchReply),
    Rejected(Rejection),
}

impl Outcome {
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }
}

/// Handle returned by [`Server::submit`].
pub struct Ticket {
    pub id: u64,
    rx: mpsc::Receiver<Outcome>,
    token: CancelToken,
}

impl Ticket {
    /// Block until the request reaches its terminal outcome.
    pub fn wait(self) -> Outcome {
        self.rx.recv().unwrap_or_else(|_| {
            // The worker dropped the reply channel without sending — only
            // possible if a worker thread died outright, which the
            // catch_unwind in the worker loop is there to prevent.
            Outcome::Rejected(Rejection {
                id: self.id,
                reason: RejectReason::ExecInternal,
                detail: "reply channel closed without an outcome".into(),
                retries: 0,
            })
        })
    }

    /// Cooperatively cancel the request. Queued requests are rejected when
    /// a worker picks them up; in-flight attempts are stopped at their next
    /// cancellation point by the watchdog's propagation.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

struct Request {
    id: u64,
    sql: String,
    /// Request-level token: explicit cancels only (no deadline). Attempt
    /// tokens are derived fresh per attempt.
    token: CancelToken,
    deadline: Option<Duration>,
    submitted: Instant,
    /// Bounded (capacity 1): exactly one terminal outcome is ever sent per
    /// request, so the send never blocks and the channel never grows.
    reply: mpsc::SyncSender<Outcome>,
}

/// A lock-free statistics counter. Relaxed is sufficient: each counter is
/// an independent monotonic tally, never used to establish happens-before
/// with any other memory — snapshots are explicitly racy totals.
#[derive(Debug, Default)]
struct Counter(AtomicU64);

impl Counter {
    fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Server counters. Formerly a `Mutex<StatsInner>` that every request
/// locked several times on its hot path — the contention `qconc`'s
/// `conc/hot-path-lock` rule now rejects. Independent atomic counters
/// need no critical section at all.
#[derive(Debug, Default)]
struct Stats {
    submitted: Counter,
    completed: Counter,
    degraded: Counter,
    rejected: Counter,
    shed: Counter,
    retries: Counter,
    canceled: Counter,
    deadline_expired: Counter,
    exec_faults: Counter,
    worker_panics: Counter,
    shed_memory: Counter,
}

/// Counter snapshot ([`Server::stats`]).
#[derive(Debug, Clone)]
pub struct ServerStats {
    pub submitted: u64,
    /// Requests that completed with a [`BatchReply`].
    pub completed: u64,
    /// Completed requests whose plan came off a lower rung or that carry
    /// degradation events.
    pub degraded: u64,
    /// Requests rejected for any reason (includes shed).
    pub rejected: u64,
    /// Rejections with `SHED_QUEUE_FULL` / `SHED_SHUTDOWN`.
    pub shed: u64,
    /// Total retry attempts across all requests.
    pub retries: u64,
    /// Terminal `REQ_CANCELED` rejections.
    pub canceled: u64,
    /// Terminal `REQ_DEADLINE` rejections.
    pub deadline_expired: u64,
    /// Terminal `EXEC_FAULT` rejections.
    pub exec_faults: u64,
    /// Panics converted into `EXEC_INTERNAL` rejections.
    pub worker_panics: u64,
    /// Terminal `SHED_MEMORY` rejections (admission-time pressure sheds
    /// plus exhausted-reservation rejections).
    pub shed_memory: u64,
    pub breaker: BreakerSnapshot,
}

/// One in-flight attempt, as the watchdog sees it.
#[derive(Clone)]
struct InflightEntry {
    /// Fresh per attempt; the token hot loops actually poll.
    attempt: CancelToken,
    /// Request-level token: explicit client cancels.
    request: CancelToken,
    /// Absolute attempt deadline, if any.
    deadline: Option<Instant>,
    /// The attempt's memory grant; the watchdog cancels an attempt whose
    /// usage outruns it (only unchecked recovery charges can get there).
    reservation: Option<MemReservation>,
}

/// In-flight attempt registry for the watchdog, keyed by request id.
type Inflight = HashMap<u64, InflightEntry>;

struct Shared {
    catalog: Arc<Catalog>,
    cfg: ServerConfig,
    breaker: Breaker,
    stats: Stats,
    inflight: TrackedMutex<Inflight>,
    shutdown: AtomicBool,
    /// The global memory pool (`None` = memory governance off).
    governor: Option<MemoryGovernor>,
}

impl Shared {
    fn inflight(&self) -> TrackedGuard<'_, Inflight> {
        self.inflight.lock()
    }
}

/// The batch server. See the module docs for the request life cycle.
pub struct Server {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Request>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    /// Runs exactly once inside [`Server::drain`], after the workers have
    /// quiesced. The embedder (qserve) uses it to flush durable state —
    /// the server itself stays ignorant of the durability layer.
    drain_hook: Option<Box<dyn FnMut() + Send>>,
}

impl Server {
    pub fn new(catalog: Arc<Catalog>, cfg: ServerConfig) -> Self {
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let breaker = Breaker::new(cfg.breaker.clone());
        let workers_n = cfg.workers.max(1);
        let governor = cfg.mem_budget.map(MemoryGovernor::new);
        let shared = Arc::new(Shared {
            catalog,
            cfg,
            breaker,
            stats: Stats::default(),
            inflight: TrackedMutex::new("serve.inflight", HashMap::new()),
            shutdown: AtomicBool::new(false),
            governor,
        });
        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("cse-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue))
                    .expect("spawn worker thread")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cse-serve-watchdog".into())
                    .spawn(move || watchdog_loop(&shared))
                    .expect("spawn watchdog thread"),
            )
        };
        Server {
            shared,
            queue,
            workers,
            watchdog,
            next_id: AtomicU64::new(1),
            drain_hook: None,
        }
    }

    /// Register a callback to run once during [`Server::drain`], after
    /// the workers have quiesced (e.g. flush a write-ahead log).
    pub fn set_drain_hook(&mut self, hook: Box<dyn FnMut() + Send>) {
        self.drain_hook = Some(hook);
    }

    /// Submit a SQL batch under the configured default deadline.
    pub fn submit(&self, sql: &str) -> Result<Ticket, Rejection> {
        self.submit_with_deadline(sql, self.shared.cfg.deadline)
    }

    /// Allocate the next request id. Relaxed suffices: the counter only
    /// needs uniqueness/monotonicity, not ordering against other memory.
    fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Submit with an explicit per-attempt deadline override.
    pub fn submit_with_deadline(
        &self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Rejection> {
        let id = self.next_request_id();
        self.shared.stats.submitted.bump();
        // Memory admission control: at Critical pool pressure, queueing
        // more work only deepens the hole — shed at the door with a stable
        // code so clients know to back off.
        if let Some(gov) = &self.shared.governor {
            if gov.pressure() == Pressure::Critical {
                self.shared.stats.rejected.bump();
                self.shared.stats.shed.bump();
                self.shared.stats.shed_memory.bump();
                return Err(Rejection {
                    id,
                    reason: RejectReason::ShedMemory,
                    detail: format!(
                        "admission refused: memory pool at critical pressure ({} of {} bytes reserved)",
                        gov.reserved(),
                        gov.budget()
                    ),
                    retries: 0,
                });
            }
        }
        let token = CancelToken::never();
        // Capacity 1 is exact, not an optimization: the worker sends one
        // outcome and drops the sender, so a bounded rendezvous slot is
        // all a ticket ever needs (`conc/unbounded-channel`).
        let (tx, rx) = mpsc::sync_channel(1);
        let req = Request {
            id,
            sql: sql.to_string(),
            token: token.clone(),
            deadline,
            submitted: Instant::now(),
            reply: tx,
        };
        let pushed = match self.shared.cfg.admit {
            AdmitPolicy::Shed => self.queue.try_push(req),
            AdmitPolicy::Block => self.queue.push_blocking(req),
        };
        match pushed {
            Ok(()) => Ok(Ticket { id, rx, token }),
            Err(e) => {
                let reason = match e {
                    PushError::Full(_) => RejectReason::ShedQueueFull,
                    PushError::Closed(_) => RejectReason::ShedShutdown,
                };
                self.shared.stats.rejected.bump();
                self.shared.stats.shed.bump();
                Err(Rejection {
                    id,
                    reason,
                    detail: format!("admission refused: {}", reason.code()),
                    retries: 0,
                })
            }
        }
    }

    /// The process-wide failpoint schedule (shared handle: `rearm` /
    /// `disarm` here take effect in every worker immediately).
    pub fn failpoints(&self) -> FailpointRegistry {
        self.shared.cfg.cse.failpoints.clone()
    }

    pub fn breaker(&self) -> &Breaker {
        &self.shared.breaker
    }

    /// The global memory governor, if [`ServerConfig::mem_budget`] is set.
    pub fn memory_governor(&self) -> Option<&MemoryGovernor> {
        self.shared.governor.as_ref()
    }

    pub fn stats(&self) -> ServerStats {
        let breaker = self.shared.breaker.snapshot();
        let s = &self.shared.stats;
        ServerStats {
            submitted: s.submitted.get(),
            completed: s.completed.get(),
            degraded: s.degraded.get(),
            rejected: s.rejected.get(),
            shed: s.shed.get(),
            retries: s.retries.get(),
            canceled: s.canceled.get(),
            deadline_expired: s.deadline_expired.get(),
            exec_faults: s.exec_faults.get(),
            worker_panics: s.worker_panics.get(),
            shed_memory: s.shed_memory.get(),
            breaker,
        }
    }

    /// Per-site lock counters for the server's three mutexes (admission
    /// queue, breaker, inflight table). All zeros unless the build enables
    /// the `lock-stats` feature; `cse_conc::TrackedMutex::recording()`
    /// says which. The serve bench arm emits these into `BENCH_serve.json`
    /// so multi-worker contention claims come with evidence attached.
    pub fn lock_stats(&self) -> Vec<LockSiteStats> {
        let mut sites = vec![
            self.queue.lock_site_stats(),
            self.shared.breaker.lock_site_stats(),
            self.shared.inflight.stats(),
        ];
        if let Some(gov) = &self.shared.governor {
            sites.push(gov.lock_site_stats());
        }
        sites
    }

    /// Racy queue depth, for monitoring only.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stop admissions, finish everything already queued, join the workers
    /// and the watchdog, and return the final counters. Idempotent;
    /// submissions racing with the close are rejected `SHED_SHUTDOWN`.
    pub fn drain(&mut self) -> ServerStats {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        if let Some(mut hook) = self.drain_hook.take() {
            hook();
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Watchdog tick: fine enough that deadline enforcement is prompt relative
/// to the millisecond-scale deadlines the tests use, coarse enough to stay
/// invisible in profiles.
const WATCHDOG_TICK: Duration = Duration::from_micros(500);

fn watchdog_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Clone-out: snapshot the inflight entries under the lock (token
        // clones are cheap Arc bumps), then act on them outside it. The
        // critical section stays O(workers) with no token method calls
        // inside, so a worker inserting/removing its attempt entry never
        // waits behind a watchdog sweep.
        let entries: Vec<InflightEntry> = shared.inflight().values().cloned().collect();
        for entry in &entries {
            // Propagate client cancels onto the running attempt; the
            // attempt token's flag is fresh per attempt, so this is the
            // only path by which an explicit cancel reaches hot loops.
            if entry.request.is_explicitly_canceled() {
                entry.attempt.cancel();
            }
            // Belt-and-braces deadline enforcement: the attempt token
            // carries the deadline and cooperative checks normally trip
            // on it first; canceling here additionally stops code that
            // only polls the flag.
            if let Some(d) = entry.deadline {
                if Instant::now() >= d {
                    entry.attempt.cancel();
                }
            }
            // A reservation can only outrun its grant via unchecked
            // recovery charges; cancel the runaway attempt rather than
            // letting it eat into every other request's headroom.
            if entry
                .reservation
                .as_ref()
                .is_some_and(MemReservation::over_grant)
            {
                entry.attempt.cancel();
            }
        }
        std::thread::sleep(WATCHDOG_TICK);
    }
}

fn worker_loop(shared: &Shared, queue: &BoundedQueue<Request>) {
    while let Some(req) = queue.pop() {
        // A panic anywhere in the attempt (outside the pipeline's own
        // catch_unwind) must not kill the worker: convert it into a
        // structured rejection and keep serving.
        //
        // Unwind safety: `process` mutates nothing that outlives it except
        // the shared counters (independent atomics), the inflight map
        // (behind a poison-recovering tracked mutex whose sections are
        // single map operations), and the breaker, whose transitions are
        // single-lock atomic.
        let outcome = match catch_unwind(AssertUnwindSafe(|| process(shared, &req))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                shared.inflight().remove(&req.id);
                shared.stats.worker_panics.bump();
                Outcome::Rejected(Rejection {
                    id: req.id,
                    reason: RejectReason::ExecInternal,
                    detail: format!("worker panic: {}", panic_text(payload.as_ref())),
                    retries: 0,
                })
            }
        };
        let s = &shared.stats;
        match &outcome {
            Outcome::Done(reply) => {
                s.completed.bump();
                if reply.rung != Rung::FullCse || !reply.events.is_empty() {
                    s.degraded.bump();
                }
                s.retries.add(u64::from(reply.retries));
            }
            Outcome::Rejected(rej) => {
                s.rejected.bump();
                s.retries.add(u64::from(rej.retries));
                match rej.reason {
                    RejectReason::ReqCanceled => s.canceled.bump(),
                    RejectReason::ReqDeadline => s.deadline_expired.bump(),
                    RejectReason::ExecFault => s.exec_faults.bump(),
                    RejectReason::ShedMemory => s.shed_memory.bump(),
                    _ => {}
                }
            }
        }
        // The submitter may have dropped the ticket; that is not an error.
        let _ = req.reply.send(outcome);
    }
}

/// How one attempt ended, before retry policy is applied.
enum AttemptEnd {
    Done(Box<BatchReply>),
    /// Transient: worth retrying (fault, breached limit, expired deadline).
    Transient(RejectReason, String),
    /// Terminal: retrying cannot help (client cancel, plan bug, engine bug).
    Terminal(RejectReason, String),
}

fn process(shared: &Shared, req: &Request) -> Outcome {
    let max_attempts = 1 + shared.cfg.max_retries;
    // Deterministic jitter: one PRNG per request, seeded from the server
    // seed and the request id, so a replay with the same ids sleeps the
    // same schedule regardless of worker interleaving.
    let mut rng = TestRng::new(shared.cfg.retry_seed ^ req.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match run_attempt(shared, req, attempt) {
            AttemptEnd::Done(reply) => return Outcome::Done(*reply),
            AttemptEnd::Terminal(reason, detail) => {
                return Outcome::Rejected(Rejection {
                    id: req.id,
                    reason,
                    detail,
                    retries: attempt - 1,
                })
            }
            AttemptEnd::Transient(reason, detail) => {
                if attempt >= max_attempts {
                    return Outcome::Rejected(Rejection {
                        id: req.id,
                        reason,
                        detail: format!("retries exhausted ({}): {detail}", attempt - 1),
                        retries: attempt - 1,
                    });
                }
                let exp = 1u32 << (attempt - 1).min(8);
                let jitter = 0.5 + rng.range_f64(0.0, 1.0);
                let backoff = shared.cfg.retry_backoff.mul_f64(f64::from(exp) * jitter);
                std::thread::sleep(backoff);
            }
        }
    }
}

fn run_attempt(shared: &Shared, req: &Request, attempt: u32) -> AttemptEnd {
    // A request canceled while queued (or between attempts) stops here —
    // no planning work on behalf of a gone client.
    if req.token.is_explicitly_canceled() {
        return AttemptEnd::Terminal(
            RejectReason::ReqCanceled,
            "canceled before the attempt started".into(),
        );
    }
    // The serving layer's own failpoint: a transient worker-side fault
    // (think: scratch-space allocation failure) before any planning work.
    if shared.cfg.cse.failpoints.should_fail(sites::SERVE_WORKER) {
        return AttemptEnd::Transient(
            RejectReason::ExecFault,
            format!("injected fault at {}", sites::SERVE_WORKER),
        );
    }

    // Fresh attempt token: new flag (a previous attempt's watchdog cancel
    // must not leak in), fresh deadline.
    let attempt_token = match req.deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::never(),
    };
    let deadline_at = req.deadline.map(|d| Instant::now() + d);

    // Take the attempt's memory grant before any planning work. Under
    // shed admission a full pool refuses immediately (the retry loop's
    // backoff gives releases time to land); under block admission the
    // reserve parks until room frees up or the attempt token trips.
    let reservation = match &shared.governor {
        Some(gov) => {
            let grant = shared.cfg.mem_grant.min(gov.budget());
            let fp = Some(&shared.cfg.cse.failpoints);
            let taken = match shared.cfg.admit {
                AdmitPolicy::Shed => gov.try_reserve(grant, fp),
                AdmitPolicy::Block => gov.reserve_blocking(grant, fp, &attempt_token),
            };
            match taken {
                Ok(r) => Some(r),
                Err(ReserveError::Canceled { .. }) => return cancellation_end(req),
                Err(e) => {
                    return AttemptEnd::Transient(
                        RejectReason::ShedMemory,
                        format!("memory reservation refused: {e}"),
                    )
                }
            }
        }
        None => None,
    };

    shared.inflight().insert(
        req.id,
        InflightEntry {
            attempt: attempt_token.clone(),
            request: req.token.clone(),
            deadline: deadline_at,
            reservation: reservation.clone(),
        },
    );
    let end = run_attempt_inner(shared, req, &attempt_token, reservation.as_ref(), attempt);
    shared.inflight().remove(&req.id);
    end
}

fn run_attempt_inner(
    shared: &Shared,
    req: &Request,
    attempt_token: &CancelToken,
    reservation: Option<&MemReservation>,
    attempt: u32,
) -> AttemptEnd {
    let admission = shared.breaker.admit();
    let mut cfg = shared.cfg.cse.clone();
    cfg.cancel = attempt_token.clone();
    if admission == Admission::BaselineOnly {
        // Forced baseline (not `enable_cse = false`): the skip is recorded
        // as an OPT_FORCED degradation in the reply, so clients can see
        // they were served under an open breaker.
        cfg.fallback_only = true;
    }
    // Pressure-driven planning ladder: under memory pressure, plan fewer
    // (Elevated) or no (Critical) spools — sharing is only a win when the
    // materialization resource exists. A probe is exempt: it must run the
    // full CSE phase to measure health, and its `record_probe` must not be
    // skewed by the pool's state.
    let mut mem_forced = false;
    if admission != Admission::Probe {
        match shared.governor.as_ref().map(MemoryGovernor::pressure) {
            Some(Pressure::Critical) if !cfg.fallback_only => {
                cfg.fallback_only = true;
                mem_forced = true;
            }
            Some(Pressure::Elevated) if cfg.start_rung == Rung::FullCse => {
                cfg.start_rung = Rung::CappedCse;
                mem_forced = true;
            }
            _ => {}
        }
    }

    let optimized = match cse_core::optimize_sql(&shared.catalog, &req.sql, &cfg) {
        Ok(o) => o,
        Err(msg) => {
            if admission == Admission::Probe {
                shared.breaker.record_probe(false);
            }
            return classify_plan_failure(req, attempt_token, msg);
        }
    };
    // Breaker bookkeeping happens on planning success, before execution:
    // the breaker tracks CSE-*phase* health, and execution faults have
    // their own retry channel. A memory-forced downgrade says nothing
    // about CSE-phase health, so it stays out of the breaker's window.
    match admission {
        Admission::Full if !mem_forced => shared
            .breaker
            .record(optimized.report.rung != Rung::FullCse),
        Admission::Probe => shared
            .breaker
            .record_probe(optimized.report.rung == Rung::FullCse),
        _ => {}
    }

    let engine = Engine::new(&shared.catalog, &optimized.ctx);
    let run = engine.execute_reserved(
        &optimized.plan,
        &cfg.failpoints,
        &cfg.exec_limits,
        attempt_token,
        reservation,
        !shared.cfg.strict_faults,
    );
    match run {
        Ok(out) => {
            let mut events = optimized.report.degradations.clone();
            events.extend(out.events);
            AttemptEnd::Done(Box::new(BatchReply {
                id: req.id,
                results: out.results,
                metrics: out.metrics,
                rung: optimized.report.rung,
                events,
                admission,
                retries: attempt - 1,
                latency: req.submitted.elapsed(),
            }))
        }
        Err(ExecError::Canceled { .. }) => {
            // A watchdog memory-kill (grant outrun by unchecked recovery
            // charges) surfaces as a cancel; classify it as a memory shed
            // unless the client genuinely canceled.
            if !req.token.is_explicitly_canceled() && reservation.is_some_and(|r| r.over_grant()) {
                AttemptEnd::Transient(
                    RejectReason::ShedMemory,
                    "memory grant exceeded; attempt canceled by watchdog".into(),
                )
            } else {
                cancellation_end(req)
            }
        }
        Err(e @ ExecError::MemReservation { .. }) => {
            // Strict mode bubbles reservation exhaustion here: transient,
            // because by the retry's backoff other requests have released.
            AttemptEnd::Transient(RejectReason::ShedMemory, e.to_string())
        }
        // An injected `mem.reserve` fault simulates a refused grant, so it
        // terminalizes the same way a real one does.
        Err(ref e @ ExecError::Injected { ref site }) if site == sites::MEM_RESERVE => {
            AttemptEnd::Transient(RejectReason::ShedMemory, e.to_string())
        }
        Err(e) if e.is_recoverable() => {
            AttemptEnd::Transient(RejectReason::ExecFault, e.to_string())
        }
        Err(e) => AttemptEnd::Terminal(RejectReason::ExecInternal, e.to_string()),
    }
}

/// Classify a planning failure. Cancellation aborts surface as `Err`
/// strings from the pipeline; the token states — not the message text —
/// decide between the client-cancel and deadline paths. Everything else is
/// a deterministic planning failure that retrying cannot fix.
fn classify_plan_failure(req: &Request, attempt_token: &CancelToken, msg: String) -> AttemptEnd {
    if attempt_token.is_canceled() {
        cancellation_end(req)
    } else {
        AttemptEnd::Terminal(RejectReason::PlanRejected, msg)
    }
}

/// A canceled attempt is terminal when the *client* canceled and transient
/// (retry with a fresh deadline) when the watchdog deadline fired.
fn cancellation_end(req: &Request) -> AttemptEnd {
    if req.token.is_explicitly_canceled() {
        AttemptEnd::Terminal(RejectReason::ReqCanceled, "canceled by client".into())
    } else {
        AttemptEnd::Transient(RejectReason::ReqDeadline, "attempt deadline expired".into())
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{row, DataType, Schema, Table, Value};

    fn catalog() -> Arc<Catalog> {
        let mut t = Table::new(
            "t",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        );
        for i in 0..50 {
            t.push(row(vec![Value::Int(i % 5), Value::Int(i)])).unwrap();
        }
        let mut c = Catalog::new();
        c.register_table(t).unwrap();
        Arc::new(c)
    }

    #[test]
    fn serves_batches_on_multiple_workers() {
        let mut server = Server::new(
            catalog(),
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..12)
            .map(|_| {
                server
                    .submit(
                        "select k, sum(v) as s from t group by k; \
                         select k, count(v) as c from t group by k",
                    )
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            match t.wait() {
                Outcome::Done(reply) => {
                    assert_eq!(reply.results.len(), 2);
                    assert_eq!(reply.results[0].rows.len(), 5);
                }
                Outcome::Rejected(r) => panic!("unexpected rejection: {r:?}"),
            }
        }
        let stats = server.drain();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.completed, 12);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn zero_deadline_rejects_with_req_deadline_after_retries() {
        let mut server = Server::new(
            catalog(),
            ServerConfig {
                workers: 1,
                max_retries: 1,
                deadline: Some(Duration::ZERO),
                retry_backoff: Duration::from_micros(100),
                ..ServerConfig::default()
            },
        );
        let t = server.submit("select k from t").expect("admitted");
        match t.wait() {
            Outcome::Rejected(r) => {
                assert_eq!(r.reason, RejectReason::ReqDeadline);
                assert_eq!(r.retries, 1);
            }
            Outcome::Done(_) => panic!("a zero deadline cannot be met"),
        }
        let stats = server.drain();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn submit_after_drain_is_shed_shutdown() {
        let mut server = Server::new(catalog(), ServerConfig::default());
        server.drain();
        match server.submit("select k from t") {
            Err(r) => assert_eq!(r.reason, RejectReason::ShedShutdown),
            Ok(_) => panic!("closed server must not admit"),
        }
        assert_eq!(server.stats().shed, 1);
    }

    #[test]
    fn plan_errors_reject_without_retries() {
        let mut server = Server::new(
            catalog(),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let t = server.submit("select nope from t").expect("admitted");
        match t.wait() {
            Outcome::Rejected(r) => {
                assert_eq!(r.reason, RejectReason::PlanRejected);
                assert_eq!(r.retries, 0, "deterministic failures never retry");
            }
            Outcome::Done(_) => panic!("unknown column must fail planning"),
        }
        server.drain();
    }
}
