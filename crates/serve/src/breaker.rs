//! The per-server CSE circuit breaker.
//!
//! PR 2's degradation ladder handles *one statement's* failures; the
//! breaker aggregates them into fleet-level policy. Every normally-served
//! request reports whether its CSE phase downgraded (budget trip, panic,
//! forced fallback). When the downgrade rate over a sliding window of
//! recent requests crosses a threshold, the breaker **opens**: requests
//! are planned baseline-only (no CSE phase at all — so no per-request
//! ladder walking, no repeated `catch_unwind` of a phase that is known to
//! be unhealthy) until a cooldown passes. The first admission after the
//! cooldown becomes a **half-open probe** that runs the full CSE phase; a
//! clean probe closes the breaker, a downgraded or failed one re-opens it.
//!
//! State machine (reason codes in the server's reply/stat stream):
//!
//! ```text
//!          rate ≥ trip_ratio over ≥ min_samples
//! Closed ──────────────────────────────────────▶ Open (BREAKER_TRIPPED)
//!   ▲                                             │ cooldown elapses
//!   │ probe ran full-CSE cleanly                  ▼
//!   └─────────────────────────────────────── HalfOpen (BREAKER_PROBE)
//!             probe downgraded / failed ──▶ Open again
//! ```
//!
//! The mutex around the state is a tracked, poison-recovering wrapper
//! ([`TrackedMutex`]), matching the convention in `cse-govern`: a
//! panicking worker must not freeze admission policy for the whole
//! server, and `lock-stats` builds report this lock's contention. The
//! trip/probe/close protocol itself is model-checked exhaustively by
//! `cse_conc::models::BreakerModel` (single half-open probe invariant).

use cse_conc::{LockSiteStats, TrackedGuard, TrackedMutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Master switch; disabled means every admission is `Full`.
    pub enabled: bool,
    /// Sliding-window length (recent normally-served requests).
    pub window: usize,
    /// Minimum window occupancy before the rate is meaningful.
    pub min_samples: usize,
    /// Downgrade-rate threshold that opens the breaker.
    pub trip_ratio: f64,
    /// How long the breaker stays open before probing.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            window: 32,
            min_samples: 8,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Public view of the breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What an admitted request is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the full CSE phase (breaker closed).
    Full,
    /// Plan baseline-only (breaker open / another probe in flight).
    BaselineOnly,
    /// Run the full CSE phase as the half-open probe.
    Probe,
}

#[derive(Debug)]
enum St {
    Closed,
    Open { until: Instant },
    HalfOpen { probe_inflight: bool },
}

#[derive(Debug)]
struct Inner {
    state: St,
    /// Recent normal-mode outcomes; `true` = the CSE phase downgraded.
    window: VecDeque<bool>,
    trips: u64,
    probes: u64,
    baseline_served: u64,
}

/// Counters + state for reports ([`Breaker::snapshot`]).
#[derive(Debug, Clone)]
pub struct BreakerSnapshot {
    pub state: BreakerState,
    /// Times the breaker opened (including probe failures re-opening it).
    pub trips: u64,
    /// Half-open probes started.
    pub probes: u64,
    /// Requests served baseline-only because the breaker was open.
    pub baseline_served: u64,
}

/// The breaker. All methods are `&self`; internally a poison-recovering
/// mutex.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    inner: TrackedMutex<Inner>,
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            inner: TrackedMutex::new(
                "serve.breaker",
                Inner {
                    state: St::Closed,
                    window: VecDeque::new(),
                    trips: 0,
                    probes: 0,
                    baseline_served: 0,
                },
            ),
        }
    }

    fn lock(&self) -> TrackedGuard<'_, Inner> {
        self.inner.lock()
    }

    /// This breaker's lock counters (zeros unless built with `lock-stats`).
    pub fn lock_site_stats(&self) -> LockSiteStats {
        self.inner.stats()
    }

    /// Decide what the next request may do.
    pub fn admit(&self) -> Admission {
        if !self.cfg.enabled {
            return Admission::Full;
        }
        // Read the clock before taking the lock: the cooldown comparison
        // needs "now", but the clock call must not stretch the critical
        // section — at 8 workers the serve bench measured a 26 ms
        // cumulative hold on this site with the read inside.
        let now = Instant::now();
        let mut g = self.lock();
        match &g.state {
            St::Closed => Admission::Full,
            St::Open { until } if now < *until => {
                g.baseline_served += 1;
                Admission::BaselineOnly
            }
            St::Open { .. } => {
                g.state = St::HalfOpen {
                    probe_inflight: true,
                };
                g.probes += 1;
                Admission::Probe
            }
            St::HalfOpen { probe_inflight } => {
                if *probe_inflight {
                    g.baseline_served += 1;
                    Admission::BaselineOnly
                } else {
                    g.state = St::HalfOpen {
                        probe_inflight: true,
                    };
                    g.probes += 1;
                    Admission::Probe
                }
            }
        }
    }

    /// Report a normal-mode (`Admission::Full`) planning outcome.
    pub fn record(&self, degraded: bool) {
        if !self.cfg.enabled {
            return;
        }
        // Cooldown expiry computed outside the lock (see `admit`): one
        // clock read per record is cheaper than every contended waiter
        // inheriting the syscall's latency.
        let reopen_until = Instant::now() + self.cfg.cooldown;
        let mut g = self.lock();
        if !matches!(g.state, St::Closed) {
            return;
        }
        g.window.push_back(degraded);
        while g.window.len() > self.cfg.window {
            g.window.pop_front();
        }
        if g.window.len() >= self.cfg.min_samples {
            let bad = g.window.iter().filter(|&&d| d).count();
            if bad as f64 / g.window.len() as f64 >= self.cfg.trip_ratio {
                g.state = St::Open {
                    until: reopen_until,
                };
                g.window.clear();
                g.trips += 1;
            }
        }
    }

    /// Report the half-open probe's outcome: `ok` means the CSE phase ran
    /// to completion on its full rung. Anything else — downgrade, planning
    /// failure, cancellation — re-opens the breaker (fail safe: an
    /// inconclusive probe is not evidence of health).
    pub fn record_probe(&self, ok: bool) {
        if !self.cfg.enabled {
            return;
        }
        // The probe path is the one the 8-worker hold-time spike came
        // from: every worker's admit() waits on this lock while the probe
        // reports, so the clock read happens before acquisition and the
        // critical section is down to two field stores.
        let reopen_until = Instant::now() + self.cfg.cooldown;
        let mut g = self.lock();
        if ok {
            g.state = St::Closed;
            g.window.clear();
        } else {
            g.state = St::Open {
                until: reopen_until,
            };
            g.trips += 1;
        }
    }

    pub fn state(&self) -> BreakerState {
        self.snapshot().state
    }

    /// One lock acquisition for the whole snapshot (state + counters);
    /// this used to lock twice, doubling its contention footprint.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let g = self.lock();
        let state = match &g.state {
            St::Closed => BreakerState::Closed,
            // An open breaker whose cooldown has elapsed *reports* open
            // until an admission converts it into the half-open probe.
            St::Open { .. } => BreakerState::Open,
            St::HalfOpen { .. } => BreakerState::HalfOpen,
        };
        BreakerSnapshot {
            state,
            trips: g.trips,
            probes: g.probes,
            baseline_served: g.baseline_served,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Breaker {
        Breaker::new(BreakerConfig {
            enabled: true,
            window: 4,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(5),
        })
    }

    #[test]
    fn trips_on_downgrade_rate_and_recovers_via_probe() {
        let b = tiny();
        assert_eq!(b.admit(), Admission::Full);
        for _ in 0..2 {
            b.record(false);
        }
        for _ in 0..2 {
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::BaselineOnly);
        std::thread::sleep(Duration::from_millis(6));
        assert_eq!(b.admit(), Admission::Probe, "cooldown elapsed");
        // Other requests stay baseline while the probe is in flight.
        assert_eq!(b.admit(), Admission::BaselineOnly);
        b.record_probe(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Full);
        let snap = b.snapshot();
        assert_eq!(snap.trips, 1);
        assert_eq!(snap.probes, 1);
        assert!(snap.baseline_served >= 2);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = tiny();
        for _ in 0..4 {
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(6));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_probe(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.snapshot().trips, 2);
    }

    #[test]
    fn disabled_breaker_always_admits_fully() {
        let b = Breaker::new(BreakerConfig {
            enabled: false,
            ..BreakerConfig::default()
        });
        for _ in 0..64 {
            b.record(true);
            assert_eq!(b.admit(), Admission::Full);
        }
        assert_eq!(b.snapshot().trips, 0);
    }

    #[test]
    fn open_breaker_ignores_normal_records() {
        let b = tiny();
        for _ in 0..4 {
            b.record(true);
        }
        let trips = b.snapshot().trips;
        // Late normal-mode records (from requests admitted before the
        // trip) must not re-trip or refill the window.
        b.record(true);
        b.record(false);
        assert_eq!(b.snapshot().trips, trips);
    }
}
