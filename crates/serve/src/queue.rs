//! The bounded admission queue.
//!
//! A minimal MPMC queue built from a tracked mutex over a `VecDeque` plus
//! two condvars — the build environment has no crossbeam, and the server
//! needs exactly three behaviours from it: bounded capacity with an
//! *immediate* full signal (so admission control can shed), an optional
//! blocking push (backpressure), and a close that lets consumers drain
//! what was already admitted before they exit.
//!
//! The mutex is a [`TrackedMutex`], so `lock-stats` builds report this
//! queue's acquisition/contention/hold-time counters per site; the
//! semantics of these operations are model-checked exhaustively by
//! `cse_conc::models::QueueModel`. Lock acquisitions recover from
//! poisoning (built into the tracked wrapper): a panicking producer or
//! consumer must not wedge the whole server. Poison recovery is sound
//! here because every critical section leaves `Inner` consistent at every
//! statement boundary — a `VecDeque` push/pop either happens or does not.
//!
//! Test expectations on push/pop results use `expect` with context rather
//! than bare `unwrap()`: when a queue invariant breaks, the panic message
//! should say which behaviour died, not `Option::unwrap` on line N.

use cse_conc::{LockSiteStats, TrackedGuard, TrackedMutex};
use std::collections::VecDeque;
use std::sync::Condvar;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (shed-mode pushes only).
    Full(T),
    /// The queue was closed; nothing is admitted any more.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A bounded, closeable MPMC queue.
pub struct BoundedQueue<T> {
    inner: TrackedMutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: TrackedMutex::new(
                "serve.queue",
                Inner {
                    items: VecDeque::new(),
                    capacity: capacity.max(1),
                    closed: false,
                },
            ),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> TrackedGuard<'_, Inner<T>> {
        self.inner.lock()
    }

    /// This queue's lock counters (zeros unless built with `lock-stats`).
    pub fn lock_site_stats(&self) -> LockSiteStats {
        self.inner.stats()
    }

    /// Admit `item` if there is room, else refuse immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= g.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Admit `item`, blocking while the queue is full (backpressure).
    /// Returns the item back if the queue closes while waiting.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Err(PushError::Closed(item));
            }
            if g.items.len() < g.capacity {
                g.items.push_back(item);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            g = g.wait_on(&self.not_full);
        }
    }

    /// Take the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — consumers exit
    /// only after finishing everything that was admitted.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = g.wait_on(&self.not_empty);
        }
    }

    /// Close the queue: refuse new admissions, wake every waiter.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (racy, for stats only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shed_when_full_and_drain_after_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1)
            .expect("queue with capacity 2 admits the first item");
        q.try_push(2)
            .expect("queue with capacity 2 admits the second item");
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        q.close();
        match q.try_push(4) {
            Err(PushError::Closed(4)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        // Admitted items survive the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(10).expect("empty queue admits");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(11).is_ok())
        };
        // The producer is blocked until we make room.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(10));
        assert!(producer.join().expect("producer thread exits cleanly"));
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn pop_blocks_until_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(
            consumer.join().expect("consumer thread exits cleanly"),
            None
        );
    }

    #[test]
    fn poisoned_queue_lock_recovers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).expect("empty queue admits");
        let q2 = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _g = q2.lock();
            panic!("poison the queue mutex");
        })
        .join();
        // Every entry point recovers the poisoned lock and keeps serving.
        q.try_push(2).expect("poisoned queue still admits");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
    }
}
