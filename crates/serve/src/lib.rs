//! # cse-serve
//!
//! Multi-threaded batch serving over the similar-subexpression stack: the
//! layer that turns the single-threaded `Session` pipeline into a shared
//! server safe to put in front of many concurrent clients.
//!
//! - [`queue::BoundedQueue`]: the admission queue. Bounded; when full the
//!   server either sheds the request with a structured rejection
//!   (`SHED_QUEUE_FULL`) or blocks the submitter (backpressure), per
//!   [`AdmitPolicy`].
//! - [`Server`]: N worker threads over one shared, immutable [`Catalog`]
//!   (`Arc`), each optimizing and executing whole batches with its own
//!   memo/optimizer state. [`Server::submit`] returns a [`Ticket`];
//!   [`Server::drain`] finishes queued work and stops the workers.
//! - **Cancellation & watchdog**: every attempt runs under a
//!   [`CancelToken`] (cooperative checks in the optimizer's hot loops and
//!   the interpreter's operator loops). A watchdog thread cancels overdue
//!   attempts, so a runaway batch is stopped *without killing the worker*.
//! - **Retries**: canceled-by-deadline or transiently-faulted attempts
//!   (failpoint trips at `spool.materialize` / `scan.*` / `serve.worker`)
//!   are retried with deterministic jittered backoff (testkit PRNG) up to
//!   a cap, then rejected with the last reason code.
//! - [`breaker::Breaker`]: a per-server circuit breaker over the CSE
//!   phase's downgrade/panic rate. When the rate trips a threshold in a
//!   sliding window, the server serves baseline-only plans (the fleet-level
//!   analogue of the per-statement degradation ladder) until a half-open
//!   probe succeeds.
//!
//! Every terminal state is structured: a request either completes
//! (possibly degraded, with its [`DegradationEvent`]s attached) or is
//! rejected with a stable [`RejectReason`] code — no hangs, no silent
//! drops, no worker death.
//!
//! Shared state here follows the repo's poisoned-lock convention: every
//! lock recovers from poisoning rather than propagating it, because a
//! worker that panicked mid-request must not take the queue or the breaker
//! down with it. The queue, breaker and inflight-table mutexes are
//! `cse_conc::TrackedMutex` (poison recovery built in; per-site
//! contention counters under the `lock-stats` feature, surfaced by
//! [`Server::lock_stats`]), server counters are independent atomics, and
//! the discipline itself — no guard across planning/execution, no locks
//! in hot paths, `stats` before `inflight` — is enforced statically by
//! the `qconc` binary and model-checked by `cse-conc`'s interleaving
//! explorer.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod breaker;
pub mod queue;
pub mod server;

pub use breaker::{Admission, Breaker, BreakerConfig, BreakerSnapshot, BreakerState};
pub use cse_conc::{lock_stats_recording, LockSiteStats};
pub use queue::{BoundedQueue, PushError};
pub use server::{
    AdmitPolicy, BatchReply, Outcome, RejectReason, Rejection, Server, ServerConfig, ServerStats,
    Ticket,
};

use cse_core::CseConfig;
use cse_govern::{CancelToken, DegradationEvent, MemReservation, MemoryGovernor};
use cse_storage::Catalog;

// The whole point of this crate: the catalog and configuration must be
// shareable across worker threads. A regression that introduces `Rc` /
// `RefCell` into either fails to compile right here.
fn _assert_threading() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<Catalog>();
    is_send_sync::<CseConfig>();
    is_send_sync::<CancelToken>();
    is_send_sync::<DegradationEvent>();
    is_send_sync::<MemoryGovernor>();
    is_send_sync::<MemReservation>();
}
