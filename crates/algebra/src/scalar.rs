//! Scalar expressions: column references, literals, comparisons, boolean
//! connectives and arithmetic, plus canonicalization utilities.

use crate::ids::{ColRef, RelId, RelSet};
use cse_storage::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators. Canonicalization rewrites `>`/`>=` into `<`/`<=`
/// with swapped operands so equivalent predicates compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with operand sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression over globally-identified columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    Col(ColRef),
    Lit(Value),
    Cmp(CmpOp, Box<Scalar>, Box<Scalar>),
    /// Conjunction; always flattened and sorted by [`Scalar::normalize`].
    And(Vec<Scalar>),
    /// Disjunction; always flattened and sorted by [`Scalar::normalize`].
    Or(Vec<Scalar>),
    Not(Box<Scalar>),
    Arith(ArithOp, Box<Scalar>, Box<Scalar>),
    IsNull(Box<Scalar>),
}

impl Scalar {
    pub fn col(rel: RelId, col: u16) -> Scalar {
        Scalar::Col(ColRef::new(rel, col))
    }

    pub fn lit(v: Value) -> Scalar {
        Scalar::Lit(v)
    }

    pub fn int(i: i64) -> Scalar {
        Scalar::Lit(Value::Int(i))
    }

    pub fn cmp(op: CmpOp, a: Scalar, b: Scalar) -> Scalar {
        Scalar::Cmp(op, Box::new(a), Box::new(b))
    }

    pub fn eq(a: Scalar, b: Scalar) -> Scalar {
        Scalar::cmp(CmpOp::Eq, a, b)
    }

    /// The constant TRUE (an empty conjunction).
    pub fn true_() -> Scalar {
        Scalar::And(Vec::new())
    }

    pub fn is_true(&self) -> bool {
        matches!(self, Scalar::And(v) if v.is_empty())
            || matches!(self, Scalar::Lit(Value::Bool(true)))
    }

    /// The constant FALSE (an empty disjunction — the engine evaluates
    /// `Or([])` to FALSE, mirroring `true_` as the empty conjunction).
    pub fn false_() -> Scalar {
        Scalar::Or(Vec::new())
    }

    pub fn is_false(&self) -> bool {
        matches!(self, Scalar::Or(v) if v.is_empty())
            || matches!(self, Scalar::Lit(Value::Bool(false)))
    }

    /// Conjunction of a list of predicates (flattens trivially).
    pub fn and(preds: impl IntoIterator<Item = Scalar>) -> Scalar {
        let mut out = Vec::new();
        for p in preds {
            match p {
                Scalar::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Scalar::And(out)
        }
    }

    /// Disjunction of a list of predicates.
    pub fn or(preds: impl IntoIterator<Item = Scalar>) -> Scalar {
        let mut out = Vec::new();
        for p in preds {
            match p {
                Scalar::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Scalar::Or(out)
        }
    }

    /// Split into top-level conjuncts. TRUE splits into no conjuncts.
    pub fn conjuncts(&self) -> Vec<Scalar> {
        match self {
            Scalar::And(v) => v.iter().flat_map(|p| p.conjuncts()).collect(),
            other if other.is_true() => Vec::new(),
            other => vec![other.clone()],
        }
    }

    /// All column references in the expression.
    pub fn columns(&self) -> BTreeSet<ColRef> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| {
            if let Scalar::Col(c) = s {
                out.insert(*c);
            }
        });
        out
    }

    /// All table instances referenced.
    pub fn rels(&self) -> RelSet {
        let mut out = RelSet::EMPTY;
        self.visit(&mut |s| {
            if let Scalar::Col(c) = s {
                out.insert(c.rel);
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Scalar)) {
        f(self);
        match self {
            Scalar::Col(_) | Scalar::Lit(_) => {}
            Scalar::Cmp(_, a, b) | Scalar::Arith(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Scalar::And(v) | Scalar::Or(v) => {
                for p in v {
                    p.visit(f);
                }
            }
            Scalar::Not(a) | Scalar::IsNull(a) => a.visit(f),
        }
    }

    /// Rewrite every column reference through `map` (bottom-up). Used for
    /// view matching (mapping consumer columns onto CSE outputs) and for
    /// aligning consumers during CSE construction.
    pub fn rewrite_cols(&self, map: &impl Fn(ColRef) -> Scalar) -> Scalar {
        match self {
            Scalar::Col(c) => map(*c),
            Scalar::Lit(v) => Scalar::Lit(v.clone()),
            Scalar::Cmp(op, a, b) => Scalar::cmp(*op, a.rewrite_cols(map), b.rewrite_cols(map)),
            Scalar::And(v) => Scalar::And(v.iter().map(|p| p.rewrite_cols(map)).collect()),
            Scalar::Or(v) => Scalar::Or(v.iter().map(|p| p.rewrite_cols(map)).collect()),
            Scalar::Not(a) => Scalar::Not(Box::new(a.rewrite_cols(map))),
            Scalar::Arith(op, a, b) => Scalar::Arith(
                *op,
                Box::new(a.rewrite_cols(map)),
                Box::new(b.rewrite_cols(map)),
            ),
            Scalar::IsNull(a) => Scalar::IsNull(Box::new(a.rewrite_cols(map))),
        }
    }

    /// Canonical form: comparisons oriented so the smaller operand is on
    /// the left of symmetric ops and `>`/`>=` are eliminated; conjunctions
    /// and disjunctions flattened, sorted, deduplicated. Two logically
    /// identical predicates built in different orders normalize to the same
    /// value, which the memo and the CSE construction rely on.
    pub fn normalize(&self) -> Scalar {
        match self {
            Scalar::Col(_) | Scalar::Lit(_) => self.clone(),
            Scalar::Cmp(op, a, b) => {
                let (a, b) = (a.normalize(), b.normalize());
                match op {
                    CmpOp::Gt | CmpOp::Ge => Scalar::cmp(op.flipped(), b, a),
                    CmpOp::Eq | CmpOp::Ne if b < a => Scalar::cmp(*op, b, a),
                    _ => Scalar::cmp(*op, a, b),
                }
            }
            Scalar::And(v) => {
                let mut parts: Vec<Scalar> = Vec::with_capacity(v.len());
                for p in v {
                    match p.normalize() {
                        Scalar::And(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                parts.sort();
                parts.dedup();
                if parts.len() == 1 {
                    parts.pop().expect("len checked")
                } else {
                    Scalar::And(parts)
                }
            }
            Scalar::Or(v) => {
                let mut parts: Vec<Scalar> = Vec::with_capacity(v.len());
                for p in v {
                    match p.normalize() {
                        Scalar::Or(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                parts.sort();
                parts.dedup();
                if parts.len() == 1 {
                    parts.pop().expect("len checked")
                } else {
                    Scalar::Or(parts)
                }
            }
            Scalar::Not(a) => {
                // Normalize the child first so single-element conjunctions
                // unwrap before the negation is pushed through.
                match a.normalize() {
                    Scalar::Cmp(op, x, y) => Scalar::Cmp(op.negated(), x, y).normalize(),
                    Scalar::Not(inner) => *inner,
                    other => Scalar::Not(Box::new(other)),
                }
            }
            Scalar::Arith(op, a, b) => {
                Scalar::Arith(*op, Box::new(a.normalize()), Box::new(b.normalize()))
            }
            Scalar::IsNull(a) => Scalar::IsNull(Box::new(a.normalize())),
        }
    }

    /// Is this conjunct a column-equals-column equality (an equijoin atom)?
    pub fn as_col_eq_col(&self) -> Option<(ColRef, ColRef)> {
        if let Scalar::Cmp(CmpOp::Eq, a, b) = self {
            if let (Scalar::Col(x), Scalar::Col(y)) = (a.as_ref(), b.as_ref()) {
                return Some((*x, *y));
            }
        }
        None
    }

    /// Is this a comparison between one column and one literal? Returns
    /// (column, op-with-column-on-left, literal).
    pub fn as_col_vs_lit(&self) -> Option<(ColRef, CmpOp, Value)> {
        if let Scalar::Cmp(op, a, b) = self {
            match (a.as_ref(), b.as_ref()) {
                (Scalar::Col(c), Scalar::Lit(v)) => return Some((*c, *op, v.clone())),
                (Scalar::Lit(v), Scalar::Col(c)) => return Some((*c, op.flipped(), v.clone())),
                _ => {}
            }
        }
        None
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Col(c) => write!(f, "{c}"),
            Scalar::Lit(v) => write!(f, "{v}"),
            Scalar::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Scalar::And(v) => {
                if v.is_empty() {
                    return write!(f, "TRUE");
                }
                write!(f, "(")?;
                for (i, p) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Scalar::Or(v) => {
                if v.is_empty() {
                    return write!(f, "FALSE");
                }
                write!(f, "(")?;
                for (i, p) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Scalar::Not(a) => write!(f, "NOT {a}"),
            Scalar::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Scalar::IsNull(a) => write!(f, "{a} IS NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(r: u32, i: u16) -> Scalar {
        Scalar::col(RelId(r), i)
    }

    #[test]
    fn normalize_orients_comparisons() {
        let a = Scalar::cmp(CmpOp::Gt, c(0, 0), Scalar::int(5)).normalize();
        let b = Scalar::cmp(CmpOp::Lt, Scalar::int(5), c(0, 0)).normalize();
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_sorts_conjuncts() {
        let p1 = Scalar::and([Scalar::eq(c(0, 0), c(1, 0)), Scalar::eq(c(1, 1), c(2, 0))]);
        let p2 = Scalar::and([Scalar::eq(c(1, 1), c(2, 0)), Scalar::eq(c(0, 0), c(1, 0))]);
        assert_eq!(p1.normalize(), p2.normalize());
    }

    #[test]
    fn normalize_orders_symmetric_operands() {
        let p1 = Scalar::eq(c(1, 0), c(0, 0)).normalize();
        let p2 = Scalar::eq(c(0, 0), c(1, 0)).normalize();
        assert_eq!(p1, p2);
    }

    #[test]
    fn normalize_removes_double_negation() {
        let p = Scalar::Not(Box::new(Scalar::Not(Box::new(Scalar::eq(
            c(0, 0),
            Scalar::int(1),
        )))));
        assert_eq!(
            p.normalize(),
            Scalar::eq(c(0, 0), Scalar::int(1)).normalize()
        );
    }

    #[test]
    fn not_of_cmp_negates() {
        let p = Scalar::Not(Box::new(Scalar::cmp(CmpOp::Lt, c(0, 0), Scalar::int(3))));
        assert_eq!(
            p.normalize(),
            Scalar::cmp(CmpOp::Ge, c(0, 0), Scalar::int(3)).normalize()
        );
    }

    #[test]
    fn conjuncts_flatten() {
        let p = Scalar::and([
            Scalar::and([Scalar::eq(c(0, 0), c(1, 0)), Scalar::true_()]),
            Scalar::eq(c(2, 0), Scalar::int(1)),
        ]);
        assert_eq!(p.conjuncts().len(), 2);
        assert!(Scalar::true_().conjuncts().is_empty());
    }

    #[test]
    fn columns_and_rels() {
        let p = Scalar::and([
            Scalar::eq(c(0, 1), c(3, 2)),
            Scalar::eq(c(0, 0), Scalar::int(1)),
        ]);
        assert_eq!(p.columns().len(), 3);
        assert_eq!(p.rels(), RelSet::from_iter([RelId(0), RelId(3)]));
    }

    #[test]
    fn equijoin_atom_detection() {
        let p = Scalar::eq(c(0, 1), c(1, 2));
        assert_eq!(
            p.as_col_eq_col(),
            Some((ColRef::new(RelId(0), 1), ColRef::new(RelId(1), 2)))
        );
        assert!(Scalar::eq(c(0, 1), Scalar::int(5))
            .as_col_eq_col()
            .is_none());
    }

    #[test]
    fn col_vs_lit_flips() {
        let p = Scalar::cmp(CmpOp::Lt, Scalar::int(5), c(0, 0));
        let (col, op, v) = p.as_col_vs_lit().unwrap();
        assert_eq!(col, ColRef::new(RelId(0), 0));
        assert_eq!(op, CmpOp::Gt);
        assert_eq!(v, Value::Int(5));
    }

    #[test]
    fn rewrite_cols_substitutes() {
        let p = Scalar::eq(c(0, 0), c(1, 1));
        let q = p.rewrite_cols(&|cr| {
            if cr.rel == RelId(0) {
                Scalar::int(9)
            } else {
                Scalar::Col(cr)
            }
        });
        assert_eq!(q, Scalar::eq(Scalar::int(9), c(1, 1)));
    }
}
