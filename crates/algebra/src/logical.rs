//! Logical plan trees (the lowering target of the SQL front end and the
//! representation of covering-subexpression definitions).
//!
//! Internal operators reference columns by global [`ColRef`]; `Project`
//! appears only at query roots to name and order the delivered columns.

use crate::agg::AggExpr;
use crate::context::PlanContext;
use crate::ids::{ColRef, RelId, RelSet};
use crate::scalar::Scalar;
use std::fmt::Write as _;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a table instance.
    Get { rel: RelId },
    /// Row filter.
    Filter {
        input: Box<LogicalPlan>,
        pred: Scalar,
    },
    /// Inner join (cross join when `pred` is TRUE).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        pred: Scalar,
    },
    /// Group-by + aggregation. `out` is the synthetic rel whose columns are
    /// the aggregation results; the grouping keys keep their original
    /// global identities in the output.
    Aggregate {
        input: Box<LogicalPlan>,
        keys: Vec<ColRef>,
        aggs: Vec<AggExpr>,
        out: RelId,
    },
    /// Final projection: named output expressions (query root only).
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(String, Scalar)>,
    },
    /// Result ordering (query root only).
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(Scalar, SortOrder)>,
    },
    /// The dummy root tying a batch of statements together (§2.2 footnote:
    /// "a batch of queries is treated as a single complex query by tying
    /// them together with a dummy root operator").
    Batch { children: Vec<LogicalPlan> },
}

impl LogicalPlan {
    pub fn get(rel: RelId) -> LogicalPlan {
        LogicalPlan::Get { rel }
    }

    pub fn filter(self, pred: Scalar) -> LogicalPlan {
        if pred.is_true() {
            return self;
        }
        LogicalPlan::Filter {
            input: Box::new(self),
            pred,
        }
    }

    pub fn join(self, right: LogicalPlan, pred: Scalar) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    pub fn project(self, exprs: Vec<(String, Scalar)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// All table instances in the subtree.
    pub fn rels(&self) -> RelSet {
        match self {
            LogicalPlan::Get { rel } => RelSet::single(*rel),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. } => input.rels(),
            LogicalPlan::Join { left, right, .. } => left.rels().union(right.rels()),
            LogicalPlan::Aggregate { input, .. } => input.rels(),
            LogicalPlan::Batch { children } => children
                .iter()
                .fold(RelSet::EMPTY, |acc, c| acc.union(c.rels())),
        }
    }

    /// The globally-identified columns this operator makes available to its
    /// parent. `Project` nodes expose no global columns (they deliver named
    /// positional output).
    pub fn output_cols(&self, ctx: &PlanContext) -> Vec<ColRef> {
        match self {
            LogicalPlan::Get { rel } => {
                let n = ctx.rel(*rel).schema.len();
                (0..n).map(|i| ColRef::new(*rel, i as u16)).collect()
            }
            LogicalPlan::Filter { input, .. } | LogicalPlan::Sort { input, .. } => {
                input.output_cols(ctx)
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut cols = left.output_cols(ctx);
                cols.extend(right.output_cols(ctx));
                cols
            }
            LogicalPlan::Aggregate {
                keys, aggs, out, ..
            } => {
                let mut cols = keys.clone();
                cols.extend((0..aggs.len()).map(|i| ColRef::new(*out, i as u16)));
                cols
            }
            LogicalPlan::Project { .. } | LogicalPlan::Batch { .. } => Vec::new(),
        }
    }

    /// Check that every column referenced by an operator is produced by its
    /// input; returns a description of the first violation.
    pub fn validate(&self, ctx: &PlanContext) -> Result<(), String> {
        fn check(
            plan: &LogicalPlan,
            ctx: &PlanContext,
        ) -> Result<std::collections::BTreeSet<ColRef>, String> {
            let avail: std::collections::BTreeSet<ColRef> = match plan {
                LogicalPlan::Get { .. } => plan.output_cols(ctx).into_iter().collect(),
                LogicalPlan::Filter { input, pred } => {
                    let avail = check(input, ctx)?;
                    for c in pred.columns() {
                        if !avail.contains(&c) {
                            return Err(format!("filter references unavailable column {c}"));
                        }
                    }
                    avail
                }
                LogicalPlan::Join { left, right, pred } => {
                    let mut avail = check(left, ctx)?;
                    avail.extend(check(right, ctx)?);
                    for c in pred.columns() {
                        if !avail.contains(&c) {
                            return Err(format!("join references unavailable column {c}"));
                        }
                    }
                    avail
                }
                LogicalPlan::Aggregate {
                    input,
                    keys,
                    aggs,
                    out,
                } => {
                    let below = check(input, ctx)?;
                    for k in keys {
                        if !below.contains(k) {
                            return Err(format!("group-by key {k} unavailable"));
                        }
                    }
                    for a in aggs {
                        if let Some(arg) = &a.arg {
                            for c in arg.columns() {
                                if !below.contains(&c) {
                                    return Err(format!("aggregate arg column {c} unavailable"));
                                }
                            }
                        }
                    }
                    let mut avail: std::collections::BTreeSet<ColRef> =
                        keys.iter().copied().collect();
                    avail.extend((0..aggs.len()).map(|i| ColRef::new(*out, i as u16)));
                    avail
                }
                LogicalPlan::Project { input, exprs } => {
                    let below = check(input, ctx)?;
                    for (_, e) in exprs {
                        for c in e.columns() {
                            if !below.contains(&c) {
                                return Err(format!(
                                    "projection references unavailable column {c}"
                                ));
                            }
                        }
                    }
                    Default::default()
                }
                LogicalPlan::Sort { input, keys } => {
                    let below = check(input, ctx)?;
                    // Sort above Project refers to projection outputs, which
                    // we cannot see; only check when input exposes columns.
                    if !below.is_empty() {
                        for (k, _) in keys {
                            for c in k.columns() {
                                if !below.contains(&c) {
                                    return Err(format!("sort key column {c} unavailable"));
                                }
                            }
                        }
                    }
                    below
                }
                LogicalPlan::Batch { children } => {
                    for ch in children {
                        check(ch, ctx)?;
                    }
                    Default::default()
                }
            };
            Ok(avail)
        }
        check(self, ctx).map(|_| ())
    }

    /// Multi-line indented rendering for diagnostics and tests.
    pub fn display(&self, ctx: &PlanContext) -> String {
        let mut out = String::new();
        self.fmt_indent(ctx, 0, &mut out);
        out
    }

    fn fmt_indent(&self, ctx: &PlanContext, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Get { rel } => {
                let _ = writeln!(out, "{pad}Get {} [{rel}]", ctx.rel(*rel).alias_or_name());
            }
            LogicalPlan::Filter { input, pred } => {
                let _ = writeln!(out, "{pad}Filter {pred}");
                input.fmt_indent(ctx, depth + 1, out);
            }
            LogicalPlan::Join { left, right, pred } => {
                let _ = writeln!(out, "{pad}Join {pred}");
                left.fmt_indent(ctx, depth + 1, out);
                right.fmt_indent(ctx, depth + 1, out);
            }
            LogicalPlan::Aggregate {
                input, keys, aggs, ..
            } => {
                let keys: Vec<String> = keys.iter().map(|k| ctx.col_name(*k)).collect();
                let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate keys=[{}] aggs=[{}]",
                    keys.join(", "),
                    aggs.join(", ")
                );
                input.fmt_indent(ctx, depth + 1, out);
            }
            LogicalPlan::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                let _ = writeln!(out, "{pad}Project [{}]", names.join(", "));
                input.fmt_indent(ctx, depth + 1, out);
            }
            LogicalPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort ({} keys)", keys.len());
                input.fmt_indent(ctx, depth + 1, out);
            }
            LogicalPlan::Batch { children } => {
                let _ = writeln!(out, "{pad}Batch ({} statements)", children.len());
                for c in children {
                    c.fmt_indent(ctx, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn setup() -> (PlanContext, RelId, RelId) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let r0 = ctx.add_base_rel("t", "t", schema.clone(), b);
        let r1 = ctx.add_base_rel("u", "u", schema, b);
        (ctx, r0, r1)
    }

    #[test]
    fn rels_and_output_cols() {
        let (ctx, r0, r1) = setup();
        let plan = LogicalPlan::get(r0).join(
            LogicalPlan::get(r1),
            Scalar::eq(Scalar::col(r0, 0), Scalar::col(r1, 0)),
        );
        assert_eq!(plan.rels(), RelSet::from_iter([r0, r1]));
        assert_eq!(plan.output_cols(&ctx).len(), 4);
        assert!(plan.validate(&ctx).is_ok());
    }

    #[test]
    fn aggregate_outputs() {
        let (mut ctx, r0, _) = setup();
        let b = ctx.new_block();
        let out = ctx.add_agg_output(&[DataType::Float], b);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::get(r0)),
            keys: vec![ColRef::new(r0, 0)],
            aggs: vec![AggExpr::sum(Scalar::col(r0, 1))],
            out,
        };
        let cols = plan.output_cols(&ctx);
        assert_eq!(cols, vec![ColRef::new(r0, 0), ColRef::new(out, 0)]);
        assert!(plan.validate(&ctx).is_ok());
    }

    #[test]
    fn validate_catches_bad_column() {
        let (ctx, r0, r1) = setup();
        // Filter on u's column while only scanning t.
        let plan = LogicalPlan::get(r0).filter(Scalar::eq(Scalar::col(r1, 0), Scalar::int(1)));
        assert!(plan.validate(&ctx).is_err());
    }

    #[test]
    fn filter_true_is_identity() {
        let (_, r0, _) = setup();
        let plan = LogicalPlan::get(r0).filter(Scalar::true_());
        assert_eq!(plan, LogicalPlan::get(r0));
    }

    #[test]
    fn display_renders() {
        let (ctx, r0, r1) = setup();
        let plan = LogicalPlan::get(r0).join(
            LogicalPlan::get(r1),
            Scalar::eq(Scalar::col(r0, 0), Scalar::col(r1, 0)),
        );
        let s = plan.display(&ctx);
        assert!(s.contains("Join"));
        assert!(s.contains("Get t"));
    }
}
