//! Aggregation functions and expressions.

use crate::scalar::Scalar;
use std::fmt;

/// Supported aggregation functions. `Avg` is decomposed into `Sum`/`Count`
/// at lowering time so every function here rolls up losslessly (needed for
/// re-aggregation on top of a covering subexpression).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    Sum,
    Count,
    CountStar,
    Min,
    Max,
}

impl AggFunc {
    /// The function used to combine partial results of this function
    /// (re-aggregation over a coarser group-by): SUM and COUNT combine with
    /// SUM, MIN/MAX with themselves.
    pub fn rollup(&self) -> AggFunc {
        match self {
            AggFunc::Sum | AggFunc::Count | AggFunc::CountStar => AggFunc::Sum,
            AggFunc::Min => AggFunc::Min,
            AggFunc::Max => AggFunc::Max,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One aggregation expression, e.g. `SUM(l_extendedprice * (1 - l_discount))`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` only for `CountStar`.
    pub arg: Option<Scalar>,
}

impl AggExpr {
    pub fn new(func: AggFunc, arg: Scalar) -> Self {
        debug_assert!(func != AggFunc::CountStar);
        AggExpr {
            func,
            arg: Some(arg),
        }
    }

    pub fn count_star() -> Self {
        AggExpr {
            func: AggFunc::CountStar,
            arg: None,
        }
    }

    pub fn sum(arg: Scalar) -> Self {
        AggExpr::new(AggFunc::Sum, arg)
    }

    pub fn min(arg: Scalar) -> Self {
        AggExpr::new(AggFunc::Min, arg)
    }

    pub fn max(arg: Scalar) -> Self {
        AggExpr::new(AggFunc::Max, arg)
    }

    /// Canonical form (normalizes the argument).
    pub fn normalize(&self) -> AggExpr {
        AggExpr {
            func: self.func,
            arg: self.arg.as_ref().map(Scalar::normalize),
        }
    }

    /// The aggregation that re-aggregates partial results stored in
    /// `partial_col` (used both for eager aggregation and for computing a
    /// consumer's result from a covering subexpression).
    pub fn rollup_over(&self, partial_col: Scalar) -> AggExpr {
        AggExpr {
            func: self.func.rollup(),
            arg: Some(partial_col),
        }
    }

    /// Rewrite the argument's column references.
    pub fn rewrite_cols(&self, map: &impl Fn(crate::ids::ColRef) -> Scalar) -> AggExpr {
        AggExpr {
            func: self.func,
            arg: self.arg.as_ref().map(|a| a.rewrite_cols(map)),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.func, &self.arg) {
            (AggFunc::CountStar, _) => write!(f, "COUNT(*)"),
            (func, Some(a)) => write!(f, "{func}({a})"),
            (func, None) => write!(f, "{func}(?)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;

    #[test]
    fn rollup_functions() {
        assert_eq!(AggFunc::Sum.rollup(), AggFunc::Sum);
        assert_eq!(AggFunc::Count.rollup(), AggFunc::Sum);
        assert_eq!(AggFunc::CountStar.rollup(), AggFunc::Sum);
        assert_eq!(AggFunc::Min.rollup(), AggFunc::Min);
        assert_eq!(AggFunc::Max.rollup(), AggFunc::Max);
    }

    #[test]
    fn rollup_over_builds_sum_of_partials() {
        let a = AggExpr::count_star();
        let r = a.rollup_over(Scalar::col(RelId(7), 0));
        assert_eq!(r.func, AggFunc::Sum);
        assert_eq!(r.arg, Some(Scalar::col(RelId(7), 0)));
    }

    #[test]
    fn display() {
        assert_eq!(
            AggExpr::sum(Scalar::col(RelId(0), 3)).to_string(),
            "SUM(r0.3)"
        );
        assert_eq!(AggExpr::count_star().to_string(), "COUNT(*)");
    }
}
