//! Equijoin graphs and join compatibility (paper §4.1).
//!
//! The equijoin graph has one node per table instance and an edge between
//! two instances whenever some equivalence class contains a column of each.
//! Two SPJ expressions over the same tables are *join compatible* iff the
//! graph built from the **intersection** of their equivalence classes is
//! connected.

use crate::equiv::intersect_all;
use crate::ids::{ColRef, RelId, RelSet};
use std::collections::BTreeSet;

/// Is the equijoin graph over `rels` induced by `classes` connected?
/// A single rel is trivially connected; an empty rel set is not considered
/// connected.
pub fn is_connected(rels: RelSet, classes: &[BTreeSet<ColRef>]) -> bool {
    let nodes: Vec<RelId> = rels.iter().collect();
    match nodes.len() {
        0 => return false,
        1 => return true,
        _ => {}
    }
    // Union-find over rel ids (small, so a simple vec suffices).
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let index_of = |r: RelId| nodes.iter().position(|&n| n == r);
    for class in classes {
        // Each class connects all rels it touches (a clique).
        let touched: Vec<usize> = class.iter().filter_map(|c| index_of(c.rel)).collect();
        for w in touched.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..nodes.len()).all(|i| find(&mut parent, i) == root)
}

/// Join compatibility of a set of expressions given each expression's
/// equivalence classes, all expressed over the *same* rel ids (consumers
/// must be aligned onto common rel ids first — see `cse-core`).
///
/// Returns the intersected classes when compatible (they become the
/// covering join predicate), or `None` when not.
pub fn join_compatible(
    rels: RelSet,
    class_collections: &[Vec<BTreeSet<ColRef>>],
) -> Option<Vec<BTreeSet<ColRef>>> {
    let inter = intersect_all(class_collections);
    if is_connected(rels, &inter) {
        Some(inter)
    } else {
        None
    }
}

/// Compositional join-compatibility derivation (paper §4.1, Example 3).
///
/// If subexpression pairs of `e1`/`e2` are already known join compatible,
/// each pair contributes its (connected) equijoin subgraph; the union of
/// those subgraphs is a *lower bound* on the full expressions' intersected
/// equijoin graph. When the union already covers all tables and is
/// connected, `e1` and `e2` are join compatible — without extracting their
/// full trees or intersecting their equivalence classes.
///
/// `compatible_sub_rels` lists the rel sets of the known-compatible
/// subexpression pairs (e.g. `{R,S}` and `{S,T}` in Example 3). Returns
/// `true` when compatibility is *derivable*; `false` means "unknown — fall
/// back to the direct method", never "incompatible".
pub fn derive_compatibility_compositional(
    all_rels: RelSet,
    compatible_sub_rels: &[RelSet],
) -> bool {
    // Each compatible subexpression pair's equijoin graph is connected and
    // covers its rel set, so treat that rel set as one connected component
    // (a clique is a safe over-approximation of "connected").
    let covered = compatible_sub_rels
        .iter()
        .fold(RelSet::EMPTY, |acc, s| acc.union(*s));
    if covered != all_rels {
        return false;
    }
    // Union-find over components: sets sharing a rel merge.
    let sets: Vec<RelSet> = compatible_sub_rels.to_vec();
    let mut parent: Vec<usize> = (0..sets.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            if !sets[i].intersect(sets[j]).is_empty() {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    match sets.len() {
        0 => false,
        _ => {
            let root = find(&mut parent, 0);
            (1..sets.len()).all(|i| find(&mut parent, i) == root)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::EquivClasses;
    use crate::ids::RelId;
    use crate::scalar::Scalar;

    fn cr(r: u32, c: u16) -> ColRef {
        ColRef::new(RelId(r), c)
    }

    fn classes_of(conjuncts: &[Scalar]) -> Vec<BTreeSet<ColRef>> {
        EquivClasses::from_conjuncts(conjuncts).classes()
    }

    #[test]
    fn single_rel_is_connected() {
        assert!(is_connected(RelSet::single(RelId(0)), &[]));
        assert!(!is_connected(RelSet::EMPTY, &[]));
    }

    #[test]
    fn two_rels_need_an_edge() {
        let rels = RelSet::from_iter([RelId(0), RelId(1)]);
        assert!(!is_connected(rels, &[]));
        let class: BTreeSet<ColRef> = [cr(0, 0), cr(1, 0)].into_iter().collect();
        assert!(is_connected(rels, &[class]));
    }

    #[test]
    fn chain_of_three() {
        let rels = RelSet::from_iter([RelId(0), RelId(1), RelId(2)]);
        let c01: BTreeSet<ColRef> = [cr(0, 0), cr(1, 0)].into_iter().collect();
        let c12: BTreeSet<ColRef> = [cr(1, 1), cr(2, 0)].into_iter().collect();
        assert!(is_connected(rels, &[c01.clone(), c12]));
        // Only one edge: {0,1} connected but 2 isolated.
        assert!(!is_connected(rels, &[c01]));
    }

    #[test]
    fn big_class_is_a_clique() {
        let rels = RelSet::from_iter([RelId(0), RelId(1), RelId(2)]);
        let class: BTreeSet<ColRef> = [cr(0, 0), cr(1, 0), cr(2, 0)].into_iter().collect();
        assert!(is_connected(rels, &[class]));
    }

    #[test]
    fn paper_example_3_compositional_derivation() {
        // e1, e2 over {R, S, T}: if their {R,S} subexpressions are
        // compatible and their {S,T} subexpressions are compatible, the
        // union covers all three tables and is connected -> derivable.
        let (r, s, t) = (RelId(0), RelId(1), RelId(2));
        let all = RelSet::from_iter([r, s, t]);
        let rs = RelSet::from_iter([r, s]);
        let st = RelSet::from_iter([s, t]);
        assert!(derive_compatibility_compositional(all, &[rs, st]));
        // Missing coverage of T: not derivable (fall back).
        assert!(!derive_compatibility_compositional(all, &[rs]));
        // Disconnected union: {R,S} and {T,U} over {R,S,T,U}.
        let u = RelId(3);
        let all4 = RelSet::from_iter([r, s, t, u]);
        let tu = RelSet::from_iter([t, u]);
        assert!(!derive_compatibility_compositional(all4, &[rs, tu]));
        // Empty evidence: never derivable.
        assert!(!derive_compatibility_compositional(all, &[]));
    }

    #[test]
    fn paper_example_2_compatibility() {
        let rels = RelSet::from_iter([RelId(0), RelId(1)]);
        // e1: R.a=S.d AND R.b=S.e ; e2: R.a=S.d AND R.c=S.f  -> compatible
        let e1 = classes_of(&[
            Scalar::eq(Scalar::Col(cr(0, 0)), Scalar::Col(cr(1, 3))),
            Scalar::eq(Scalar::Col(cr(0, 1)), Scalar::Col(cr(1, 4))),
        ]);
        let e2 = classes_of(&[
            Scalar::eq(Scalar::Col(cr(0, 0)), Scalar::Col(cr(1, 3))),
            Scalar::eq(Scalar::Col(cr(0, 2)), Scalar::Col(cr(1, 5))),
        ]);
        let inter = join_compatible(rels, &[e1.clone(), e2]).expect("compatible");
        assert_eq!(inter.len(), 1);

        // e3: R.c=S.f only -> intersection with e1 empty -> not compatible
        let e3 = classes_of(&[Scalar::eq(Scalar::Col(cr(0, 2)), Scalar::Col(cr(1, 5)))]);
        assert!(join_compatible(rels, &[e1, e3]).is_none());
    }
}
