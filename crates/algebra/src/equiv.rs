//! Column equivalence classes derived from equijoin predicates (paper §4.1,
//! following the view-matching machinery of Goldstein & Larson).
//!
//! An equivalence class is a set of columns guaranteed equal in the result
//! of a normalized SPJ expression. Classes support the *intersection*
//! operation the paper uses to define join compatibility and to construct
//! the covering join predicate.

use crate::ids::ColRef;
use crate::scalar::Scalar;
use std::collections::{BTreeMap, BTreeSet};

/// A collection of column equivalence classes (union-find based).
#[derive(Debug, Clone, Default)]
pub struct EquivClasses {
    parent: BTreeMap<ColRef, ColRef>,
}

impl EquivClasses {
    pub fn new() -> Self {
        EquivClasses::default()
    }

    /// Build from the column-equality conjuncts of a predicate list. Other
    /// conjuncts are ignored.
    pub fn from_conjuncts<'a>(conjuncts: impl IntoIterator<Item = &'a Scalar>) -> Self {
        let mut ec = EquivClasses::new();
        for c in conjuncts {
            if let Some((a, b)) = c.as_col_eq_col() {
                ec.union(a, b);
            }
        }
        ec
    }

    fn find(&self, mut c: ColRef) -> ColRef {
        while let Some(&p) = self.parent.get(&c) {
            if p == c {
                break;
            }
            c = p;
        }
        c
    }

    /// Merge the classes of `a` and `b`.
    pub fn union(&mut self, a: ColRef, b: ColRef) {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parent.entry(a).or_insert(a);
        self.parent.entry(b).or_insert(b);
        if ra != rb {
            // Smaller representative wins, keeping results deterministic.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }

    /// Are two columns known equal?
    pub fn are_equal(&self, a: ColRef, b: ColRef) -> bool {
        a == b
            || (self.parent.contains_key(&a)
                && self.parent.contains_key(&b)
                && self.find(a) == self.find(b))
    }

    /// The classes with at least two members, as sorted column sets.
    pub fn classes(&self) -> Vec<BTreeSet<ColRef>> {
        let mut groups: BTreeMap<ColRef, BTreeSet<ColRef>> = BTreeMap::new();
        for &c in self.parent.keys() {
            groups.entry(self.find(c)).or_default().insert(c);
        }
        groups.into_values().filter(|g| g.len() >= 2).collect()
    }

    /// The class containing `c` (including `c`), or a singleton.
    pub fn class_of(&self, c: ColRef) -> BTreeSet<ColRef> {
        let root = self.find(c);
        let mut out: BTreeSet<ColRef> = self
            .parent
            .keys()
            .copied()
            .filter(|&x| self.find(x) == root)
            .collect();
        out.insert(c);
        out
    }
}

/// Intersect two collections of classes "in the natural way: for every pair
/// of sets, one from C1 and one from C2, output their intersection" (paper
/// Example 2). Intersections with fewer than two columns are dropped.
pub fn intersect_classes(a: &[BTreeSet<ColRef>], b: &[BTreeSet<ColRef>]) -> Vec<BTreeSet<ColRef>> {
    let mut out: Vec<BTreeSet<ColRef>> = Vec::new();
    for ca in a {
        for cb in b {
            let inter: BTreeSet<ColRef> = ca.intersection(cb).copied().collect();
            if inter.len() >= 2 && !out.contains(&inter) {
                out.push(inter);
            }
        }
    }
    out
}

/// Intersect many collections of classes (fold of [`intersect_classes`]).
pub fn intersect_all(collections: &[Vec<BTreeSet<ColRef>>]) -> Vec<BTreeSet<ColRef>> {
    match collections.split_first() {
        None => Vec::new(),
        Some((first, rest)) => rest
            .iter()
            .fold(first.clone(), |acc, next| intersect_classes(&acc, next)),
    }
}

/// Turn a collection of classes back into a minimal list of equijoin
/// conjuncts (chain each class: c0=c1, c1=c2, ...), normalized.
pub fn classes_to_conjuncts(classes: &[BTreeSet<ColRef>]) -> Vec<Scalar> {
    let mut out = Vec::new();
    for class in classes {
        let cols: Vec<ColRef> = class.iter().copied().collect();
        for w in cols.windows(2) {
            out.push(Scalar::eq(Scalar::Col(w[0]), Scalar::Col(w[1])).normalize());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;

    fn cr(r: u32, c: u16) -> ColRef {
        ColRef::new(RelId(r), c)
    }

    #[test]
    fn union_find_basics() {
        let mut ec = EquivClasses::new();
        ec.union(cr(0, 0), cr(1, 0));
        ec.union(cr(1, 0), cr(2, 0));
        assert!(ec.are_equal(cr(0, 0), cr(2, 0)));
        assert!(!ec.are_equal(cr(0, 0), cr(0, 1)));
        let classes = ec.classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 3);
    }

    #[test]
    fn from_conjuncts_ignores_non_equijoins() {
        let conj = vec![
            Scalar::eq(Scalar::Col(cr(0, 0)), Scalar::Col(cr(1, 0))),
            Scalar::eq(Scalar::Col(cr(0, 1)), Scalar::int(5)),
        ];
        let ec = EquivClasses::from_conjuncts(&conj);
        assert_eq!(ec.classes().len(), 1);
    }

    #[test]
    fn paper_example_2_intersection() {
        // R ⋈ S on (R.a=S.d AND R.b=S.e)  vs  (R.a=S.d AND R.c=S.f)
        let (ra, rb, rc) = (cr(0, 0), cr(0, 1), cr(0, 2));
        let (sd, se, sf) = (cr(1, 0), cr(1, 1), cr(1, 2));
        let c1 = vec![
            [ra, sd].into_iter().collect::<BTreeSet<_>>(),
            [rb, se].into_iter().collect(),
        ];
        let c2 = vec![
            [ra, sd].into_iter().collect::<BTreeSet<_>>(),
            [rc, sf].into_iter().collect(),
        ];
        let inter = intersect_classes(&c1, &c2);
        assert_eq!(inter.len(), 1);
        assert_eq!(inter[0], [ra, sd].into_iter().collect());

        // R ⋈ S on (R.a=S.d AND R.b=S.e)  vs  (R.c=S.f): empty intersection.
        let c3 = vec![[rc, sf].into_iter().collect::<BTreeSet<_>>()];
        assert!(intersect_classes(&c1, &c3).is_empty());
    }

    #[test]
    fn intersect_all_folds() {
        let a = vec![[cr(0, 0), cr(1, 0), cr(2, 0)]
            .into_iter()
            .collect::<BTreeSet<_>>()];
        let b = vec![[cr(0, 0), cr(1, 0)].into_iter().collect::<BTreeSet<_>>()];
        let all = intersect_all(&[a.clone(), b.clone()]);
        assert_eq!(all, b);
        assert_eq!(intersect_all(std::slice::from_ref(&a)), a);
        assert!(intersect_all(&[]).is_empty());
    }

    #[test]
    fn classes_to_conjuncts_chains() {
        let class: BTreeSet<ColRef> = [cr(0, 0), cr(1, 0), cr(2, 0)].into_iter().collect();
        let conj = classes_to_conjuncts(&[class]);
        assert_eq!(conj.len(), 2);
        let ec = EquivClasses::from_conjuncts(&conj);
        assert!(ec.are_equal(cr(0, 0), cr(2, 0)));
    }
}
