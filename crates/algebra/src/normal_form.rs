//! SPJG normal form (paper §4): `[γ] σ_p (T1 × T2 × ... × Tn)`.
//!
//! Covering-subexpression construction and view matching both operate on
//! this form: all selection and join predicates pulled into one conjunct
//! set over a flat cross product, with at most one group-by on top.

use crate::agg::AggExpr;
use crate::equiv::EquivClasses;
use crate::ids::{ColRef, RelId, RelSet};
use crate::logical::LogicalPlan;
use crate::scalar::Scalar;
use std::collections::BTreeSet;

/// Normalized select-project-join expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SpjNormal {
    /// Sorted table instances.
    pub rels: Vec<RelId>,
    /// All predicate conjuncts (selection + join), normalized and sorted.
    pub conjuncts: Vec<Scalar>,
}

impl SpjNormal {
    pub fn rel_set(&self) -> RelSet {
        RelSet::from_iter(self.rels.iter().copied())
    }

    /// Equivalence classes induced by this expression's equijoin conjuncts.
    pub fn equiv_classes(&self) -> Vec<BTreeSet<ColRef>> {
        EquivClasses::from_conjuncts(&self.conjuncts).classes()
    }

    /// The conjuncts that are *not* column-equality atoms (the "local" or
    /// residual predicate once equijoins are factored out).
    pub fn non_equijoin_conjuncts(&self) -> Vec<Scalar> {
        self.conjuncts
            .iter()
            .filter(|c| c.as_col_eq_col().is_none())
            .cloned()
            .collect()
    }

    /// The whole predicate as one normalized conjunction.
    pub fn predicate(&self) -> Scalar {
        Scalar::and(self.conjuncts.iter().cloned()).normalize()
    }
}

/// Group-by on top of an SPJ.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    pub keys: Vec<ColRef>,
    pub aggs: Vec<AggExpr>,
    /// The synthetic rel whose columns are the aggregate outputs.
    pub out: RelId,
}

/// Normalized SPJG expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SpjgNormal {
    pub spj: SpjNormal,
    pub group: Option<GroupSpec>,
}

impl SpjgNormal {
    /// Extract the normal form from a logical plan subtree, if the subtree
    /// is an SPJG expression (Get/Filter/Join with at most one Aggregate on
    /// top). Projections and sorts make an expression non-SPJG here; the
    /// planner keeps those at the root, above the extraction point.
    pub fn from_plan(plan: &LogicalPlan) -> Option<SpjgNormal> {
        match plan {
            LogicalPlan::Aggregate {
                input,
                keys,
                aggs,
                out,
            } => {
                let spj = collect_spj(input)?;
                Some(SpjgNormal {
                    spj,
                    group: Some(GroupSpec {
                        keys: keys.clone(),
                        aggs: aggs.iter().map(AggExpr::normalize).collect(),
                        out: *out,
                    }),
                })
            }
            _ => Some(SpjgNormal {
                spj: collect_spj(plan)?,
                group: None,
            }),
        }
    }

    /// `true` iff the expression has a group-by (the `G` flag of the table
    /// signature).
    pub fn has_group(&self) -> bool {
        self.group.is_some()
    }

    /// The columns a parent needs from this expression's output.
    pub fn output_cols(&self) -> Vec<ColRef> {
        match &self.group {
            Some(g) => {
                let mut cols = g.keys.clone();
                cols.extend((0..g.aggs.len()).map(|i| ColRef::new(g.out, i as u16)));
                cols
            }
            None => Vec::new(), // SPJ exposes all input columns; callers use rels
        }
    }
}

/// Flatten a pure SPJ tree into (rels, conjuncts); `None` if the subtree
/// contains anything but Get/Filter/Join.
fn collect_spj(plan: &LogicalPlan) -> Option<SpjNormal> {
    let mut rels = Vec::new();
    let mut conjuncts = Vec::new();
    fn walk(plan: &LogicalPlan, rels: &mut Vec<RelId>, conj: &mut Vec<Scalar>) -> bool {
        match plan {
            LogicalPlan::Get { rel } => {
                rels.push(*rel);
                true
            }
            LogicalPlan::Filter { input, pred } => {
                conj.extend(pred.conjuncts());
                walk(input, rels, conj)
            }
            LogicalPlan::Join { left, right, pred } => {
                conj.extend(pred.conjuncts());
                walk(left, rels, conj) && walk(right, rels, conj)
            }
            _ => false,
        }
    }
    if !walk(plan, &mut rels, &mut conjuncts) {
        return None;
    }
    rels.sort();
    let mut conjuncts: Vec<Scalar> = conjuncts.iter().map(Scalar::normalize).collect();
    conjuncts.sort();
    conjuncts.dedup();
    Some(SpjNormal { rels, conjuncts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PlanContext;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn setup() -> (PlanContext, RelId, RelId, RelId) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let a = ctx.add_base_rel("a", "a", schema.clone(), b);
        let bb = ctx.add_base_rel("b", "b", schema.clone(), b);
        let c = ctx.add_base_rel("c", "c", schema, b);
        (ctx, a, bb, c)
    }

    #[test]
    fn flattens_join_tree() {
        let (_, a, b, c) = setup();
        // (a ⋈ b) ⋈ c with filters on a and c.
        let plan = LogicalPlan::get(a)
            .filter(Scalar::cmp(
                crate::scalar::CmpOp::Gt,
                Scalar::col(a, 0),
                Scalar::int(0),
            ))
            .join(
                LogicalPlan::get(b),
                Scalar::eq(Scalar::col(a, 0), Scalar::col(b, 0)),
            )
            .join(
                LogicalPlan::get(c).filter(Scalar::eq(Scalar::col(c, 1), Scalar::int(1))),
                Scalar::eq(Scalar::col(b, 0), Scalar::col(c, 0)),
            );
        let n = SpjgNormal::from_plan(&plan).unwrap();
        assert!(!n.has_group());
        assert_eq!(n.spj.rels, vec![a, b, c]);
        assert_eq!(n.spj.conjuncts.len(), 4);
        assert_eq!(n.spj.equiv_classes().len(), 1); // a.k = b.k = c.k chains
        assert_eq!(n.spj.non_equijoin_conjuncts().len(), 2);
    }

    #[test]
    fn aggregate_on_top() {
        let (mut ctx, a, b, _) = setup();
        let blk = ctx.new_block();
        let out = ctx.add_agg_output(&[DataType::Float], blk);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::get(a).join(
                LogicalPlan::get(b),
                Scalar::eq(Scalar::col(a, 0), Scalar::col(b, 0)),
            )),
            keys: vec![ColRef::new(a, 0)],
            aggs: vec![AggExpr::sum(Scalar::col(b, 1))],
            out,
        };
        let n = SpjgNormal::from_plan(&plan).unwrap();
        assert!(n.has_group());
        assert_eq!(
            n.output_cols(),
            vec![ColRef::new(a, 0), ColRef::new(out, 0)]
        );
    }

    #[test]
    fn project_is_not_spjg() {
        let (_, a, _, _) = setup();
        let plan = LogicalPlan::get(a).project(vec![("x".into(), Scalar::col(a, 0))]);
        assert!(SpjgNormal::from_plan(&plan).is_none());
    }

    #[test]
    fn normal_form_is_order_insensitive() {
        let (_, a, b, _) = setup();
        let j1 = LogicalPlan::get(a).join(
            LogicalPlan::get(b),
            Scalar::eq(Scalar::col(a, 0), Scalar::col(b, 0)),
        );
        let j2 = LogicalPlan::get(b).join(
            LogicalPlan::get(a),
            Scalar::eq(Scalar::col(b, 0), Scalar::col(a, 0)),
        );
        assert_eq!(
            SpjgNormal::from_plan(&j1).unwrap().spj,
            SpjgNormal::from_plan(&j2).unwrap().spj
        );
    }
}
