//! The plan context: table-instance registry shared by planner, memo,
//! optimizer and executor for one statement or batch.

use crate::ids::{BlockId, ColRef, RelId};
use cse_storage::{DataType, SchemaRef};
use std::sync::Arc;

/// What kind of relation a [`RelId`] denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    /// A base table (or materialized view contents) from the catalog.
    Base,
    /// Synthetic outputs of an aggregate operator: column `i` of the rel is
    /// the i-th aggregation expression's result.
    AggOutput,
    /// A delta work table driving view maintenance (paper §6.4). Treated
    /// like a base table but signature generation marks it specially.
    Delta,
}

/// Metadata for one table instance.
#[derive(Debug, Clone)]
pub struct RelInfo {
    pub kind: RelKind,
    /// Base table name in the catalog (for `Base`/`Delta`), or a synthetic
    /// name for aggregate outputs.
    pub name: String,
    /// The alias used in the query text, for diagnostics.
    pub alias: String,
    /// Schema of the instance's columns. For `AggOutput` rels this is the
    /// synthesized schema of the aggregate results.
    pub schema: SchemaRef,
    /// The query block this instance belongs to.
    pub block: BlockId,
}

/// Allocates and resolves [`RelId`]s for one optimization. Every query of a
/// batch shares one context so that covering subexpressions can span
/// queries.
#[derive(Debug, Default, Clone)]
pub struct PlanContext {
    rels: Vec<RelInfo>,
    next_block: u32,
}

impl PlanContext {
    pub fn new() -> Self {
        PlanContext::default()
    }

    /// Allocate a fresh query-block id.
    pub fn new_block(&mut self) -> BlockId {
        let b = BlockId(self.next_block);
        self.next_block += 1;
        b
    }

    /// Register a base-table instance.
    pub fn add_base_rel(
        &mut self,
        name: impl Into<String>,
        alias: impl Into<String>,
        schema: SchemaRef,
        block: BlockId,
    ) -> RelId {
        self.push(RelInfo {
            kind: RelKind::Base,
            name: name.into(),
            alias: alias.into(),
            schema,
            block,
        })
    }

    /// Register a delta-table instance (view maintenance).
    pub fn add_delta_rel(
        &mut self,
        name: impl Into<String>,
        schema: SchemaRef,
        block: BlockId,
    ) -> RelId {
        let name = name.into();
        self.push(RelInfo {
            kind: RelKind::Delta,
            alias: name.clone(),
            name,
            schema,
            block,
        })
    }

    /// Register the synthetic output rel of an aggregate operator. The
    /// schema names are `agg0`, `agg1`, ... with the given types.
    pub fn add_agg_output(&mut self, types: &[DataType], block: BlockId) -> RelId {
        let schema = cse_storage::Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| cse_storage::ColumnDef::new(format!("agg{i}"), *t))
                .collect(),
        );
        self.push(RelInfo {
            kind: RelKind::AggOutput,
            name: format!("γ{}", self.rels.len()),
            alias: String::new(),
            schema: Arc::new(schema),
            block,
        })
    }

    fn push(&mut self, info: RelInfo) -> RelId {
        assert!(
            (self.rels.len() as u32) < crate::ids::MAX_RELS,
            "too many table instances"
        );
        let id = RelId(self.rels.len() as u32);
        self.rels.push(info);
        id
    }

    pub fn rel(&self, id: RelId) -> &RelInfo {
        &self.rels[id.0 as usize]
    }

    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    pub fn rels(&self) -> impl Iterator<Item = (RelId, &RelInfo)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Human-readable name of a column, e.g. `customer.c_custkey`.
    pub fn col_name(&self, c: ColRef) -> String {
        let info = self.rel(c.rel);
        match info.schema.columns().get(c.col as usize) {
            Some(cd) => format!("{}.{}", info.alias_or_name(), cd.name),
            None => format!("{}.<{}>", info.alias_or_name(), c.col),
        }
    }

    /// Data type of a column.
    pub fn col_type(&self, c: ColRef) -> DataType {
        self.rel(c.rel).schema.column(c.col as usize).data_type
    }

    /// Infer the result type of a scalar expression.
    pub fn scalar_type(&self, s: &crate::scalar::Scalar) -> DataType {
        use crate::scalar::Scalar;
        match s {
            Scalar::Col(c) => self.col_type(*c),
            Scalar::Lit(v) => v.data_type().unwrap_or(DataType::Int),
            Scalar::Cmp(..)
            | Scalar::And(_)
            | Scalar::Or(_)
            | Scalar::Not(_)
            | Scalar::IsNull(_) => DataType::Bool,
            Scalar::Arith(_, a, b) => {
                let (ta, tb) = (self.scalar_type(a), self.scalar_type(b));
                if ta == DataType::Float || tb == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
        }
    }

    /// Result type of an aggregate expression.
    pub fn agg_type(&self, a: &crate::agg::AggExpr) -> DataType {
        use crate::agg::AggFunc;
        match a.func {
            AggFunc::Count | AggFunc::CountStar => DataType::Int,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
                .arg
                .as_ref()
                .map(|arg| self.scalar_type(arg))
                .unwrap_or(DataType::Int),
        }
    }

    /// Resolve `column_name` within the instance `rel`.
    pub fn resolve_col(&self, rel: RelId, column: &str) -> Option<ColRef> {
        self.rel(rel)
            .schema
            .index_of(column)
            .map(|i| ColRef::new(rel, i as u16))
    }
}

impl RelInfo {
    pub fn alias_or_name(&self) -> &str {
        if self.alias.is_empty() {
            &self.name
        } else {
            &self.alias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::Schema;

    fn schema() -> SchemaRef {
        Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
        ]))
    }

    #[test]
    fn allocate_and_resolve() {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let r = ctx.add_base_rel("t", "t1", schema(), b);
        assert_eq!(ctx.rel(r).name, "t");
        assert_eq!(ctx.resolve_col(r, "B"), Some(ColRef::new(r, 1)));
        assert_eq!(ctx.resolve_col(r, "zz"), None);
        assert_eq!(ctx.col_name(ColRef::new(r, 0)), "t1.a");
        assert_eq!(ctx.col_type(ColRef::new(r, 1)), DataType::Str);
    }

    #[test]
    fn agg_output_rel() {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let r = ctx.add_agg_output(&[DataType::Float, DataType::Int], b);
        assert_eq!(ctx.rel(r).kind, RelKind::AggOutput);
        assert_eq!(ctx.rel(r).schema.len(), 2);
        assert_eq!(ctx.col_type(ColRef::new(r, 0)), DataType::Float);
    }

    #[test]
    fn blocks_are_distinct() {
        let mut ctx = PlanContext::new();
        assert_ne!(ctx.new_block(), ctx.new_block());
    }
}
