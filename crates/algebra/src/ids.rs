//! Identifiers for table instances, columns and query blocks.
//!
//! Columns are identified *globally* within one optimization (a statement or
//! a whole batch): every table instance gets a fresh [`RelId`], and a column
//! is a `(RelId, ordinal)` pair. Global identities stay stable under join
//! reordering in the memo, which is what makes equivalence classes, view
//! matching and covering-subexpression construction tractable.

use std::fmt;

/// A table *instance* (a.k.a. correlation / range variable). Two references
/// to the same base table in one query get different `RelId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A query block: one query of a batch, or one subquery. Used to decide
/// whether two expressions come from "different parts of the query".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A globally-identified column: ordinal `col` of table instance `rel`.
/// For derived rels (aggregate outputs), `col` indexes the derived outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    pub rel: RelId,
    pub col: u16,
}

impl ColRef {
    pub fn new(rel: RelId, col: u16) -> Self {
        ColRef { rel, col }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.rel, self.col)
    }
}

/// Number of 64-bit words in a [`RelSet`]; caps table instances
/// (including synthetic aggregate-output rels) per optimization at 512.
pub const RELSET_WORDS: usize = 32;
/// Maximum rel id representable in a [`RelSet`].
pub const MAX_RELS: u32 = (RELSET_WORDS * 64) as u32;

/// A compact set of [`RelId`]s (fixed-size bitset; one optimization never
/// allocates more than [`MAX_RELS`] instances — asserted at allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(pub [u64; RELSET_WORDS]);

impl RelSet {
    pub const EMPTY: RelSet = RelSet([0; RELSET_WORDS]);

    pub fn single(rel: RelId) -> Self {
        assert!(
            rel.0 < MAX_RELS,
            "more than {MAX_RELS} table instances in one optimization"
        );
        let mut w = [0u64; RELSET_WORDS];
        w[(rel.0 / 64) as usize] = 1u64 << (rel.0 % 64);
        RelSet(w)
    }

    #[allow(clippy::should_implement_trait)] // const-friendly inherent ctor
    pub fn from_iter(rels: impl IntoIterator<Item = RelId>) -> Self {
        let mut s = RelSet::EMPTY;
        for r in rels {
            s.insert(r);
        }
        s
    }

    pub fn insert(&mut self, rel: RelId) {
        assert!(
            rel.0 < MAX_RELS,
            "more than {MAX_RELS} table instances in one optimization"
        );
        self.0[(rel.0 / 64) as usize] |= 1u64 << (rel.0 % 64);
    }

    pub fn contains(&self, rel: RelId) -> bool {
        if rel.0 >= MAX_RELS {
            return false;
        }
        self.0[(rel.0 / 64) as usize] & (1u64 << (rel.0 % 64)) != 0
    }

    pub fn union(&self, other: RelSet) -> RelSet {
        let mut w = self.0;
        for (a, b) in w.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
        RelSet(w)
    }

    pub fn intersect(&self, other: RelSet) -> RelSet {
        let mut w = self.0;
        for (a, b) in w.iter_mut().zip(other.0.iter()) {
            *a &= b;
        }
        RelSet(w)
    }

    pub fn difference(&self, other: RelSet) -> RelSet {
        let mut w = self.0;
        for (a, b) in w.iter_mut().zip(other.0.iter()) {
            *a &= !b;
        }
        RelSet(w)
    }

    pub fn is_subset(&self, other: RelSet) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a & !b == 0)
    }

    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|w| *w == 0)
    }

    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..MAX_RELS)
            .filter(|i| self.contains(RelId(*i)))
            .map(RelId)
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relset_basics() {
        let mut s = RelSet::EMPTY;
        assert!(s.is_empty());
        s.insert(RelId(3));
        s.insert(RelId(100));
        assert!(s.contains(RelId(3)));
        assert!(!s.contains(RelId(4)));
        assert_eq!(s.len(), 2);
        let items: Vec<_> = s.iter().collect();
        assert_eq!(items, vec![RelId(3), RelId(100)]);
    }

    #[test]
    fn relset_algebra() {
        let a = RelSet::from_iter([RelId(1), RelId(2)]);
        let b = RelSet::from_iter([RelId(2), RelId(3)]);
        assert_eq!(
            a.union(b),
            RelSet::from_iter([RelId(1), RelId(2), RelId(3)])
        );
        assert_eq!(a.intersect(b), RelSet::single(RelId(2)));
        assert_eq!(a.difference(b), RelSet::single(RelId(1)));
        assert!(RelSet::single(RelId(2)).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ColRef::new(RelId(2), 5).to_string(), "r2.5");
        assert_eq!(
            RelSet::from_iter([RelId(0), RelId(2)]).to_string(),
            "{r0,r2}"
        );
    }
}
