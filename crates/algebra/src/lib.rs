//! # cse-algebra
//!
//! Relational-algebra layer: globally-identified columns, scalar and
//! aggregate expressions, logical plans, SPJG normal form, equivalence
//! classes, equijoin graphs and predicate implication. This is the shared
//! vocabulary of the memo, the optimizer and the CSE machinery.

pub mod agg;
pub mod context;
pub mod equiv;
pub mod ids;
pub mod implication;
pub mod join_graph;
pub mod logical;
pub mod normal_form;
pub mod scalar;

pub use agg::{AggExpr, AggFunc};
pub use context::{PlanContext, RelInfo, RelKind};
pub use equiv::{classes_to_conjuncts, intersect_all, intersect_classes, EquivClasses};
pub use ids::{BlockId, ColRef, RelId, RelSet};
pub use implication::{column_ranges, implies, Interval};
pub use join_graph::{derive_compatibility_compositional, is_connected, join_compatible};
pub use logical::{LogicalPlan, SortOrder};
pub use normal_form::{GroupSpec, SpjNormal, SpjgNormal};
pub use scalar::{ArithOp, CmpOp, Scalar};
