//! Conservative predicate implication testing.
//!
//! `implies(p, q)` returns true only when it can *prove* that every row
//! satisfying `p` satisfies `q`. Used by view matching to verify that a
//! consumer's predicate implies the covering predicate of a CSE, and by
//! tests. The checker understands:
//!
//! - syntactic conjunct containment (after normalization),
//! - single-column ranges (`c < 5` implies `c < 10`),
//! - disjunction on the right (`p ⇒ q1 ∨ q2` if `p ⇒ q1` or `p ⇒ q2`),
//! - conjunction on both sides.

use crate::ids::ColRef;
use crate::scalar::{CmpOp, Scalar};
use cse_storage::Value;
use std::collections::BTreeMap;

/// A one-column interval with optional inclusive/exclusive bounds, plus an
/// optional exact-equality pin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Interval {
    pub lo: Option<(Value, bool)>, // (bound, inclusive)
    pub hi: Option<(Value, bool)>,
}

impl Interval {
    fn tighten_lo(&mut self, v: Value, inclusive: bool) {
        let better = match &self.lo {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Less => false,
            },
        };
        if better {
            self.lo = Some((v, inclusive));
        }
    }

    fn tighten_hi(&mut self, v: Value, inclusive: bool) {
        let better = match &self.hi {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };
        if better {
            self.hi = Some((v, inclusive));
        }
    }

    /// Does this interval lie entirely inside `outer`?
    pub fn within(&self, outer: &Interval) -> bool {
        let lo_ok = match (&outer.lo, &self.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((ov, oi)), Some((sv, si))) => match sv.total_cmp(ov) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *oi || !*si,
                std::cmp::Ordering::Less => false,
            },
        };
        let hi_ok = match (&outer.hi, &self.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((ov, oi)), Some((sv, si))) => match sv.total_cmp(ov) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *oi || !*si,
                std::cmp::Ordering::Greater => false,
            },
        };
        lo_ok && hi_ok
    }
}

/// Extract per-column intervals from the col-vs-literal conjuncts of `p`.
/// Equality `c = v` pins both bounds.
pub fn column_ranges(p: &Scalar) -> BTreeMap<ColRef, Interval> {
    let mut out: BTreeMap<ColRef, Interval> = BTreeMap::new();
    for conj in p.conjuncts() {
        if let Some((col, op, v)) = conj.as_col_vs_lit() {
            let iv = out.entry(col).or_default();
            match op {
                CmpOp::Eq => {
                    iv.tighten_lo(v.clone(), true);
                    iv.tighten_hi(v, true);
                }
                CmpOp::Lt => iv.tighten_hi(v, false),
                CmpOp::Le => iv.tighten_hi(v, true),
                CmpOp::Gt => iv.tighten_lo(v, false),
                CmpOp::Ge => iv.tighten_lo(v, true),
                CmpOp::Ne => {}
            }
        }
    }
    out
}

/// Conservative implication: true only when provable.
pub fn implies(p: &Scalar, q: &Scalar) -> bool {
    let q = q.normalize();
    if q.is_true() {
        return true;
    }
    let p = p.normalize();
    if p == q {
        return true;
    }
    // Disjunction on the left: p1∨p2 ⇒ q iff p1 ⇒ q and p2 ⇒ q.
    if let Scalar::Or(ps) = &p {
        if !ps.is_empty() {
            return ps.iter().all(|pi| implies(pi, &q));
        }
    }
    match &q {
        Scalar::And(qs) => return qs.iter().all(|qi| implies(&p, qi)),
        Scalar::Or(qs) => {
            // p ⇒ q1∨q2 if p ⇒ some qi, or if p itself is a disjunction
            // whose every branch implies q.
            return qs.iter().any(|qi| implies(&p, qi));
        }
        _ => {}
    }
    // q is now an atom. Check syntactic containment among p's conjuncts.
    let p_conjuncts = p.conjuncts();
    if p_conjuncts.contains(&q) {
        return true;
    }
    // Range reasoning for col-vs-literal atoms.
    if let Some((qcol, qop, qv)) = q.as_col_vs_lit() {
        let ranges = column_ranges(&p);
        if let Some(iv) = ranges.get(&qcol) {
            let mut target = Interval::default();
            match qop {
                CmpOp::Eq => {
                    target.tighten_lo(qv.clone(), true);
                    target.tighten_hi(qv, true);
                }
                CmpOp::Lt => target.tighten_hi(qv, false),
                CmpOp::Le => target.tighten_hi(qv, true),
                CmpOp::Gt => target.tighten_lo(qv, false),
                CmpOp::Ge => target.tighten_lo(qv, true),
                CmpOp::Ne => return false,
            }
            return iv.within(&target);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;

    fn c(i: u16) -> Scalar {
        Scalar::col(RelId(0), i)
    }

    fn lt(a: Scalar, v: i64) -> Scalar {
        Scalar::cmp(CmpOp::Lt, a, Scalar::int(v))
    }

    fn gt(a: Scalar, v: i64) -> Scalar {
        Scalar::cmp(CmpOp::Gt, a, Scalar::int(v))
    }

    #[test]
    fn everything_implies_true() {
        assert!(implies(&lt(c(0), 5), &Scalar::true_()));
    }

    #[test]
    fn syntactic_containment() {
        let p = Scalar::and([lt(c(0), 5), gt(c(1), 2)]);
        assert!(implies(&p, &lt(c(0), 5)));
        assert!(implies(&p, &Scalar::and([gt(c(1), 2), lt(c(0), 5)])));
        assert!(!implies(&lt(c(0), 5), &p));
    }

    #[test]
    fn range_widening() {
        assert!(implies(&lt(c(0), 5), &lt(c(0), 10)));
        assert!(!implies(&lt(c(0), 10), &lt(c(0), 5)));
        assert!(implies(&gt(c(0), 10), &gt(c(0), 5)));
        // c = 7 implies 5 < c < 10
        let eq7 = Scalar::eq(c(0), Scalar::int(7));
        assert!(implies(&eq7, &Scalar::and([gt(c(0), 5), lt(c(0), 10)])));
    }

    #[test]
    fn boundary_inclusivity() {
        let le5 = Scalar::cmp(CmpOp::Le, c(0), Scalar::int(5));
        assert!(implies(&lt(c(0), 5), &le5));
        assert!(!implies(&le5, &lt(c(0), 5)));
    }

    #[test]
    fn disjunction_on_right() {
        let p = lt(c(0), 5);
        let q = Scalar::or([lt(c(0), 10), gt(c(1), 100)]);
        assert!(implies(&p, &q));
    }

    #[test]
    fn disjunction_on_left() {
        // (c<3 OR c<5) implies c<10
        let p = Scalar::or([lt(c(0), 3), lt(c(0), 5)]);
        assert!(implies(&p, &lt(c(0), 10)));
        assert!(!implies(&p, &lt(c(0), 4)));
    }

    #[test]
    fn consumer_implies_covering_or() {
        // The CSE covering predicate shape: consumer pred must imply the OR
        // of all consumers' preds.
        let q1 = Scalar::and([gt(c(0), 0), lt(c(0), 20)]);
        let q2 = Scalar::and([gt(c(0), 5), lt(c(0), 25)]);
        let covering = Scalar::or([q1.clone(), q2.clone()]);
        assert!(implies(&q1, &covering));
        assert!(implies(&q2, &covering));
    }

    #[test]
    fn unknown_is_not_implied() {
        // No information about column 3.
        assert!(!implies(&lt(c(0), 5), &lt(c(3), 5)));
    }
}
