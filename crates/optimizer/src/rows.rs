//! Per-group cardinality estimation over the memo.
//!
//! Row counts are a *logical* property: every expression in a group yields
//! the same result, so the estimate is computed once per group from its
//! first (originally inserted) expression and cached.

use cse_cost::{Cardinality, StatsCatalog};
use cse_memo::{GroupId, Memo, Op};
use std::collections::HashMap;

/// Caching row estimator over a memo.
pub struct GroupRows<'a> {
    memo: &'a Memo,
    stats: &'a StatsCatalog,
    cache: HashMap<GroupId, f64>,
}

impl<'a> GroupRows<'a> {
    pub fn new(memo: &'a Memo, stats: &'a StatsCatalog) -> Self {
        GroupRows {
            memo,
            stats,
            cache: HashMap::new(),
        }
    }

    fn card(&self) -> Cardinality<'a> {
        Cardinality::new(&self.memo.ctx, self.stats)
    }

    /// Estimated output rows of a group.
    pub fn rows(&mut self, g: GroupId) -> f64 {
        if let Some(&r) = self.cache.get(&g) {
            return r;
        }
        // Insert a provisional value to guard against (impossible by
        // construction, but cheap to defend) cycles.
        self.cache.insert(g, 1.0);
        let eid = self.memo.group(g).exprs[0];
        let e = self.memo.gexpr(eid).clone();
        let card = self.card();
        let r = match &e.op {
            Op::Get { rel } => self.stats.rel_rows(&self.memo.ctx, *rel),
            Op::Filter { pred } => {
                let sel = cse_cost::Selectivity::new(&self.memo.ctx, self.stats).of(pred);
                (self.rows(e.children[0]) * sel).max(1.0)
            }
            Op::Join { pred } => {
                let l = self.rows(e.children[0]);
                let r = self.rows(e.children[1]);
                let sel = join_selectivity(&card, pred, self.stats, &self.memo.ctx);
                (l * r * sel).max(1.0)
            }
            Op::Aggregate { keys, .. } => {
                let input = self.rows(e.children[0]);
                card.group_rows(keys, input)
            }
            Op::Project { .. } | Op::Sort { .. } => self.rows(e.children[0]),
            Op::Batch => e.children.iter().map(|c| self.rows(*c)).sum(),
        };
        self.cache.insert(g, r);
        r
    }

    /// Byte width of a group's output row.
    pub fn width(&mut self, g: GroupId) -> f64 {
        let cols = self.memo.group(g).props.output_cols.clone();
        self.card().width_of(&cols)
    }
}

/// Selectivity of a join predicate: equivalence-linked equality atoms use
/// 1/max(ndv); the rest go through the generic estimator.
fn join_selectivity(
    card: &Cardinality<'_>,
    pred: &cse_algebra::Scalar,
    stats: &StatsCatalog,
    ctx: &cse_algebra::PlanContext,
) -> f64 {
    let mut sel = 1.0;
    let est = cse_cost::Selectivity::new(ctx, stats);
    for c in pred.conjuncts() {
        if let Some((a, b)) = c.as_col_eq_col() {
            let nd = stats.col_ndv(ctx, a).max(stats.col_ndv(ctx, b)).max(1.0);
            sel /= nd;
        } else {
            sel *= est.of(&c);
        }
    }
    let _ = card;
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::sync::Arc;

    fn setup() -> (Memo, StatsCatalog) {
        let mut fact = Table::new(
            "fact",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]),
        );
        for i in 0..1000i64 {
            fact.push(row(vec![Value::Int(i % 100), Value::Float(i as f64)]))
                .unwrap();
        }
        let mut dim = Table::new("dim", Schema::from_pairs(&[("k", DataType::Int)]));
        for i in 0..100i64 {
            dim.push(row(vec![Value::Int(i)])).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register_table(fact).unwrap();
        cat.register_table(dim).unwrap();
        let stats = StatsCatalog::from_catalog(&cat);

        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let fs = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let ds = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let f = ctx.add_base_rel("fact", "fact", fs, b);
        let d = ctx.add_base_rel("dim", "dim", ds, b);
        let plan = LogicalPlan::get(f).join(
            LogicalPlan::get(d),
            Scalar::eq(Scalar::col(f, 0), Scalar::col(d, 0)),
        );
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&plan);
        (memo, stats)
    }

    #[test]
    fn join_rows_estimated() {
        let (memo, stats) = setup();
        let mut rows = GroupRows::new(&memo, &stats);
        let r = rows.rows(memo.root());
        assert!((900.0..1100.0).contains(&r), "{r}");
    }

    #[test]
    fn width_positive() {
        let (memo, stats) = setup();
        let mut rows = GroupRows::new(&memo, &stats);
        assert!(rows.width(memo.root()) >= 16.0);
    }

    #[test]
    fn cache_is_stable() {
        let (memo, stats) = setup();
        let mut rows = GroupRows::new(&memo, &stats);
        let a = rows.rows(memo.root());
        let b = rows.rows(memo.root());
        assert_eq!(a, b);
    }
}
