//! # cse-optimizer
//!
//! Cost-based physical optimization over the memo: implementation rules
//! (scans, hash/NL joins, hash aggregation, index range scans), enabled-CSE
//! sets as required properties, least-common-ancestor spool costing, and
//! full-plan assembly with transitive (stacked) spool collection.

pub mod dot;
pub mod optimizer;
pub mod physical;
pub mod rows;
pub mod substitute;

pub use dot::to_dot;
pub use optimizer::{bit, CseMask, IndexInfo, Optimizer, OptimizerConfig, PlanChoice};
pub use physical::{CseId, FullPlan, PhysicalPlan, ReAgg, SpoolDef};
pub use rows::GroupRows;
pub use substitute::{CseCandidate, Substitute, SubstituteReAgg};
