//! Graphviz (DOT) export of physical plans: one cluster per statement,
//! one cluster per spool definition, and dashed edges from every
//! `CseRead` to the spool it consumes — which makes the sharing structure
//! of a covering-subexpression plan visible at a glance.

use crate::physical::{FullPlan, PhysicalPlan};
use std::fmt::Write as _;

/// Render a full plan as a DOT digraph.
pub fn to_dot(plan: &FullPlan) -> String {
    let mut out = String::from("digraph plan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
    let mut next_id = 0usize;
    let mut spool_anchor: std::collections::BTreeMap<crate::physical::CseId, usize> =
        std::collections::BTreeMap::new();
    let mut pending_edges: Vec<(usize, crate::physical::CseId)> = Vec::new();

    // Spool definition clusters first so reads can point at them.
    for (id, def) in &plan.spools {
        let _ = writeln!(out, "  subgraph cluster_spool_{} {{", id.0);
        let _ = writeln!(out, "    label=\"spool {id} (≈{:.0} rows)\";", def.est_rows);
        let _ = writeln!(out, "    style=filled; color=lightgrey;");
        let anchor = emit(&def.plan, &mut out, &mut next_id, &mut pending_edges);
        spool_anchor.insert(*id, anchor);
        let _ = writeln!(out, "  }}");
    }

    match &plan.root {
        PhysicalPlan::Batch { children } => {
            for (i, c) in children.iter().enumerate() {
                let _ = writeln!(out, "  subgraph cluster_stmt_{i} {{");
                let _ = writeln!(out, "    label=\"statement {}\";", i + 1);
                emit(c, &mut out, &mut next_id, &mut pending_edges);
                let _ = writeln!(out, "  }}");
            }
        }
        other => {
            emit(other, &mut out, &mut next_id, &mut pending_edges);
        }
    }
    for (node, cse) in pending_edges {
        if let Some(anchor) = spool_anchor.get(&cse) {
            let _ = writeln!(
                out,
                "  n{anchor} -> n{node} [style=dashed, label=\"spool {cse}\"];"
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Emit one subtree; returns this node's id. Edges point child -> parent
/// (dataflow direction, rankdir=BT draws leaves at the bottom).
fn emit(
    plan: &PhysicalPlan,
    out: &mut String,
    next_id: &mut usize,
    pending: &mut Vec<(usize, crate::physical::CseId)>,
) -> usize {
    let id = *next_id;
    *next_id += 1;
    let label = match plan {
        PhysicalPlan::TableScan { rel, filter, .. } => match filter {
            Some(f) => format!("TableScan r{}\\nσ {}", rel.0, escape(&f.to_string())),
            None => format!("TableScan r{}", rel.0),
        },
        PhysicalPlan::IndexRangeScan { rel, col, .. } => {
            format!("IndexRangeScan r{}\\non {col}", rel.0)
        }
        PhysicalPlan::Filter { pred, .. } => format!("Filter\\n{}", escape(&pred.to_string())),
        PhysicalPlan::HashJoin { keys, .. } => {
            let ks: Vec<String> = keys.iter().map(|(a, b)| format!("{a}={b}")).collect();
            format!("HashJoin\\n{}", escape(&ks.join(", ")))
        }
        PhysicalPlan::NlJoin { pred, .. } => format!("NlJoin\\n{}", escape(&pred.to_string())),
        PhysicalPlan::HashAggregate { keys, aggs, .. } => {
            format!("HashAggregate\\nkeys={} aggs={}", keys.len(), aggs.len())
        }
        PhysicalPlan::Project { exprs, .. } => {
            let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
            format!("Project\\n{}", escape(&names.join(", ")))
        }
        PhysicalPlan::Sort { .. } => "Sort".to_string(),
        PhysicalPlan::CseRead {
            cse, filter, reagg, ..
        } => {
            pending.push((id, *cse));
            let mut l = format!("CseRead {cse}");
            if let Some(f) = filter {
                let _ = write!(l, "\\nσ {}", escape(&f.to_string()));
            }
            if reagg.is_some() {
                l.push_str("\\n+ re-aggregate");
            }
            l
        }
        PhysicalPlan::Batch { .. } => "Batch".to_string(),
    };
    let _ = writeln!(out, "    n{id} [label=\"{label}\"];");
    let link = |child: usize, out: &mut String| {
        let _ = writeln!(out, "    n{child} -> n{id};");
    };
    match plan {
        PhysicalPlan::TableScan { .. }
        | PhysicalPlan::IndexRangeScan { .. }
        | PhysicalPlan::CseRead { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. } => {
            let c = emit(input, out, next_id, pending);
            link(c, out);
        }
        PhysicalPlan::HashJoin { left, right, .. } | PhysicalPlan::NlJoin { left, right, .. } => {
            let l = emit(left, out, next_id, pending);
            let r = emit(right, out, next_id, pending);
            link(l, out);
            link(r, out);
        }
        PhysicalPlan::Batch { children } => {
            for c in children {
                let cid = emit(c, out, next_id, pending);
                link(cid, out);
            }
        }
    }
    id
}

fn escape(s: &str) -> String {
    let mut e = s.replace('"', "\\\"");
    if e.len() > 60 {
        e.truncate(57);
        e.push_str("...");
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{CseId, SpoolDef};
    use cse_algebra::{ColRef, RelId, Scalar};
    use std::collections::BTreeMap;

    #[test]
    fn dot_contains_spool_cluster_and_dashed_edges() {
        let scan = PhysicalPlan::TableScan {
            rel: RelId(0),
            filter: None,
            layout: vec![ColRef::new(RelId(0), 0)],
        };
        let read = PhysicalPlan::CseRead {
            cse: CseId(0),
            filter: Some(Scalar::true_()),
            reagg: None,
            output_map: vec![],
            layout: vec![],
        };
        let plan = FullPlan {
            root: PhysicalPlan::Batch {
                children: vec![read.clone(), read],
            },
            spools: BTreeMap::from([(
                CseId(0),
                SpoolDef {
                    plan: scan,
                    layout: vec![ColRef::new(RelId(0), 0)],
                    est_rows: 10.0,
                },
            )]),
            cost: 1.0,
            baseline: None,
        };
        let dot = to_dot(&plan);
        assert!(dot.contains("cluster_spool_0"));
        assert!(dot.contains("style=dashed"));
        assert_eq!(dot.matches("CseRead E0").count(), 2);
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped_and_truncated() {
        let long = "x".repeat(100);
        assert!(escape(&long).len() <= 60);
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
