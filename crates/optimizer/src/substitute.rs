//! Registration types handed to the optimizer by the CSE manager: candidate
//! covering subexpressions and per-consumer view-matching substitutes.

use crate::physical::CseId;
use cse_algebra::{AggExpr, ColRef, LogicalPlan, RelId, Scalar};
use cse_memo::GroupId;

/// A candidate covering subexpression registered for the CSE optimization
/// phase. The definition has been inserted into the memo (`def_root`) so
/// its evaluation cost C_E falls out of ordinary group optimization.
#[derive(Debug, Clone)]
pub struct CseCandidate {
    pub id: CseId,
    /// Root group of the definition in the memo.
    pub def_root: GroupId,
    /// The definition as a logical plan (kept for diagnostics and for the
    /// executor's spool construction).
    pub def_plan: LogicalPlan,
    /// Columns materialized into the work table, in order.
    pub output: Vec<ColRef>,
    /// Estimated work-table rows and row width (bytes).
    pub est_rows: f64,
    pub est_width: f64,
    /// Consumer groups this candidate can serve.
    pub consumers: Vec<GroupId>,
    /// Least common ancestor group of all consumers; `None` when consumers
    /// span disconnected trees (e.g. stacked CSEs consumed from several
    /// definitions), in which case the initial cost is charged at final
    /// assembly.
    pub lca: Option<GroupId>,
}

/// The compensation recipe rewriting one consumer on top of a CSE's work
/// table (produced by view matching, paper §5.1).
#[derive(Debug, Clone)]
pub struct Substitute {
    pub cse: CseId,
    /// The consumer group this substitute replaces.
    pub consumer: GroupId,
    /// Compensation predicate over the spool layout (residual conjuncts of
    /// the consumer not guaranteed by the CSE).
    pub filter: Option<Scalar>,
    /// Re-aggregation (consumer group-by is coarser than the CSE's).
    pub reagg: Option<SubstituteReAgg>,
    /// Mapping from each consumer output column to its defining expression
    /// over the spool (post-reagg) columns.
    pub output_map: Vec<(ColRef, Scalar)>,
}

/// Re-aggregation part of a substitute.
#[derive(Debug, Clone)]
pub struct SubstituteReAgg {
    pub keys: Vec<ColRef>,
    pub aggs: Vec<AggExpr>,
    /// The consumer's aggregate output rel (so parents see its columns).
    pub out: RelId,
}
