//! Physical plans: the optimizer's output, interpreted by `cse-exec`.
//!
//! Every operator carries its *output layout*: the ordered list of global
//! column ids its result rows contain. The executor binds scalar
//! expressions against these layouts, so plans are self-describing.

use cse_algebra::{AggExpr, ColRef, RelId, Scalar, SortOrder};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a covering subexpression (assigned by the CSE manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CseId(pub u32);

impl fmt::Display for CseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Re-aggregation applied on top of a spool read when the consumer's
/// group-by is coarser than the CSE's.
#[derive(Debug, Clone, PartialEq)]
pub struct ReAgg {
    /// Grouping keys, expressed over the spool layout.
    pub keys: Vec<ColRef>,
    /// Roll-up aggregations over the spool's partial-aggregate columns.
    pub aggs: Vec<AggExpr>,
    /// Synthetic rel of this re-aggregation's outputs (the *consumer's*
    /// aggregate output rel, so parents see identical columns).
    pub out: RelId,
}

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full scan with an optional pushed-down filter.
    TableScan {
        rel: RelId,
        filter: Option<Scalar>,
        layout: Vec<ColRef>,
    },
    /// B-tree index range scan: `lo <= col <= hi` with optional residual.
    IndexRangeScan {
        rel: RelId,
        col: ColRef,
        lo: Option<(cse_storage::Value, bool)>,
        hi: Option<(cse_storage::Value, bool)>,
        residual: Option<Scalar>,
        layout: Vec<ColRef>,
    },
    Filter {
        input: Box<PhysicalPlan>,
        pred: Scalar,
    },
    /// Hash join; left side builds, right side probes.
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        /// Pairs of (left column, right column) equijoin keys.
        keys: Vec<(ColRef, ColRef)>,
        /// Non-equijoin residual predicate.
        residual: Option<Scalar>,
        layout: Vec<ColRef>,
    },
    /// Nested-loops join for non-equijoin predicates.
    NlJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        pred: Scalar,
        layout: Vec<ColRef>,
    },
    HashAggregate {
        input: Box<PhysicalPlan>,
        keys: Vec<ColRef>,
        aggs: Vec<AggExpr>,
        out: RelId,
        layout: Vec<ColRef>,
    },
    /// Final named projection.
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<(String, Scalar)>,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(Scalar, SortOrder)>,
    },
    /// Read the work table of covering subexpression `cse`, apply the
    /// compensation filter, optionally re-aggregate, then map the spool
    /// columns onto the consumer's expected output columns.
    CseRead {
        cse: CseId,
        filter: Option<Scalar>,
        reagg: Option<ReAgg>,
        /// (output column, defining expression over spool/reagg columns).
        output_map: Vec<(ColRef, Scalar)>,
        layout: Vec<ColRef>,
    },
    /// Batch root: execute children in order, deliver each result.
    Batch { children: Vec<PhysicalPlan> },
}

impl PhysicalPlan {
    /// The output layout (global column ids, in row order). Project/Sort
    /// at the root and Batch deliver named/positional results and expose
    /// no global layout.
    pub fn layout(&self) -> &[ColRef] {
        match self {
            PhysicalPlan::TableScan { layout, .. }
            | PhysicalPlan::IndexRangeScan { layout, .. }
            | PhysicalPlan::HashJoin { layout, .. }
            | PhysicalPlan::NlJoin { layout, .. }
            | PhysicalPlan::HashAggregate { layout, .. }
            | PhysicalPlan::CseRead { layout, .. } => layout,
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Sort { input, .. } => input.layout(),
            PhysicalPlan::Project { .. } | PhysicalPlan::Batch { .. } => &[],
        }
    }

    /// Count the `CseRead` occurrences per CSE in this tree.
    pub fn cse_reads(&self) -> BTreeMap<CseId, u32> {
        let mut out = BTreeMap::new();
        self.visit(&mut |p| {
            if let PhysicalPlan::CseRead { cse, .. } = p {
                *out.entry(*cse).or_insert(0) += 1;
            }
        });
        out
    }

    pub fn visit(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        f(self);
        match self {
            PhysicalPlan::TableScan { .. }
            | PhysicalPlan::IndexRangeScan { .. }
            | PhysicalPlan::CseRead { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. } => input.visit(f),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NlJoin { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            PhysicalPlan::Batch { children } => {
                for c in children {
                    c.visit(f);
                }
            }
        }
    }

    /// Operator name for plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::TableScan { .. } => "TableScan",
            PhysicalPlan::IndexRangeScan { .. } => "IndexRangeScan",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::HashJoin { .. } => "HashJoin",
            PhysicalPlan::NlJoin { .. } => "NlJoin",
            PhysicalPlan::HashAggregate { .. } => "HashAggregate",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::CseRead { .. } => "CseRead",
            PhysicalPlan::Batch { .. } => "Batch",
        }
    }

    /// Indented tree rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(0, &mut s);
        s
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::TableScan { rel, filter, .. } => {
                let f = filter
                    .as_ref()
                    .map(|p| format!(" filter={p}"))
                    .unwrap_or_default();
                let _ = writeln!(out, "{pad}TableScan r{}{f}", rel.0);
            }
            PhysicalPlan::IndexRangeScan { rel, col, .. } => {
                let _ = writeln!(out, "{pad}IndexRangeScan r{} on {col}", rel.0);
            }
            PhysicalPlan::Filter { input, pred } => {
                let _ = writeln!(out, "{pad}Filter {pred}");
                input.render_into(depth + 1, out);
            }
            PhysicalPlan::HashJoin {
                left, right, keys, ..
            } => {
                let ks: Vec<String> = keys.iter().map(|(a, b)| format!("{a}={b}")).collect();
                let _ = writeln!(out, "{pad}HashJoin [{}]", ks.join(", "));
                left.render_into(depth + 1, out);
                right.render_into(depth + 1, out);
            }
            PhysicalPlan::NlJoin {
                left, right, pred, ..
            } => {
                let _ = writeln!(out, "{pad}NlJoin {pred}");
                left.render_into(depth + 1, out);
                right.render_into(depth + 1, out);
            }
            PhysicalPlan::HashAggregate {
                input, keys, aggs, ..
            } => {
                let ks: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                let ags: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate keys=[{}] aggs=[{}]",
                    ks.join(","),
                    ags.join(",")
                );
                input.render_into(depth + 1, out);
            }
            PhysicalPlan::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                let _ = writeln!(out, "{pad}Project [{}]", names.join(", "));
                input.render_into(depth + 1, out);
            }
            PhysicalPlan::Sort { input, .. } => {
                let _ = writeln!(out, "{pad}Sort");
                input.render_into(depth + 1, out);
            }
            PhysicalPlan::CseRead {
                cse, filter, reagg, ..
            } => {
                let f = filter
                    .as_ref()
                    .map(|p| format!(" filter={p}"))
                    .unwrap_or_default();
                let g = if reagg.is_some() { " reagg" } else { "" };
                let _ = writeln!(out, "{pad}CseRead {cse}{f}{g}");
            }
            PhysicalPlan::Batch { children } => {
                let _ = writeln!(out, "{pad}Batch");
                for c in children {
                    c.render_into(depth + 1, out);
                }
            }
        }
    }
}

/// A complete executable artifact: the root plan plus the definition plan
/// and work-table layout of every covering subexpression it reads.
#[derive(Debug, Clone)]
pub struct FullPlan {
    pub root: PhysicalPlan,
    pub spools: BTreeMap<CseId, SpoolDef>,
    /// Estimated total cost (paper's "estimated cost" row).
    pub cost: f64,
    /// The retained baseline (no-CSE) root, present whenever `root` reads
    /// spools. The executor retries a statement against the matching
    /// baseline child when a spool fails to materialize or a resource
    /// budget is breached — the consumers' original, non-covering
    /// expressions are exactly this plan's statement subtrees.
    pub baseline: Option<Box<PhysicalPlan>>,
}

impl FullPlan {
    /// The baseline subtree to retry statement `idx` with, if retained.
    /// Statement indexing mirrors `root`: child `idx` of a `Batch` root,
    /// or the whole plan for a single-statement root (`idx == 0`).
    pub fn baseline_statement(&self, idx: usize) -> Option<&PhysicalPlan> {
        let base = self.baseline.as_deref()?;
        match base {
            PhysicalPlan::Batch { children } => children.get(idx),
            single if idx == 0 => Some(single),
            _ => None,
        }
    }
}

/// A spool definition: how to compute a CSE's work table.
#[derive(Debug, Clone)]
pub struct SpoolDef {
    pub plan: PhysicalPlan,
    /// Work-table column layout (global ids of the CSE's output columns).
    pub layout: Vec<ColRef>,
    pub est_rows: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::RelId;

    fn scan(rel: u32) -> PhysicalPlan {
        PhysicalPlan::TableScan {
            rel: RelId(rel),
            filter: None,
            layout: vec![ColRef::new(RelId(rel), 0)],
        }
    }

    #[test]
    fn layout_passes_through_filter() {
        let p = PhysicalPlan::Filter {
            input: Box::new(scan(0)),
            pred: Scalar::true_(),
        };
        assert_eq!(p.layout(), &[ColRef::new(RelId(0), 0)]);
    }

    #[test]
    fn cse_reads_counted() {
        let read = PhysicalPlan::CseRead {
            cse: CseId(3),
            filter: None,
            reagg: None,
            output_map: vec![],
            layout: vec![],
        };
        let p = PhysicalPlan::Batch {
            children: vec![read.clone(), read],
        };
        assert_eq!(p.cse_reads().get(&CseId(3)), Some(&2));
    }

    #[test]
    fn render_includes_operators() {
        let p = PhysicalPlan::HashJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            keys: vec![(ColRef::new(RelId(0), 0), ColRef::new(RelId(1), 0))],
            residual: None,
            layout: vec![],
        };
        let r = p.render();
        assert!(r.contains("HashJoin"));
        assert!(r.contains("TableScan r0"));
    }
}
