//! Cost-based physical optimization over the memo, with covering-
//! subexpression support (paper §5).
//!
//! The enabled set of candidate CSEs is treated as part of the required
//! properties (§5.3): `optimize_group` is memoized on
//! `(group, enabled-mask ∩ relevant-mask)`, which also implements the
//! optimization-history reuse of §5.4 — groups without potential consumers
//! below them are optimized exactly once regardless of the enabled set.
//!
//! Spool costing follows §5.2: consumers are charged only the usage cost
//! C_R; the initial cost C_E + C_W is added at the least common ancestor
//! group of the candidate's consumers, where plans with a single consumer
//! are discarded.

use crate::physical::{CseId, FullPlan, PhysicalPlan, ReAgg, SpoolDef};
use crate::rows::GroupRows;
use crate::substitute::{CseCandidate, Substitute};
use cse_algebra::{ColRef, Scalar};
use cse_cost::{CostModel, Selectivity, StatsCatalog};
use cse_memo::{GroupId, Memo, Op};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// Optimizer switches.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Consider B-tree index range scans for filtered base tables.
    pub enable_index_scan: bool,
    /// Ablation: charge every CSE's initial cost at final assembly instead
    /// of at the least common ancestor (§5.2 discusses why the LCA is the
    /// better placement).
    pub charge_at_root: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_index_scan: true,
            charge_at_root: false,
        }
    }
}

/// Which (table, column ordinal) pairs have a B-tree index.
#[derive(Debug, Clone, Default)]
pub struct IndexInfo {
    pub btree: HashSet<(String, u16)>,
}

impl IndexInfo {
    pub fn from_catalog(catalog: &cse_storage::Catalog) -> Self {
        let mut btree = HashSet::new();
        for name in catalog.table_names() {
            if let Ok(entry) = catalog.get(name) {
                for idx in &entry.btree_indexes {
                    btree.insert((name.to_ascii_lowercase(), idx.column as u16));
                }
            }
        }
        IndexInfo { btree }
    }
}

/// An optimized (sub)plan with its cost and CSE bookkeeping.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    pub plan: PhysicalPlan,
    pub cost: f64,
    pub rows: f64,
    /// Uncharged spool reads below this plan, per CSE.
    pub usage: BTreeMap<CseId, u32>,
    /// CSEs whose initial cost has already been added (at their LCA).
    pub charged: BTreeSet<CseId>,
}

/// Bitmask over candidate CSE ids (at most 64 candidates per phase, which
/// comfortably covers the paper's worst case of 51).
pub type CseMask = u64;

pub fn bit(id: CseId) -> CseMask {
    1u64 << id.0
}

pub struct Optimizer<'a> {
    pub memo: &'a Memo,
    pub stats: &'a StatsCatalog,
    pub model: CostModel,
    pub cfg: OptimizerConfig,
    pub indexes: IndexInfo,
    rows: GroupRows<'a>,
    candidates: BTreeMap<CseId, CseCandidate>,
    substitutes: HashMap<GroupId, Vec<Substitute>>,
    /// Per group: mask of CSEs with a consumer at or below the group.
    relevant: HashMap<GroupId, CseMask>,
    cache: HashMap<(GroupId, CseMask), Rc<PlanChoice>>,
    def_cache: HashMap<(CseId, CseMask), Rc<PlanChoice>>,
    /// Number of `optimize_group` invocations that missed the cache —
    /// a proxy for optimization work, reported by the benchmarks.
    pub group_optimizations: u64,
}

impl<'a> Optimizer<'a> {
    pub fn new(
        memo: &'a Memo,
        stats: &'a StatsCatalog,
        model: CostModel,
        cfg: OptimizerConfig,
        indexes: IndexInfo,
    ) -> Self {
        Optimizer {
            memo,
            stats,
            rows: GroupRows::new(memo, stats),
            model,
            cfg,
            indexes,
            candidates: BTreeMap::new(),
            substitutes: HashMap::new(),
            relevant: HashMap::new(),
            cache: HashMap::new(),
            def_cache: HashMap::new(),
            group_optimizations: 0,
        }
    }

    /// Estimated rows of a group (cached logical property).
    pub fn group_rows(&mut self, g: GroupId) -> f64 {
        self.rows.rows(g)
    }

    /// Estimated row width of a group's output.
    pub fn group_width(&mut self, g: GroupId) -> f64 {
        self.rows.width(g)
    }

    /// Best cost of a group under the empty CSE set (the paper's
    /// "cost bound" source for the generation heuristics). Optimizes on
    /// first use.
    pub fn baseline_cost(&mut self, g: GroupId) -> f64 {
        self.optimize_group(g, 0).cost
    }

    /// Register the candidates and substitutes of the CSE phase. Resets
    /// CSE-dependent caches (baseline entries with mask 0 stay valid and
    /// are kept — that is the §5.4 history reuse).
    pub fn register_candidates(
        &mut self,
        candidates: Vec<CseCandidate>,
        substitutes: Vec<Substitute>,
    ) {
        assert!(
            candidates.iter().all(|c| c.id.0 < 64),
            "at most 64 candidate CSEs are supported per phase"
        );
        self.candidates = candidates.into_iter().map(|c| (c.id, c)).collect();
        self.substitutes.clear();
        for s in substitutes {
            self.substitutes.entry(s.consumer).or_default().push(s);
        }
        self.compute_relevant();
    }

    pub fn candidate(&self, id: CseId) -> Option<&CseCandidate> {
        self.candidates.get(&id)
    }

    /// Propagate "has a consumer below" masks upward through the memo DAG.
    fn compute_relevant(&mut self) {
        let mut relevant: HashMap<GroupId, CseMask> = HashMap::new();
        // Seed with consumers.
        for (id, cand) in &self.candidates {
            for &c in &cand.consumers {
                *relevant.entry(c).or_insert(0) |= bit(*id);
            }
        }
        // Fixpoint upward propagation via parent expressions.
        let mut work: Vec<GroupId> = relevant.keys().copied().collect();
        while let Some(g) = work.pop() {
            let mask = relevant.get(&g).copied().unwrap_or(0);
            let parents: Vec<GroupId> = self
                .memo
                .group(g)
                .parents
                .iter()
                .map(|&eid| self.memo.group_of(eid))
                .collect();
            for p in parents {
                let cur = relevant.entry(p).or_insert(0);
                if *cur | mask != *cur {
                    *cur |= mask;
                    work.push(p);
                }
            }
        }
        self.relevant = relevant;
    }

    fn relevant_mask(&self, g: GroupId) -> CseMask {
        self.relevant.get(&g).copied().unwrap_or(0)
    }

    /// Optimize a group under an enabled-CSE mask.
    pub fn optimize_group(&mut self, g: GroupId, mask: CseMask) -> Rc<PlanChoice> {
        let eff_mask = mask & self.relevant_mask(g);
        if let Some(c) = self.cache.get(&(g, eff_mask)) {
            return c.clone();
        }
        self.group_optimizations += 1;
        let mut alts: Vec<PlanChoice> = Vec::new();
        let exprs = self.memo.group(g).exprs.clone();
        for eid in exprs {
            let e = self.memo.gexpr(eid).clone();
            alts.extend(self.implement_expr(g, &e, mask));
        }
        // View-matching substitutes for enabled candidates (§5.1: the rule
        // is enabled only for registered consumer expressions).
        let subs: Vec<Substitute> = self
            .substitutes
            .get(&g)
            .map(|v| {
                v.iter()
                    .filter(|s| eff_mask & bit(s.cse) != 0)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        for s in subs {
            if let Some(alt) = self.implement_cse_read(g, &s) {
                alts.push(alt);
            }
        }
        // LCA handling (§5.2): candidates whose least common ancestor is
        // this group get their initial cost added here, and single-consumer
        // plans are discarded.
        let lca_here: Vec<CseId> = self
            .candidates
            .values()
            .filter(|c| eff_mask & bit(c.id) != 0 && c.lca == Some(g))
            .map(|c| c.id)
            .collect();
        if !lca_here.is_empty() && !self.cfg.charge_at_root {
            let mut kept: Vec<PlanChoice> = Vec::new();
            for mut alt in alts {
                let mut feasible = true;
                for &e in &lca_here {
                    match alt.usage.get(&e).copied().unwrap_or(0) {
                        0 => {}
                        1 => {
                            feasible = false;
                            break;
                        }
                        _ => {
                            let (init, def) = self.init_cost(e, mask);
                            alt.cost += init;
                            alt.usage.remove(&e);
                            alt.charged.insert(e);
                            // Stacked reads inside the definition surface
                            // at this level.
                            for (k, v) in def.usage.iter() {
                                *alt.usage.entry(*k).or_insert(0) += v;
                            }
                            alt.charged.extend(def.charged.iter().copied());
                        }
                    }
                }
                if feasible {
                    kept.push(alt);
                }
            }
            alts = kept;
            // Always compare against (and fall back to) the plan that does
            // not use these candidates at all.
            let without_mask = lca_here.iter().fold(mask, |m, e| m & !bit(*e));
            let without = self.optimize_group(g, without_mask);
            alts.push((*without).clone());
        }
        let best = alts
            .into_iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .unwrap_or_else(|| panic!("group {g} has no implementable expression"));
        let rc = Rc::new(best);
        self.cache.insert((g, eff_mask), rc.clone());
        rc
    }

    /// C_E + C_W of a candidate under `mask` (E itself excluded), plus the
    /// definition's plan choice for stacked-usage propagation.
    fn init_cost(&mut self, e: CseId, mask: CseMask) -> (f64, Rc<PlanChoice>) {
        let cand = self.candidates.get(&e).expect("unknown candidate").clone();
        let sub_mask = (mask & !bit(e)) & self.relevant_mask(cand.def_root);
        let def = if let Some(d) = self.def_cache.get(&(e, sub_mask)) {
            d.clone()
        } else {
            let d = self.optimize_group(cand.def_root, sub_mask);
            self.def_cache.insert((e, sub_mask), d.clone());
            d
        };
        let cw = self.model.spool_write(cand.est_rows, cand.est_width);
        (def.cost + cw, def)
    }

    fn selectivity(&self, pred: &Scalar) -> f64 {
        Selectivity::new(&self.memo.ctx, self.stats).of(pred)
    }

    /// Implement one group expression physically. Returns zero or more
    /// alternatives.
    fn implement_expr(
        &mut self,
        g: GroupId,
        e: &cse_memo::GroupExpr,
        mask: CseMask,
    ) -> Vec<PlanChoice> {
        let out_rows = self.group_rows(g);
        let mut alts = Vec::new();
        match &e.op {
            Op::Get { rel } => {
                let rel = *rel;
                let layout: Vec<ColRef> = self.memo.group(g).props.output_cols.clone();
                let width = self.rows.width(g);
                alts.push(PlanChoice {
                    plan: PhysicalPlan::TableScan {
                        rel,
                        filter: None,
                        layout,
                    },
                    cost: self.model.scan(out_rows, width),
                    rows: out_rows,
                    usage: BTreeMap::new(),
                    charged: BTreeSet::new(),
                });
            }
            Op::Filter { pred } => {
                let child = self.optimize_group(e.children[0], mask);
                alts.push(PlanChoice {
                    plan: PhysicalPlan::Filter {
                        input: Box::new(child.plan.clone()),
                        pred: pred.clone(),
                    },
                    cost: child.cost + self.model.filter(child.rows),
                    rows: out_rows,
                    usage: child.usage.clone(),
                    charged: child.charged.clone(),
                });
                // Index range scan: Filter directly over a Get whose
                // filtered column carries a B-tree index.
                if self.cfg.enable_index_scan {
                    if let Some(alt) = self.try_index_scan(g, e.children[0], pred, out_rows) {
                        alts.push(alt);
                    }
                }
            }
            Op::Join { pred } => {
                let left = self.optimize_group(e.children[0], mask);
                let right = self.optimize_group(e.children[1], mask);
                let l_rels = self.memo.group(e.children[0]).props.rels;
                let r_rels = self.memo.group(e.children[1]).props.rels;
                let mut keys = Vec::new();
                let mut residual = Vec::new();
                for c in pred.conjuncts() {
                    match c.as_col_eq_col() {
                        Some((a, b)) if l_rels.contains(a.rel) && r_rels.contains(b.rel) => {
                            keys.push((a, b))
                        }
                        Some((a, b)) if r_rels.contains(a.rel) && l_rels.contains(b.rel) => {
                            keys.push((b, a))
                        }
                        _ => residual.push(c),
                    }
                }
                let mut layout: Vec<ColRef> = left.plan.layout().to_vec();
                layout.extend_from_slice(right.plan.layout());
                let usage = merge_usage(&left.usage, &right.usage);
                let charged: BTreeSet<CseId> =
                    left.charged.union(&right.charged).copied().collect();
                if keys.is_empty() {
                    let cost = left.cost
                        + right.cost
                        + self.model.nl_join(left.rows, right.rows, out_rows);
                    alts.push(PlanChoice {
                        plan: PhysicalPlan::NlJoin {
                            left: Box::new(left.plan.clone()),
                            right: Box::new(right.plan.clone()),
                            pred: pred.clone(),
                            layout,
                        },
                        cost,
                        rows: out_rows,
                        usage,
                        charged,
                    });
                } else {
                    let cost = left.cost
                        + right.cost
                        + self.model.hash_join(left.rows, right.rows, out_rows)
                        + if residual.is_empty() {
                            0.0
                        } else {
                            self.model.filter(out_rows)
                        };
                    alts.push(PlanChoice {
                        plan: PhysicalPlan::HashJoin {
                            left: Box::new(left.plan.clone()),
                            right: Box::new(right.plan.clone()),
                            keys,
                            residual: if residual.is_empty() {
                                None
                            } else {
                                Some(Scalar::and(residual))
                            },
                            layout,
                        },
                        cost,
                        rows: out_rows,
                        usage,
                        charged,
                    });
                }
            }
            Op::Aggregate { keys, aggs, out } => {
                let child = self.optimize_group(e.children[0], mask);
                let mut layout = keys.clone();
                layout.extend((0..aggs.len()).map(|i| ColRef::new(*out, i as u16)));
                alts.push(PlanChoice {
                    plan: PhysicalPlan::HashAggregate {
                        input: Box::new(child.plan.clone()),
                        keys: keys.clone(),
                        aggs: aggs.clone(),
                        out: *out,
                        layout,
                    },
                    cost: child.cost + self.model.hash_agg(child.rows, out_rows),
                    rows: out_rows,
                    usage: child.usage.clone(),
                    charged: child.charged.clone(),
                });
            }
            Op::Project { exprs } => {
                let child = self.optimize_group(e.children[0], mask);
                alts.push(PlanChoice {
                    plan: PhysicalPlan::Project {
                        input: Box::new(child.plan.clone()),
                        exprs: exprs.clone(),
                    },
                    cost: child.cost + self.model.project(child.rows),
                    rows: out_rows,
                    usage: child.usage.clone(),
                    charged: child.charged.clone(),
                });
            }
            Op::Sort { keys } => {
                let child = self.optimize_group(e.children[0], mask);
                alts.push(PlanChoice {
                    plan: PhysicalPlan::Sort {
                        input: Box::new(child.plan.clone()),
                        keys: keys.clone(),
                    },
                    cost: child.cost + self.model.sort(child.rows),
                    rows: out_rows,
                    usage: child.usage.clone(),
                    charged: child.charged.clone(),
                });
            }
            Op::Batch => {
                let children: Vec<Rc<PlanChoice>> = e
                    .children
                    .iter()
                    .map(|c| self.optimize_group(*c, mask))
                    .collect();
                let cost = children.iter().map(|c| c.cost).sum();
                let mut usage = BTreeMap::new();
                let mut charged = BTreeSet::new();
                for c in &children {
                    usage = merge_usage(&usage, &c.usage);
                    charged.extend(c.charged.iter().copied());
                }
                alts.push(PlanChoice {
                    plan: PhysicalPlan::Batch {
                        children: children.iter().map(|c| c.plan.clone()).collect(),
                    },
                    cost,
                    rows: out_rows,
                    usage,
                    charged,
                });
            }
        }
        alts
    }

    /// `Filter(Get)` with a range/equality atom on an indexed column.
    fn try_index_scan(
        &mut self,
        g: GroupId,
        child: GroupId,
        pred: &Scalar,
        out_rows: f64,
    ) -> Option<PlanChoice> {
        let child_expr = self.memo.gexpr(self.memo.group(child).exprs[0]);
        let rel = match child_expr.op {
            Op::Get { rel } => rel,
            _ => return None,
        };
        let info = self.memo.ctx.rel(rel);
        let ranges = cse_algebra::column_ranges(pred);
        let (col, interval) = ranges.iter().find(|(c, iv)| {
            c.rel == rel
                && (iv.lo.is_some() || iv.hi.is_some())
                && self
                    .indexes
                    .btree
                    .contains(&(info.name.to_ascii_lowercase(), c.col))
        })?;
        // Residual: everything except the *range/equality* conjuncts on the
        // indexed column — those are subsumed by the interval. `<>` bounds
        // nothing and must stay in the residual.
        let residual: Vec<Scalar> = pred
            .conjuncts()
            .into_iter()
            .filter(|c| {
                c.as_col_vs_lit()
                    .map(|(cc, op, _)| cc != *col || op == cse_algebra::CmpOp::Ne)
                    .unwrap_or(true)
            })
            .collect();
        let layout: Vec<ColRef> = self.memo.group(child).props.output_cols.clone();
        let matched = out_rows.max(1.0);
        let cost = self.model.index_lookup(1.0, matched)
            + if residual.is_empty() {
                0.0
            } else {
                self.model.filter(matched)
            };
        let _ = g;
        Some(PlanChoice {
            plan: PhysicalPlan::IndexRangeScan {
                rel,
                col: *col,
                lo: interval.lo.clone(),
                hi: interval.hi.clone(),
                residual: if residual.is_empty() {
                    None
                } else {
                    Some(Scalar::and(residual))
                },
                layout,
            },
            cost,
            rows: out_rows,
            usage: BTreeMap::new(),
            charged: BTreeSet::new(),
        })
    }

    /// Build the consumer-side spool read alternative for a substitute.
    fn implement_cse_read(&mut self, g: GroupId, s: &Substitute) -> Option<PlanChoice> {
        let cand = self.candidates.get(&s.cse)?.clone();
        let out_rows = self.group_rows(g);
        let mut cost = self.model.spool_read(cand.est_rows, cand.est_width);
        let mut rows_after = cand.est_rows;
        if let Some(f) = &s.filter {
            cost += self.model.filter(cand.est_rows);
            rows_after *= self.selectivity(f).max(1e-9);
        }
        if s.reagg.is_some() {
            cost += self.model.hash_agg(rows_after, out_rows);
        }
        cost += self.model.project(out_rows);
        let layout: Vec<ColRef> = s.output_map.iter().map(|(c, _)| *c).collect();
        let mut usage = BTreeMap::new();
        usage.insert(s.cse, 1);
        Some(PlanChoice {
            plan: PhysicalPlan::CseRead {
                cse: s.cse,
                filter: s.filter.clone(),
                reagg: s.reagg.as_ref().map(|r| ReAgg {
                    keys: r.keys.clone(),
                    aggs: r.aggs.clone(),
                    out: r.out,
                }),
                output_map: s.output_map.clone(),
                layout,
            },
            cost,
            rows: out_rows,
            usage,
            charged: BTreeSet::new(),
        })
    }

    /// Optimize the whole statement (batch) under an enabled mask and
    /// assemble the executable plan: validates usage counts, charges any
    /// initial costs not already charged at an LCA, and collects spool
    /// definitions (transitively, for stacked CSEs).
    pub fn optimize_full(&mut self, root: GroupId, mask: CseMask) -> FullPlan {
        let mut mask = mask;
        loop {
            let choice = self.optimize_group(root, mask);
            // Reject CSEs that ended up with exactly one uncharged consumer.
            if let Some((&e, _)) = choice.usage.iter().find(|(_, &n)| n == 1) {
                mask &= !bit(e);
                continue;
            }
            let mut total = choice.cost;
            let mut spools: BTreeMap<CseId, SpoolDef> = BTreeMap::new();
            let mut pending: Vec<CseId> = choice.charged.iter().copied().collect();
            // Charge remaining (root-charged) CSEs.
            let mut extra_usage = choice.usage.clone();
            let mut retry = false;
            while let Some((&e, &n)) = extra_usage.iter().next() {
                extra_usage.remove(&e);
                if n == 0 {
                    continue;
                }
                if n == 1 {
                    mask &= !bit(e);
                    retry = true;
                    break;
                }
                let (init, def) = self.init_cost(e, mask);
                total += init;
                pending.push(e);
                for (k, v) in def.usage.iter() {
                    *extra_usage.entry(*k).or_insert(0) += v;
                }
                pending.extend(def.charged.iter().copied());
            }
            if retry {
                continue;
            }
            // Collect spool definitions transitively.
            while let Some(e) = pending.pop() {
                if spools.contains_key(&e) {
                    continue;
                }
                let cand = match self.candidates.get(&e) {
                    Some(c) => c.clone(),
                    None => continue,
                };
                let (_, def) = self.init_cost(e, mask);
                pending.extend(def.charged.iter().copied());
                pending.extend(def.usage.keys().copied());
                spools.insert(
                    e,
                    SpoolDef {
                        plan: def.plan.clone(),
                        layout: cand.output.clone(),
                        est_rows: cand.est_rows,
                    },
                );
            }
            return FullPlan {
                root: choice.plan.clone(),
                spools,
                cost: total,
                baseline: None,
            };
        }
    }
}

fn merge_usage(a: &BTreeMap<CseId, u32>, b: &BTreeMap<CseId, u32>) -> BTreeMap<CseId, u32> {
    let mut out = a.clone();
    for (k, v) in b {
        *out.entry(*k).or_insert(0) += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext};
    use cse_memo::{explore, ExploreConfig};
    use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::sync::Arc;

    /// fact(k, v): 2000 rows, k in 0..200; dim(k): 200 rows unique.
    fn setup() -> (Memo, StatsCatalog, Catalog) {
        let mut fact = Table::new(
            "fact",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]),
        );
        for i in 0..2000i64 {
            fact.push(row(vec![Value::Int(i % 200), Value::Float(i as f64)]))
                .unwrap();
        }
        let mut dim = Table::new(
            "dim",
            Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        );
        for i in 0..200i64 {
            dim.push(row(vec![Value::Int(i), Value::Int(i % 7)]))
                .unwrap();
        }
        let mut cat = Catalog::new();
        cat.register_table(fact).unwrap();
        cat.register_table(dim).unwrap();
        let stats = StatsCatalog::from_catalog(&cat);

        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let fs = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let ds = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("w", DataType::Int),
        ]));
        let f = ctx.add_base_rel("fact", "fact", fs, b);
        let d = ctx.add_base_rel("dim", "dim", ds, b);
        let plan = LogicalPlan::get(f).join(
            LogicalPlan::get(d),
            Scalar::eq(Scalar::col(f, 0), Scalar::col(d, 0)),
        );
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&plan);
        explore(&mut memo, &ExploreConfig::default());
        (memo, stats, cat)
    }

    #[test]
    fn baseline_optimization_produces_hash_join() {
        let (memo, stats, cat) = setup();
        let mut opt = Optimizer::new(
            &memo,
            &stats,
            CostModel::default(),
            OptimizerConfig::default(),
            IndexInfo::from_catalog(&cat),
        );
        let choice = opt.optimize_group(memo.root(), 0);
        assert!(matches!(choice.plan, PhysicalPlan::HashJoin { .. }));
        assert!(choice.cost > 0.0);
        assert!(choice.usage.is_empty());
    }

    #[test]
    fn cache_hits_on_second_call() {
        let (memo, stats, cat) = setup();
        let mut opt = Optimizer::new(
            &memo,
            &stats,
            CostModel::default(),
            OptimizerConfig::default(),
            IndexInfo::from_catalog(&cat),
        );
        opt.optimize_group(memo.root(), 0);
        let n = opt.group_optimizations;
        opt.optimize_group(memo.root(), 0);
        assert_eq!(opt.group_optimizations, n);
    }

    #[test]
    fn build_side_choice_prefers_smaller_build() {
        // With commuted alternatives explored, the optimizer should build
        // on the smaller (dim) side.
        let (memo, stats, cat) = setup();
        let mut opt = Optimizer::new(
            &memo,
            &stats,
            CostModel::default(),
            OptimizerConfig::default(),
            IndexInfo::from_catalog(&cat),
        );
        let choice = opt.optimize_group(memo.root(), 0);
        if let PhysicalPlan::HashJoin { left, .. } = &choice.plan {
            if let PhysicalPlan::TableScan { rel, .. } = left.as_ref() {
                assert_eq!(memo.ctx.rel(*rel).name, "dim");
                return;
            }
        }
        panic!("expected HashJoin over TableScan build side");
    }

    #[test]
    fn optimize_full_without_candidates() {
        let (memo, stats, cat) = setup();
        let mut opt = Optimizer::new(
            &memo,
            &stats,
            CostModel::default(),
            OptimizerConfig::default(),
            IndexInfo::from_catalog(&cat),
        );
        let full = opt.optimize_full(memo.root(), 0);
        assert!(full.spools.is_empty());
        assert!(full.cost > 0.0);
    }
}
