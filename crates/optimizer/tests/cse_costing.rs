//! Unit tests of the CSE costing mechanics (§5.2): usage-cost-only
//! charging at consumers, initial cost at the least common ancestor,
//! single-consumer discarding, and assembly-level spool collection.

use cse_algebra::{ColRef, LogicalPlan, PlanContext, Scalar};
use cse_cost::{CostModel, StatsCatalog};
use cse_memo::{explore, ExploreConfig, GroupId, Memo};
use cse_optimizer::{
    bit, CseCandidate, CseId, IndexInfo, Optimizer, OptimizerConfig, PhysicalPlan, Substitute,
};
use cse_storage::{row, Catalog, DataType, Schema, Table, Value};

/// Two identical-shape joins (different instances) under a batch root,
/// with a CSE candidate covering both.
struct Fixture {
    memo: Memo,
    stats: StatsCatalog,
    root: GroupId,
    consumers: [GroupId; 2],
    candidate: CseCandidate,
    substitutes: Vec<Substitute>,
}

fn fixture(rows: usize) -> Fixture {
    // Catalog: two tables joined on k.
    let mut a = Table::new(
        "ta",
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
    );
    let mut b = Table::new(
        "tb",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
    );
    for i in 0..rows as i64 {
        a.push(row(vec![Value::Int(i), Value::Int(i * 2)])).unwrap();
        b.push(row(vec![Value::Int(i), Value::Int(i * 3)])).unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register_table(a).unwrap();
    catalog.register_table(b).unwrap();
    let stats = StatsCatalog::from_catalog(&catalog);

    let mut ctx = PlanContext::new();
    let schema_a = catalog.table("ta").unwrap().schema().clone();
    let schema_b = catalog.table("tb").unwrap().schema().clone();
    let mk = |ctx: &mut PlanContext| {
        let blk = ctx.new_block();
        let ra = ctx.add_base_rel("ta", "ta", schema_a.clone(), blk);
        let rb = ctx.add_base_rel("tb", "tb", schema_b.clone(), blk);
        (
            LogicalPlan::get(ra).join(
                LogicalPlan::get(rb),
                Scalar::eq(Scalar::col(ra, 0), Scalar::col(rb, 0)),
            ),
            ra,
            rb,
        )
    };
    let (q1, a1, b1) = mk(&mut ctx);
    let (q2, a2, b2) = mk(&mut ctx);
    let mut memo = Memo::new(ctx);
    let g1 = memo.insert_plan(&q1);
    let g2 = memo.insert_plan(&q2);
    let root = memo.insert_plan(&LogicalPlan::Batch {
        children: vec![q1.clone(), q2],
    });
    memo.set_root(root);
    explore(&mut memo, &ExploreConfig::default());

    // Candidate: the q1 join itself (anchor space = q1's rels).
    let def_root = memo.insert_plan(&q1);
    assert_eq!(def_root, g1, "definition dedups onto consumer 1's group");
    let output: Vec<ColRef> = vec![ColRef::new(a1, 0), ColRef::new(a1, 1), ColRef::new(b1, 1)];
    let candidate = CseCandidate {
        id: CseId(0),
        def_root,
        def_plan: q1,
        output: output.clone(),
        est_rows: rows as f64,
        est_width: 24.0,
        consumers: vec![g1, g2],
        lca: Some(root),
    };
    let substitutes = vec![
        Substitute {
            cse: CseId(0),
            consumer: g1,
            filter: None,
            reagg: None,
            output_map: output.iter().map(|c| (*c, Scalar::Col(*c))).collect(),
        },
        Substitute {
            cse: CseId(0),
            consumer: g2,
            filter: None,
            reagg: None,
            output_map: vec![
                (ColRef::new(a2, 0), Scalar::Col(ColRef::new(a1, 0))),
                (ColRef::new(a2, 1), Scalar::Col(ColRef::new(a1, 1))),
                (ColRef::new(b2, 1), Scalar::Col(ColRef::new(b1, 1))),
            ],
        },
    ];
    Fixture {
        memo,
        stats,
        root,
        consumers: [g1, g2],
        candidate,
        substitutes,
    }
}

fn optimizer<'a>(f: &'a Fixture, cfg: OptimizerConfig) -> Optimizer<'a> {
    Optimizer::new(
        &f.memo,
        &f.stats,
        CostModel::default(),
        cfg,
        IndexInfo::default(),
    )
}

#[test]
fn consumer_is_charged_usage_cost_only() {
    let f = fixture(1000);
    let mut opt = optimizer(&f, OptimizerConfig::default());
    opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
    // Optimizing a consumer *below* the LCA with the candidate enabled:
    // the chosen plan uses the spool and carries an uncharged usage count.
    let choice = opt.optimize_group(f.consumers[1], bit(CseId(0)));
    assert!(matches!(choice.plan, PhysicalPlan::CseRead { .. }));
    assert_eq!(choice.usage.get(&CseId(0)), Some(&1));
    assert!(choice.charged.is_empty());
    // Usage cost (spool read) must be far below recomputing the join.
    let baseline = opt.optimize_group(f.consumers[1], 0);
    assert!(choice.cost < baseline.cost);
}

#[test]
fn initial_cost_added_at_lca_with_two_consumers() {
    let f = fixture(1000);
    let mut opt = optimizer(&f, OptimizerConfig::default());
    opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
    let with = opt.optimize_group(f.root, bit(CseId(0)));
    // Both consumers share; the CSE is charged (moved to `charged`).
    assert!(with.charged.contains(&CseId(0)), "usage: {:?}", with.usage);
    assert!(with.usage.is_empty());
    let without = opt.optimize_group(f.root, 0);
    assert!(
        with.cost < without.cost,
        "sharing must win: {} vs {}",
        with.cost,
        without.cost
    );
}

#[test]
fn single_consumer_plans_are_discarded() {
    let f = fixture(1000);
    let mut opt = optimizer(&f, OptimizerConfig::default());
    // Register with only ONE substitute: the second consumer cannot use
    // the spool, so any plan would have usage 1 and must be discarded at
    // the LCA in favour of the no-CSE plan.
    let subs = vec![f.substitutes[0].clone()];
    opt.register_candidates(vec![f.candidate.clone()], subs);
    let with = opt.optimize_group(f.root, bit(CseId(0)));
    let without = opt.optimize_group(f.root, 0);
    assert_eq!(
        with.cost, without.cost,
        "single-consumer spool must not survive"
    );
    assert!(with.usage.is_empty());
    assert!(!with.charged.contains(&CseId(0)));
}

#[test]
fn optimize_full_collects_spool_definitions() {
    let f = fixture(1000);
    let mut opt = optimizer(&f, OptimizerConfig::default());
    opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
    let full = opt.optimize_full(f.root, bit(CseId(0)));
    assert_eq!(full.spools.len(), 1);
    let spool = full.spools.get(&CseId(0)).unwrap();
    assert_eq!(spool.layout, f.candidate.output);
    assert_eq!(full.root.cse_reads().get(&CseId(0)), Some(&2));
}

#[test]
fn charge_at_root_ablation_reaches_same_decision() {
    let f = fixture(1000);
    let lca_cost = {
        let mut opt = optimizer(&f, OptimizerConfig::default());
        opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
        opt.optimize_full(f.root, bit(CseId(0))).cost
    };
    let root_cost = {
        let mut opt = optimizer(
            &f,
            OptimizerConfig {
                charge_at_root: true,
                ..Default::default()
            },
        );
        opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
        opt.optimize_full(f.root, bit(CseId(0))).cost
    };
    // Same final plan for this simple shape — the placement affects search
    // pruning, not the best cost here.
    assert!((lca_cost - root_cost).abs() < 1e-6);
}

#[test]
fn expensive_spools_are_declined() {
    // When materialization is expensive (e.g. a write-through work table),
    // the optimizer must decline the CSE and recompute instead — the
    // "may conclude that the most efficient solution is not to use any
    // CSEs at all" case of §2.2.
    let f = fixture(1000);
    let model = CostModel {
        spool_write_byte: 10.0,
        spool_read_byte: 10.0,
        ..Default::default()
    };
    let mut opt = Optimizer::new(
        &f.memo,
        &f.stats,
        model,
        OptimizerConfig::default(),
        IndexInfo::default(),
    );
    opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
    let full = opt.optimize_full(f.root, bit(CseId(0)));
    let baseline = opt.optimize_full(f.root, 0);
    assert_eq!(full.cost, baseline.cost);
    assert!(full.spools.is_empty(), "expensive spool must be declined");
}

#[test]
fn history_reuse_skips_unrelated_groups() {
    let f = fixture(1000);
    let mut opt = optimizer(&f, OptimizerConfig::default());
    opt.register_candidates(vec![f.candidate.clone()], f.substitutes.clone());
    opt.optimize_group(f.root, 0);
    let after_baseline = opt.group_optimizations;
    // Optimizing with the candidate enabled re-optimizes only groups with
    // potential consumers below them (§5.4): strictly fewer than a full
    // second pass.
    opt.optimize_group(f.root, bit(CseId(0)));
    let delta = opt.group_optimizations - after_baseline;
    assert!(
        delta < after_baseline,
        "history reuse failed: {delta} re-optimizations vs {after_baseline} initial"
    );
}
