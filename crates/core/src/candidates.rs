//! Candidate generation (paper §4.3): Algorithm 1's greedy merging plus
//! the four cost-based heuristics.

use crate::compat::{partition_compatible, prepare_consumers, CompatibleGroup, PreparedConsumer};
use crate::construct::{construct, ConstructedCse};
use crate::manager::CseManager;
use crate::required::RequiredCols;
use cse_cost::{Cardinality, CostModel, Selectivity, StatsCatalog};
use cse_govern::{BudgetClock, BudgetTrip};
use cse_memo::{GroupId, Memo, TableSignature};
use std::collections::HashMap;

/// Generation knobs (paper values: α = 10%, β = 90%).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Apply the pruning heuristics H1/H2/H3/H4. When off, every
    /// join-compatible set yields one all-covering candidate (the paper's
    /// "no heuristics" configuration that produced 5 candidates for
    /// Example 1 and 51 for the 8-table batch).
    pub heuristics: bool,
    /// H1 threshold: consumers must sum to at least `alpha · C_Q`.
    pub alpha: f64,
    /// H4 threshold: a contained candidate survives only if its result is
    /// at most `beta` of the container's.
    pub beta: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            heuristics: true,
            alpha: 0.10,
            beta: 0.90,
        }
    }
}

/// A constructed candidate plus its cost ingredients.
#[derive(Debug, Clone)]
pub struct CostedCandidate {
    pub cse: ConstructedCse,
    pub signature: TableSignature,
    pub est_rows: f64,
    pub est_width: f64,
    /// C_W / C_R of the work table.
    pub cw: f64,
    pub cr: f64,
    /// Lower bound on the evaluation cost C_E (highest of the members'
    /// lower cost bounds, per §4.3.3).
    pub ce_lower: f64,
}

/// Per-group baseline costs from the normal optimization phases. Both
/// bounds coincide here because the baseline search is exhaustive over the
/// explored memo; the API keeps them separate to mirror the paper.
#[derive(Debug, Clone, Default)]
pub struct CostBounds {
    costs: HashMap<GroupId, f64>,
}

impl CostBounds {
    pub fn new(costs: HashMap<GroupId, f64>) -> Self {
        CostBounds { costs }
    }

    pub fn lower(&self, g: GroupId) -> f64 {
        self.costs.get(&g).copied().unwrap_or(f64::INFINITY)
    }

    pub fn upper(&self, g: GroupId) -> f64 {
        self.costs.get(&g).copied().unwrap_or(0.0)
    }

    /// Iterate the recorded per-group costs (used by the costing audit in
    /// `cse-verify` to diff bounds against freshly recomputed winners).
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, f64)> + '_ {
        self.costs.iter().map(|(&g, &c)| (g, c))
    }
}

/// Estimate a constructed CSE's work-table cardinality and width.
pub fn estimate_cse(memo: &Memo, stats: &StatsCatalog, cse: &ConstructedCse) -> (f64, f64) {
    let card = Cardinality::new(&memo.ctx, stats);
    let sel = Selectivity::new(&memo.ctx, stats);
    let rels = &cse.members[0].normal.spj.rels;
    let mut rows = card.spj_rows(rels, &cse.join_conjuncts);
    rows *= sel.of(&cse.covering).max(1e-12);
    rows = rows.max(1.0);
    let rows = match &cse.group {
        Some((keys, _, _)) => card.group_rows(keys, rows),
        None => rows,
    };
    let width = card.width_of(&cse.output);
    (rows, width)
}

/// Cost a constructed CSE.
pub fn cost_candidate(
    memo: &Memo,
    stats: &StatsCatalog,
    model: &CostModel,
    bounds: &CostBounds,
    signature: TableSignature,
    cse: ConstructedCse,
) -> CostedCandidate {
    let (est_rows, est_width) = estimate_cse(memo, stats, &cse);
    let cw = model.spool_write(est_rows, est_width);
    let cr = model.spool_read(est_rows, est_width);
    let ce_lower = cse
        .members
        .iter()
        .map(|m| bounds.lower(m.group))
        .fold(0.0, f64::max);
    CostedCandidate {
        cse,
        signature,
        est_rows,
        est_width,
        cw,
        cr,
        ce_lower,
    }
}

/// Shared-usage cost of a candidate: C_E + C_W + N · C_R (§4.3.3).
pub fn shared_cost(c: &CostedCandidate) -> f64 {
    c.ce_lower + c.cw + c.cse.members.len() as f64 * c.cr
}

/// Heuristic 1: only bother when the consumers amount to a significant
/// fraction of the whole query's cost.
pub fn h1_worthwhile(
    bounds: &CostBounds,
    consumers: &[GroupId],
    query_cost: f64,
    alpha: f64,
) -> bool {
    let total: f64 = consumers.iter().map(|g| bounds.lower(*g)).sum();
    total >= alpha * query_cost
}

/// Heuristic 2: drop consumers whose results are so large that
/// materializing + reading them beats recomputation even with perfect
/// sharing. Returns the surviving members.
pub fn h2_filter_consumers(
    memo: &mut Memo,
    stats: &StatsCatalog,
    model: &CostModel,
    bounds: &CostBounds,
    required: &RequiredCols,
    members: Vec<PreparedConsumer>,
) -> Vec<PreparedConsumer> {
    let n = members.len() as f64;
    members
        .into_iter()
        .filter(|m| {
            // Trivial CSE covering this member alone gives its C_W / C_R.
            let trivial = match construct(memo, vec![m.clone()], required) {
                Some(t) => t,
                None => return false,
            };
            let (rows, width) = estimate_cse(memo, stats, &trivial);
            let cw = model.spool_write(rows, width);
            let cr = model.spool_read(rows, width);
            let upper = bounds.upper(m.group);
            // Discard if computing from scratch is cheaper than even the
            // best-case shared usage: C_upper < C_R + (C_upper + C_W)/N.
            upper >= cr + (upper + cw) / n
        })
        .collect()
}

/// Algorithm 1: greedily merge trivial candidates while the benefit Δ is
/// positive; restart over the leftovers. Returns the merged candidates.
///
/// The `clock` is the optimization budget: the greedy merge loop is the
/// combinatorial heart of candidate generation (quadratic trials per
/// round), so the wall-clock deadline is re-checked on every round and a
/// trip aborts the whole set — the degradation ladder in `pipeline`
/// decides what happens next.
#[allow(clippy::too_many_arguments)]
pub fn create_candidates(
    memo: &mut Memo,
    stats: &StatsCatalog,
    model: &CostModel,
    bounds: &CostBounds,
    required: &RequiredCols,
    signature: &TableSignature,
    group: &CompatibleGroup,
    cfg: &GenConfig,
    clock: &BudgetClock,
) -> Result<Vec<CostedCandidate>, BudgetTrip> {
    let members = group.members.clone();
    if members.len() < 2 {
        return Ok(Vec::new());
    }
    if !cfg.heuristics {
        // One candidate covering every compatible consumer.
        return Ok(construct(memo, members, required)
            .map(|c| {
                vec![cost_candidate(
                    memo,
                    stats,
                    model,
                    bounds,
                    signature.clone(),
                    c,
                )]
            })
            .unwrap_or_default());
    }
    let mut rest: Vec<PreparedConsumer> = members;
    let mut out: Vec<CostedCandidate> = Vec::new();
    while rest.len() > 1 {
        clock.check_time("generation/algorithm1")?;
        // Seed with the first trivial candidate.
        let seed = rest.remove(0);
        let mut current: Vec<PreparedConsumer> = vec![seed];
        let mut merged_any = false;
        loop {
            clock.check_time("generation/algorithm1")?;
            // Pick the remaining member with the best merge benefit.
            let mut best: Option<(usize, f64, CostedCandidate)> = None;
            for (i, m) in rest.iter().enumerate() {
                let mut trial_members = current.clone();
                trial_members.push(m.clone());
                let trial = match construct(memo, trial_members, required) {
                    Some(t) => t,
                    None => continue,
                };
                let trial = cost_candidate(memo, stats, model, bounds, signature.clone(), trial);
                let delta =
                    merge_benefit(memo, stats, model, bounds, required, &current, m, &trial);
                if delta > 0.0 && best.as_ref().map(|(_, d, _)| delta > *d).unwrap_or(true) {
                    best = Some((i, delta, trial));
                }
            }
            match best {
                Some((i, _, _)) => {
                    current.push(rest.remove(i));
                    merged_any = true;
                }
                None => break,
            }
        }
        if merged_any {
            if let Some(c) = construct(memo, current, required) {
                out.push(cost_candidate(
                    memo,
                    stats,
                    model,
                    bounds,
                    signature.clone(),
                    c,
                ));
            }
        }
        // Unmerged seed is dropped; the loop restarts over the leftovers.
    }
    Ok(out)
}

/// Δ of merging `addition` into `current` (positive = beneficial):
/// separate costs minus the merged candidate's shared cost.
#[allow(clippy::too_many_arguments)]
fn merge_benefit(
    memo: &mut Memo,
    stats: &StatsCatalog,
    model: &CostModel,
    bounds: &CostBounds,
    required: &RequiredCols,
    current: &[PreparedConsumer],
    addition: &PreparedConsumer,
    merged: &CostedCandidate,
) -> f64 {
    let sep_current = if current.len() == 1 {
        // A single consumer computes from scratch.
        bounds.lower(current[0].group)
    } else {
        match construct(memo, current.to_vec(), required) {
            Some(c) => shared_cost(&cost_candidate(
                memo,
                stats,
                model,
                bounds,
                merged.signature.clone(),
                c,
            )),
            None => return f64::NEG_INFINITY,
        }
    };
    let sep_add = bounds.lower(addition.group);
    sep_current + sep_add - shared_cost(merged)
}

/// Heuristic 4: containment pruning across candidates (possibly from
/// different signatures). `ancestors` supplies the memo descendant
/// relation.
pub fn h4_prune_contained(
    mgr: &CseManager,
    mut candidates: Vec<CostedCandidate>,
    beta: f64,
) -> Vec<CostedCandidate> {
    let mut dead = vec![false; candidates.len()];
    for i in 0..candidates.len() {
        for j in 0..candidates.len() {
            if i == j || dead[i] {
                continue;
            }
            if dead[j] {
                continue;
            }
            let (child, parent) = (&candidates[i], &candidates[j]);
            if !is_contained(mgr, child, parent) {
                continue;
            }
            let s_child = child.est_rows * child.est_width;
            let s_parent = parent.est_rows * parent.est_width;
            if s_child > beta * s_parent {
                dead[i] = true;
            }
        }
    }
    let mut i = 0;
    candidates.retain(|_| {
        let keep = !dead[i];
        i += 1;
        keep
    });
    candidates
}

/// Definition 4.2: child's tables ⊆ parent's tables (multiset) and every
/// child consumer is a memo descendant of some parent consumer.
pub fn is_contained(mgr: &CseManager, child: &CostedCandidate, parent: &CostedCandidate) -> bool {
    if !child.signature.tables_subset_of(&parent.signature) {
        return false;
    }
    child.cse.members.iter().all(|cm| {
        parent
            .cse
            .members
            .iter()
            .any(|pm| mgr.is_ancestor(pm.group, cm.group))
    })
}

/// Full generation for one sharable set: H1 → compatibility → H1 → H2 →
/// Algorithm 1 (H3). H4 runs across sets afterwards.
#[allow(clippy::too_many_arguments)]
pub fn generate_for_set(
    memo: &mut Memo,
    stats: &StatsCatalog,
    model: &CostModel,
    bounds: &CostBounds,
    required: &RequiredCols,
    signature: &TableSignature,
    consumers: &[GroupId],
    query_cost: f64,
    cfg: &GenConfig,
    clock: &BudgetClock,
) -> Result<Vec<CostedCandidate>, BudgetTrip> {
    if cfg.heuristics && !h1_worthwhile(bounds, consumers, query_cost, cfg.alpha) {
        return Ok(Vec::new());
    }
    let prepared = prepare_consumers(memo, consumers);
    // The memo performs no group merging, so logically identical
    // expressions reached through different transformation paths can sit in
    // distinct groups. Generation runs over one representative per normal
    // form (quadratic merge trials over duplicates are pure waste);
    // duplicates rejoin the constructed candidates afterwards so every
    // group still receives its view-matching substitute.
    let mut unique: Vec<PreparedConsumer> = Vec::new();
    let mut duplicates: Vec<(usize, PreparedConsumer)> = Vec::new();
    for p in prepared {
        match unique.iter().position(|u| u.normal == p.normal) {
            Some(i) => duplicates.push((i, p)),
            None => unique.push(p),
        }
    }
    let unique_keys: Vec<cse_algebra::SpjgNormal> =
        unique.iter().map(|u| u.normal.clone()).collect();
    let prepared = unique;
    let groups = partition_compatible(&memo.ctx, prepared);
    let mut out = Vec::new();
    for mut g in groups {
        if g.members.len() < 2 {
            continue;
        }
        if cfg.heuristics {
            let ids: Vec<GroupId> = g.members.iter().map(|m| m.group).collect();
            if !h1_worthwhile(bounds, &ids, query_cost, cfg.alpha) {
                continue;
            }
            g.members = h2_filter_consumers(memo, stats, model, bounds, required, g.members);
            if g.members.len() < 2 {
                continue;
            }
        }
        out.extend(create_candidates(
            memo, stats, model, bounds, required, signature, &g, cfg, clock,
        )?);
    }
    // Re-attach duplicate groups: a duplicate consumes the candidate
    // exactly like the representative it mirrors.
    for cand in &mut out {
        for (rep_idx, dup) in &duplicates {
            let rep_normal = &unique_keys[*rep_idx];
            if let Some(pos) = cand
                .cse
                .members
                .iter()
                .position(|m| &m.normal == rep_normal)
            {
                let simplified = cand.cse.simplified[pos].clone();
                cand.cse.members.push(dup.clone());
                cand.cse.simplified.push(simplified);
            }
        }
    }
    Ok(out)
}
