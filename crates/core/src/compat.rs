//! Join-compatibility partitioning of a sharable set (paper §4.1).
//!
//! Consumers with the same table signature are aligned onto the anchor's
//! rel ids, their equivalence classes intersected, and the set is split
//! into groups whose members are mutually join compatible (connected
//! intersected equijoin graph).

use crate::align::Alignment;
use cse_algebra::{intersect_classes, is_connected, ColRef, PlanContext, SpjgNormal};
use cse_memo::{GroupId, Memo};
use std::collections::BTreeSet;

/// One consumer prepared for compatibility analysis and construction.
#[derive(Debug, Clone)]
pub struct PreparedConsumer {
    pub group: GroupId,
    /// Normal form in anchor space.
    pub normal: SpjgNormal,
    /// Equivalence classes in anchor space.
    pub classes: Vec<BTreeSet<ColRef>>,
    /// The alignment used (consumer space -> anchor space).
    pub alignment: Alignment,
}

/// Extract + align the consumers of one sharable set. Consumers whose
/// tree cannot be normalized (non-SPJG shapes) or aligned are dropped.
pub fn prepare_consumers(memo: &Memo, groups: &[GroupId]) -> Vec<PreparedConsumer> {
    let mut prepared: Vec<PreparedConsumer> = Vec::new();
    let mut anchor_rels: Option<Vec<cse_algebra::RelId>> = None;
    for &g in groups {
        let tree = memo.extract_first_tree(g);
        let normal = match SpjgNormal::from_plan(&tree) {
            Some(n) => n,
            None => continue,
        };
        let alignment = match &anchor_rels {
            None => {
                anchor_rels = Some(normal.spj.rels.clone());
                Alignment::identity(&normal.spj.rels)
            }
            Some(anchor) => match Alignment::new(&memo.ctx, anchor, &normal.spj.rels) {
                Some(a) => a,
                None => continue,
            },
        };
        let aligned = alignment.normal_form(&normal);
        let classes = aligned.spj.equiv_classes();
        prepared.push(PreparedConsumer {
            group: g,
            normal: aligned,
            classes,
            alignment,
        });
    }
    prepared
}

/// Split prepared consumers into mutually join-compatible groups.
///
/// Mirrors the paper's derivation: try adding each consumer to an existing
/// group by intersecting classes and checking connectivity; open a new
/// group when none accepts it. (Compatibility of pairs is not transitive
/// in general, so membership is re-validated against the group's running
/// intersection, which is the property construction actually needs.)
pub fn partition_compatible(
    _ctx: &PlanContext,
    consumers: Vec<PreparedConsumer>,
) -> Vec<CompatibleGroup> {
    let mut groups: Vec<CompatibleGroup> = Vec::new();
    'outer: for c in consumers {
        for g in &mut groups {
            let inter = intersect_classes(&g.intersected_classes, &c.classes);
            let rels = c.normal.spj.rel_set();
            if rels == g.rel_set && is_connected(rels, &inter) {
                g.intersected_classes = inter;
                g.members.push(c);
                continue 'outer;
            }
        }
        let rels = c.normal.spj.rel_set();
        groups.push(CompatibleGroup {
            rel_set: rels,
            intersected_classes: c.classes.clone(),
            members: vec![c],
        });
    }
    groups
}

/// A set of mutually join-compatible consumers plus the intersection of
/// their equivalence classes (the covering join predicate source).
#[derive(Debug, Clone)]
pub struct CompatibleGroup {
    pub rel_set: cse_algebra::RelSet,
    pub intersected_classes: Vec<BTreeSet<ColRef>>,
    pub members: Vec<PreparedConsumer>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    /// Build a memo with two compatible joins and one incompatible join
    /// over the same tables.
    fn build() -> (Memo, Vec<GroupId>) {
        let mut ctx = PlanContext::new();
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
        ]));
        let mk = |ctx: &mut PlanContext, joincol: u16| {
            let blk = ctx.new_block();
            let r = ctx.add_base_rel("r", "r", schema.clone(), blk);
            let s = ctx.add_base_rel("s", "s", schema.clone(), blk);
            LogicalPlan::get(r).join(
                LogicalPlan::get(s),
                Scalar::eq(Scalar::col(r, joincol), Scalar::col(s, joincol)),
            )
        };
        let q1 = mk(&mut ctx, 0);
        let q2 = mk(&mut ctx, 0); // compatible with q1
        let q3 = mk(&mut ctx, 2); // joins on a different column: incompatible
        let mut memo = Memo::new(ctx);
        let g1 = memo.insert_plan(&q1);
        let g2 = memo.insert_plan(&q2);
        let g3 = memo.insert_plan(&q3);
        memo.insert_plan(&LogicalPlan::Batch {
            children: vec![q1, q2, q3],
        });
        (memo, vec![g1, g2, g3])
    }

    #[test]
    fn partitions_by_compatibility() {
        let (memo, groups) = build();
        let prepared = prepare_consumers(&memo, &groups);
        assert_eq!(prepared.len(), 3);
        let parts = partition_compatible(&memo.ctx, prepared);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].members.len(), 2);
        assert_eq!(parts[1].members.len(), 1);
        // The compatible pair's intersection keeps the shared join class.
        assert_eq!(parts[0].intersected_classes.len(), 1);
    }

    #[test]
    fn same_shape_different_instances_stay_distinct_groups() {
        // q1 and q2 are textually identical but reference different table
        // instances (fresh RelIds), so they are distinct memo groups — the
        // situation alignment exists for.
        let (memo, groups) = build();
        assert_ne!(groups[0], groups[1]);
        let prepared = prepare_consumers(&memo, &groups[..2]);
        // After alignment both normal forms coincide.
        assert_eq!(prepared[0].normal.spj, prepared[1].normal.spj);
    }
}
