//! The CSE manager (paper §2.2 / §3): a hash table from table signatures
//! to the memo groups carrying them, and detection of potentially sharable
//! expression sets.

use cse_memo::{GroupId, Memo, TableSignature};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Signature hash table plus ancestor bookkeeping.
pub struct CseManager {
    /// signature -> groups with that signature (registration order).
    table: BTreeMap<TableSignature, Vec<GroupId>>,
    /// Upward-reachability: group -> all ancestor groups (inclusive).
    ancestors: HashMap<GroupId, BTreeSet<GroupId>>,
}

impl CseManager {
    /// Scan the memo and register every signature-bearing group
    /// (signatures were computed incrementally at group creation — this
    /// pass just indexes them, mirroring Step 1 of the paper).
    pub fn build(memo: &Memo) -> Self {
        let mut table: BTreeMap<TableSignature, Vec<GroupId>> = BTreeMap::new();
        for g in memo.groups() {
            if let Some(sig) = &g.props.signature {
                // Single-table signatures can never produce a useful CSE
                // (the covering expression would be the table itself), and
                // delivery operators (root projections/sorts) are not
                // replaceable expressions in this IR — the group beneath
                // them is the consumer.
                let first = memo.gexpr(g.exprs[0]);
                let delivery = matches!(
                    first.op,
                    cse_memo::Op::Project { .. } | cse_memo::Op::Sort { .. } | cse_memo::Op::Batch
                );
                if sig.table_count() >= 2 && !delivery {
                    table.entry(sig.clone()).or_default().push(g.id);
                }
            }
        }
        let ancestors = compute_ancestors(memo);
        CseManager { table, ancestors }
    }

    /// Is `anc` an ancestor of `g` (or equal)?
    pub fn is_ancestor(&self, anc: GroupId, g: GroupId) -> bool {
        self.ancestors
            .get(&g)
            .map(|s| s.contains(&anc))
            .unwrap_or(false)
    }

    pub fn ancestors_of(&self, g: GroupId) -> &BTreeSet<GroupId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<GroupId>> = std::sync::OnceLock::new();
        self.ancestors
            .get(&g)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// All signatures observed, for diagnostics.
    pub fn signatures(&self) -> impl Iterator<Item = (&TableSignature, &Vec<GroupId>)> {
        self.table.iter()
    }

    /// Groups registered under one signature.
    pub fn groups_of(&self, sig: &TableSignature) -> &[GroupId] {
        self.table.get(sig).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Potentially sharable sets (Step 2, first part): signatures with at
    /// least two *maximal* groups. A group is dropped when an ancestor
    /// with the same signature is also registered — e.g. `σ(C⋈O)` above
    /// `C⋈O` represents the same part of the query, and the wider
    /// expression is the real consumer.
    pub fn sharable_sets(&self) -> Vec<(TableSignature, Vec<GroupId>)> {
        let mut out = Vec::new();
        for (sig, groups) in &self.table {
            if groups.len() < 2 {
                continue;
            }
            let set: BTreeSet<GroupId> = groups.iter().copied().collect();
            let maximal: Vec<GroupId> = groups
                .iter()
                .copied()
                .filter(|g| {
                    !self
                        .ancestors_of(*g)
                        .iter()
                        .any(|a| a != g && set.contains(a))
                })
                .collect();
            if maximal.len() >= 2 {
                out.push((sig.clone(), maximal));
            }
        }
        out
    }
}

/// Ancestor sets via reverse (parent) edges, to a fixpoint.
fn compute_ancestors(memo: &Memo) -> HashMap<GroupId, BTreeSet<GroupId>> {
    let mut anc: HashMap<GroupId, BTreeSet<GroupId>> = HashMap::new();
    for g in memo.groups() {
        anc.entry(g.id).or_default().insert(g.id);
    }
    // Iterate to fixpoint: ancestors(g) ⊇ ancestors(parent) for each parent.
    let mut changed = true;
    while changed {
        changed = false;
        for g in memo.groups() {
            let mut add: BTreeSet<GroupId> = BTreeSet::new();
            for &peid in &g.parents {
                let pg = memo.group_of(peid);
                if let Some(pa) = anc.get(&pg) {
                    add.extend(pa.iter().copied());
                }
            }
            let entry = anc.entry(g.id).or_default();
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
    }
    anc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    /// Two statements joining the same pair of tables with different
    /// filters — the canonical sharable situation.
    fn two_query_memo() -> Memo {
        let mut ctx = PlanContext::new();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
        ]));
        let mk = |ctx: &mut PlanContext, lit: i64| {
            let b = ctx.new_block();
            let a = ctx.add_base_rel("ta", "ta", schema.clone(), b);
            let bb = ctx.add_base_rel("tb", "tb", schema.clone(), b);
            LogicalPlan::get(a)
                .filter(Scalar::cmp(
                    cse_algebra::CmpOp::Lt,
                    Scalar::col(a, 1),
                    Scalar::int(lit),
                ))
                .join(
                    LogicalPlan::get(bb),
                    Scalar::eq(Scalar::col(a, 0), Scalar::col(bb, 0)),
                )
        };
        let q1 = mk(&mut ctx, 10);
        let q2 = mk(&mut ctx, 20);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&LogicalPlan::Batch {
            children: vec![q1, q2],
        });
        memo
    }

    #[test]
    fn detects_sharable_join_pair() {
        let memo = two_query_memo();
        let mgr = CseManager::build(&memo);
        let sets = mgr.sharable_sets();
        assert_eq!(sets.len(), 1, "exactly the {{ta,tb}} signature: {sets:?}");
        let (sig, groups) = &sets[0];
        assert_eq!(sig.tables, vec!["ta", "tb"]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn single_table_signatures_excluded() {
        let memo = two_query_memo();
        let mgr = CseManager::build(&memo);
        assert!(mgr.signatures().all(|(s, _)| s.table_count() >= 2));
    }

    #[test]
    fn ancestors_reach_root() {
        let memo = two_query_memo();
        let mgr = CseManager::build(&memo);
        let root = memo.root();
        for g in memo.groups() {
            assert!(
                mgr.is_ancestor(root, g.id),
                "root must be ancestor of {}",
                g.id
            );
        }
        assert!(mgr.is_ancestor(root, root));
    }

    #[test]
    fn maximality_prunes_filter_wrappers() {
        // A single query where σ(A⋈B) sits above A⋈B: both carry the same
        // signature, but only one maximal consumer must remain per branch.
        let mut ctx = PlanContext::new();
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let b1 = ctx.new_block();
        let a1 = ctx.add_base_rel("ta", "ta", schema.clone(), b1);
        let b1b = ctx.add_base_rel("tb", "tb", schema.clone(), b1);
        let q1 = LogicalPlan::get(a1)
            .join(
                LogicalPlan::get(b1b),
                Scalar::eq(Scalar::col(a1, 0), Scalar::col(b1b, 0)),
            )
            // Filter ABOVE the join: same table signature as the join.
            .filter(Scalar::cmp(
                cse_algebra::CmpOp::Lt,
                Scalar::col(a1, 0),
                Scalar::int(5),
            ));
        let b2 = ctx.new_block();
        let a2 = ctx.add_base_rel("ta", "ta", schema.clone(), b2);
        let b2b = ctx.add_base_rel("tb", "tb", schema.clone(), b2);
        let q2 = LogicalPlan::get(a2).join(
            LogicalPlan::get(b2b),
            Scalar::eq(Scalar::col(a2, 0), Scalar::col(b2b, 0)),
        );
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&LogicalPlan::Batch {
            children: vec![q1, q2],
        });
        let mgr = CseManager::build(&memo);
        let sets = mgr.sharable_sets();
        assert_eq!(sets.len(), 1);
        // Query 1 contributes only its maximal σ(A⋈B) group, query 2 its
        // join group: exactly two consumers.
        assert_eq!(sets[0].1.len(), 2);
    }
}
