//! Multi-candidate optimization (paper §5.3): enumerate enabled-CSE sets,
//! pruned with the competing/independent analysis and Propositions
//! 5.4–5.6.

use crate::lca::competing;
use crate::manager::CseManager;
use cse_govern::{BudgetClock, BudgetTrip};
use cse_memo::GroupId;
use cse_optimizer::{bit, CseId, CseMask, FullPlan, Optimizer};
use std::collections::BTreeSet;

/// Outcome of the enumeration.
pub struct EnumOutcome {
    pub plan: FullPlan,
    /// Mask of candidates available to the winning optimization.
    pub chosen_mask: CseMask,
    /// Number of CSE optimizations performed (the bracketed figure of the
    /// paper's tables).
    pub optimizations: u32,
}

/// Choose the best plan over subsets of candidates.
///
/// Candidates are first split into *clusters*: connected components of the
/// competing relation. Independent clusters cannot influence each other
/// (Prop. 5.4 reasoning), so subsets are enumerated per cluster and the
/// winning masks combined — turning a 2^N search into a sum of small
/// enumerations. Within a cluster, subsets are visited in descending size
/// with Prop. 5.5/5.6 skipping, bounded by `max_optimizations`.
///
/// The wall-clock deadline in `clock` is re-checked before every full
/// optimization pass (the expensive unit of work here). Expiry trips the
/// whole enumeration rather than returning an anytime-best plan, so that
/// plans produced under a tripped budget are always the ladder's clean
/// fallbacks — never a half-enumerated hybrid.
pub fn choose_best(
    opt: &mut Optimizer<'_>,
    mgr: &CseManager,
    root: GroupId,
    candidates: &[(CseId, Option<GroupId>)],
    max_optimizations: u32,
    clock: &BudgetClock,
) -> Result<EnumOutcome, BudgetTrip> {
    let mut optimizations = 0u32;
    if candidates.is_empty() {
        let plan = opt.optimize_full(root, 0);
        return Ok(EnumOutcome {
            plan,
            chosen_mask: 0,
            optimizations: 0,
        });
    }
    clock.check_time("enumerate")?;
    // Build clusters of the competing relation.
    let n = candidates.len();
    let mut comp = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && competing(mgr, candidates[i].1, candidates[j].1) {
                comp[i][j] = true;
            }
        }
    }
    let mut cluster_of = vec![usize::MAX; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        if cluster_of[i] != usize::MAX {
            continue;
        }
        let id = clusters.len();
        let mut stack = vec![i];
        let mut members = Vec::new();
        while let Some(x) = stack.pop() {
            if cluster_of[x] != usize::MAX {
                continue;
            }
            cluster_of[x] = id;
            members.push(x);
            for (y, is_comp) in comp[x].iter().enumerate() {
                if *is_comp && cluster_of[y] == usize::MAX {
                    stack.push(y);
                }
            }
        }
        clusters.push(members);
    }

    // Enumerate per cluster.
    let mut chosen_mask: CseMask = 0;
    for members in &clusters {
        let ids: Vec<CseId> = members.iter().map(|&i| candidates[i].0).collect();
        let full: CseMask = ids.iter().fold(0, |m, id| m | bit(*id));
        clock.check_time("enumerate")?;
        if ids.len() == 1 {
            // One candidate: a single optimization with it enabled decides.
            let with = opt.optimize_full(root, chosen_mask | full);
            optimizations += 1;
            let without = opt.optimize_full(root, chosen_mask);
            if with.cost < without.cost {
                chosen_mask |= full;
            }
            continue;
        }
        // Subsets in descending size, with proposition-based skipping. For
        // clusters beyond exhaustive reach (2^N blows up around N=16), a
        // bounded local search starts from the full set and explores
        // one-removed neighbours of the used sets — the same descending
        // walk, just truncated.
        let subsets: Vec<CseMask> = if ids.len() <= 16 {
            let mut subsets: Vec<CseMask> = (1..(1u64 << ids.len()))
                .map(|bits| {
                    ids.iter()
                        .enumerate()
                        .filter(|(k, _)| bits & (1u64 << k) != 0)
                        .fold(0u64, |m, (_, id)| m | bit(*id))
                })
                .collect();
            subsets.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
            subsets.dedup();
            subsets
        } else {
            let mut out = vec![full];
            for &id in &ids {
                out.push(full & !bit(id));
            }
            out
        };
        let mut skip: BTreeSet<CseMask> = BTreeSet::new();
        let mut best: Option<(f64, CseMask, FullPlan)> = None;
        for mask in subsets {
            if skip.contains(&mask) {
                continue;
            }
            if optimizations >= max_optimizations {
                break;
            }
            clock.check_time("enumerate")?;
            let plan = opt.optimize_full(root, chosen_mask | mask);
            optimizations += 1;
            let used: CseMask = plan.spools.keys().fold(0, |m, id| m | bit(*id)) & mask;
            // Proposition 5.6: the returned plan is also the answer for
            // exactly its used set.
            skip.insert(used);
            // Proposition 5.5 (with 5.6's S^n): the members of the enabled
            // set that are independent of all other enabled members have
            // stable decisions — skip their proper subsets.
            for s in [mask, used] {
                // Proposition 5.5: with T the members of `s` independent of
                // every other enabled member, any proper submask of T (and
                // nothing from R = s \ T) needs no further optimization.
                let t = independent_part(&ids, s, candidates, mgr);
                let mut sub = t;
                while sub != 0 {
                    sub = (sub - 1) & t;
                    skip.insert(sub);
                    if sub == 0 {
                        break;
                    }
                }
            }
            if best
                .as_ref()
                .map(|(c, _, _)| plan.cost < *c)
                .unwrap_or(true)
            {
                best = Some((plan.cost, mask, plan));
            }
        }
        // Compare with not using this cluster at all.
        let without = opt.optimize_full(root, chosen_mask);
        match best {
            Some((c, mask, _)) if c < without.cost => {
                chosen_mask |= mask;
            }
            _ => {}
        }
    }
    let plan = opt.optimize_full(root, chosen_mask);
    Ok(EnumOutcome {
        plan,
        chosen_mask,
        optimizations,
    })
}

/// The sub-mask of `enabled` whose members are independent of every other
/// enabled member.
fn independent_part(
    ids: &[CseId],
    enabled: CseMask,
    candidates: &[(CseId, Option<GroupId>)],
    mgr: &CseManager,
) -> CseMask {
    let lca_of = |id: CseId| {
        candidates
            .iter()
            .find(|(c, _)| *c == id)
            .and_then(|(_, l)| *l)
    };
    let mut t = 0u64;
    for &a in ids {
        if enabled & bit(a) == 0 {
            continue;
        }
        let indep = ids
            .iter()
            .all(|&b| b == a || enabled & bit(b) == 0 || !competing(mgr, lca_of(a), lca_of(b)));
        if indep {
            t |= bit(a);
        }
    }
    t
}
