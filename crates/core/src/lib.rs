//! # cse-core
//!
//! The paper's contribution: detection, construction and cost-based
//! exploitation of similar subexpressions ("Efficient Exploitation of
//! Similar Subexpressions for Query Processing", SIGMOD 2007).
//!
//! - [`manager`]: table-signature hash table, sharable-set detection;
//! - [`align`] / [`compat`]: consumer alignment and join compatibility;
//! - [`mod@construct`]: the six-step covering-subexpression builder;
//! - [`candidates`]: Algorithm 1 with heuristics H1–H4;
//! - [`view_match`]: substitute (compensation) construction;
//! - [`lca`] / [`enumerate`]: least-common-ancestor costing and the
//!   multi-candidate set enumeration with Propositions 5.4–5.6;
//! - [`pipeline`]: the end-to-end optimizer entry points;
//! - [`maintenance`]: materialized-view maintenance over the pipeline.

// Fallible paths must surface `Result`s, not panic; tests may unwrap.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod align;
pub mod candidates;
pub mod compat;
pub mod construct;
pub mod enumerate;
pub mod lca;
pub mod maintenance;
pub mod manager;
pub mod pipeline;
pub mod required;
pub mod view_match;

pub use align::Alignment;
pub use candidates::{CostBounds, CostedCandidate, GenConfig};
pub use compat::{partition_compatible, prepare_consumers, CompatibleGroup, PreparedConsumer};
pub use construct::{
    construct, prune_proven_redundant, simplify_covering, simplify_covering_with_facts,
    ConstructedCse,
};
pub use enumerate::{choose_best, EnumOutcome};
pub use lca::{competing, least_common_ancestor};
pub use maintenance::{create_materialized_view, maintain_insert, MaintenanceReport};
pub use manager::CseManager;
pub use pipeline::{
    optimize_plan, optimize_plan_with_facts, optimize_sql, CandidateSummary, CseConfig, CseReport,
    Optimized,
};
pub use required::{compute_required, RequiredCols};
pub use view_match::build_substitute;
