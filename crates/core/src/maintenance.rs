//! Materialized-view maintenance via the CSE pipeline (paper §6.4).
//!
//! When a base table receives inserts, the new tuples are captured in a
//! delta work table; each affected view's definition is rewritten to read
//! the delta instead of the base table, the rewritten maintenance queries
//! are optimized *as one batch* — letting the covering-subexpression
//! machinery share the common joins — and the per-view delta results are
//! merged into the stored view contents.

use crate::pipeline::{optimize_sql, CseConfig, CseReport};
use cse_exec::Engine;
use cse_sql::ast::{AggName, Expr, ExprKind, SelectItem, Statement};
use cse_storage::{row, Catalog, MaterializedView, Row, Table, TableStats, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How one output column of a view merges on refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    Key,
    Sum,
    Count,
    Min,
    Max,
}

/// Result of a maintenance run.
#[derive(Debug)]
pub struct MaintenanceReport {
    /// Views refreshed, in maintenance order.
    pub views: Vec<String>,
    /// Rows in the delta that drove maintenance.
    pub delta_rows: usize,
    /// Optimizer report of the maintenance batch (candidates, costs, ...).
    pub cse: CseReport,
    /// Wall-clock of optimize + execute + merge.
    pub total_time: std::time::Duration,
}

/// Create a materialized view: execute its definition and store the result
/// as a table named after the view.
pub fn create_materialized_view(
    catalog: &mut Catalog,
    name: &str,
    definition_sql: &str,
    cfg: &CseConfig,
) -> Result<(), String> {
    let stmt = cse_sql::parse_one(definition_sql)?;
    let select = match stmt {
        Statement::Select(s) => s,
        Statement::CreateMaterializedView { .. } => {
            return Err("pass the defining SELECT, not CREATE MATERIALIZED VIEW".into())
        }
    };
    // Validate mergeability now so maintenance cannot fail later.
    merge_plan_of(&select)?;
    let optimized = optimize_sql(catalog, definition_sql, cfg)?;
    let engine = Engine::new(catalog, &optimized.ctx);
    let out = engine.execute(&optimized.plan)?;
    let result = out
        .results
        .into_iter()
        .next()
        .ok_or("view definition produced no result")?;
    let schema = infer_schema(&result.columns, &result.rows);
    let table = Table::with_rows(name, schema, result.rows);
    let stats = Arc::new(TableStats::analyze(&table));
    catalog
        .register_table_with_stats(stats, table)
        .map_err(|e| e.to_string())?;
    catalog.register_view(MaterializedView {
        name: name.to_string(),
        definition_sql: definition_sql.to_string(),
    });
    Ok(())
}

/// Apply `inserts` to `base` and maintain every affected materialized view
/// through one CSE-optimized batch.
pub fn maintain_insert(
    catalog: &mut Catalog,
    base: &str,
    inserts: Vec<Row>,
    cfg: &CseConfig,
) -> Result<MaintenanceReport, String> {
    let t0 = Instant::now();
    let base_entry = catalog.get(base).map_err(|e| e.to_string())?;
    let base_schema = base_entry.table.schema().as_ref().clone();
    let delta_name = format!("delta_{}", base.to_ascii_lowercase());

    // Affected views: definition references the base table.
    let affected: Vec<MaterializedView> = catalog
        .views()
        .filter(|v| {
            definition_tables(&v.definition_sql)
                .map(|ts| ts.iter().any(|t| t.eq_ignore_ascii_case(base)))
                .unwrap_or(false)
        })
        .cloned()
        .collect();

    // Register the delta work table.
    let delta_rows = inserts.len();
    let delta_table = Table::with_rows(&delta_name, base_schema.clone(), inserts.clone());
    catalog.replace_table(delta_table);

    let mut views = Vec::new();
    let mut cse_report = CseReport::default();
    if !affected.is_empty() {
        // Build the maintenance batch: each view's definition with the
        // base table swapped for the delta.
        let mut batch_sql = String::new();
        let mut merge_plans = Vec::new();
        for v in &affected {
            let rewritten = rewrite_from(&v.definition_sql, base, &delta_name)?;
            let stmt = cse_sql::parse_one(&rewritten)?;
            let select = match stmt {
                Statement::Select(s) => s,
                _ => return Err("view definition must be a SELECT".into()),
            };
            merge_plans.push(merge_plan_of(&select)?);
            batch_sql.push_str(&rewritten);
            batch_sql.push(';');
            views.push(v.name.clone());
        }
        let optimized = optimize_sql(catalog, &batch_sql, cfg)?;
        cse_report = optimized.report.clone();
        let engine = Engine::new(catalog, &optimized.ctx);
        let out = engine.execute(&optimized.plan)?;
        if out.results.len() != affected.len() {
            return Err("maintenance batch produced the wrong number of results".into());
        }
        for ((v, result), merge) in affected.iter().zip(out.results).zip(&merge_plans) {
            let stored = catalog.table(&v.name).map_err(|e| e.to_string())?;
            let merged = merge_rows(stored.as_ref(), &result.rows, merge)?;
            catalog.replace_table(Table::with_rows(
                &v.name,
                stored.schema().as_ref().clone(),
                merged,
            ));
        }
    }

    // Apply the base-table inserts.
    let base_table = catalog.table(base).map_err(|e| e.to_string())?;
    let mut rows: Vec<Row> = base_table.rows().to_vec();
    rows.extend(inserts);
    catalog.replace_table(Table::with_rows(base, base_schema, rows));
    catalog.drop_table(&delta_name);

    Ok(MaintenanceReport {
        views,
        delta_rows,
        cse: cse_report,
        total_time: t0.elapsed(),
    })
}

/// Which output column merges how; errors on non-self-maintainable
/// definitions (AVG, HAVING, ORDER BY).
fn merge_plan_of(select: &cse_sql::SelectStmt) -> Result<Vec<MergeKind>, String> {
    if select.having.is_some() || !select.order_by.is_empty() {
        return Err("materialized views cannot use HAVING or ORDER BY".into());
    }
    let mut out = Vec::new();
    for item in &select.select {
        match item {
            SelectItem::Star => {
                return Err("materialized views must list output columns explicitly".into())
            }
            SelectItem::Expr { expr, .. } => match &expr.kind {
                ExprKind::Agg { func, .. } => out.push(match func {
                    AggName::Sum => MergeKind::Sum,
                    AggName::Count => MergeKind::Count,
                    AggName::Min => MergeKind::Min,
                    AggName::Max => MergeKind::Max,
                    AggName::Avg => {
                        return Err(
                            "AVG is not self-maintainable; define SUM and COUNT columns".into()
                        )
                    }
                }),
                _ => out.push(MergeKind::Key),
            },
        }
    }
    if select.group_by.is_empty() && out.contains(&MergeKind::Key) {
        return Err("mixing keys and aggregates requires GROUP BY".into());
    }
    Ok(out)
}

/// Merge delta rows into stored rows according to the per-column plan.
fn merge_rows(stored: &Table, delta: &[Row], plan: &[MergeKind]) -> Result<Vec<Row>, String> {
    let key_idx: Vec<usize> = plan
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == MergeKind::Key)
        .map(|(i, _)| i)
        .collect();
    if key_idx.is_empty() {
        // Pure SPJ view: append.
        let mut rows = stored.rows().to_vec();
        rows.extend(delta.iter().cloned());
        return Ok(rows);
    }
    let mut index: HashMap<Vec<Value>, usize> = HashMap::with_capacity(stored.row_count());
    let mut rows: Vec<Vec<Value>> = stored.rows().iter().map(|r| r.to_vec()).collect();
    for (i, r) in rows.iter().enumerate() {
        index.insert(key_idx.iter().map(|k| r[*k].clone()).collect(), i);
    }
    for d in delta {
        let key: Vec<Value> = key_idx.iter().map(|k| d[*k].clone()).collect();
        match index.get(&key) {
            Some(&i) => {
                for (c, kind) in plan.iter().enumerate() {
                    let old = rows[i][c].clone();
                    rows[i][c] = combine(*kind, &old, &d[c])?;
                }
            }
            None => {
                index.insert(key, rows.len());
                rows.push(d.to_vec());
            }
        }
    }
    Ok(rows.into_iter().map(row).collect())
}

fn combine(kind: MergeKind, old: &Value, new: &Value) -> Result<Value, String> {
    Ok(match kind {
        MergeKind::Key => old.clone(),
        MergeKind::Sum | MergeKind::Count => match (old, new) {
            (Value::Null, v) | (v, Value::Null) => v.clone(),
            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x + y),
                _ => return Err("cannot merge non-numeric aggregate".into()),
            },
        },
        MergeKind::Min => {
            if old.is_null() || (!new.is_null() && new.total_cmp(old).is_lt()) {
                new.clone()
            } else {
                old.clone()
            }
        }
        MergeKind::Max => {
            if old.is_null() || (!new.is_null() && new.total_cmp(old).is_gt()) {
                new.clone()
            } else {
                old.clone()
            }
        }
    })
}

/// Tables referenced in the FROM clause of a definition.
fn definition_tables(sql: &str) -> Result<Vec<String>, String> {
    let stmt = cse_sql::parse_one(sql)?;
    match stmt {
        Statement::Select(s) => Ok(s.from.iter().map(|f| f.table.clone()).collect()),
        _ => Err("view definition must be a SELECT".into()),
    }
}

/// Rewrite a definition's FROM clause, replacing `base` with `delta`.
/// Works at the AST level and re-renders via a minimal SQL printer.
fn rewrite_from(sql: &str, base: &str, delta: &str) -> Result<String, String> {
    let stmt = cse_sql::parse_one(sql)?;
    let mut select = match stmt {
        Statement::Select(s) => s,
        _ => return Err("view definition must be a SELECT".into()),
    };
    let mut replaced = 0;
    for f in &mut select.from {
        if f.table.eq_ignore_ascii_case(base) {
            // Keep column references working: the delta shares the base's
            // schema; alias the delta as the original table name unless an
            // alias already exists.
            if f.alias.is_none() {
                f.alias = Some(f.table.clone());
            }
            f.table = delta.to_string();
            replaced += 1;
        }
    }
    if replaced == 0 {
        return Err(format!("view does not reference {base}"));
    }
    if replaced > 1 {
        return Err("self-joins over the updated table are not supported".into());
    }
    Ok(render_select(&select))
}

/// Minimal SQL renderer (inverse of the parser for the supported subset).
pub fn render_select(s: &cse_sql::SelectStmt) -> String {
    let mut out = String::from("select ");
    let items: Vec<String> = s
        .select
        .iter()
        .map(|i| match i {
            SelectItem::Star => "*".to_string(),
            SelectItem::Expr { expr, alias } => {
                let e = render_expr(expr);
                match alias {
                    Some(a) => format!("{e} as {a}"),
                    None => e,
                }
            }
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str(" from ");
    let from: Vec<String> = s
        .from
        .iter()
        .map(|f| match &f.alias {
            Some(a) if !a.eq_ignore_ascii_case(&f.table) => format!("{} {}", f.table, a),
            Some(a) => format!("{} {}", f.table, a),
            None => f.table.clone(),
        })
        .collect();
    out.push_str(&from.join(", "));
    if let Some(w) = &s.where_clause {
        out.push_str(" where ");
        out.push_str(&render_expr(w));
    }
    if !s.group_by.is_empty() {
        out.push_str(" group by ");
        let g: Vec<String> = s.group_by.iter().map(render_expr).collect();
        out.push_str(&g.join(", "));
    }
    out
}

fn render_expr(e: &Expr) -> String {
    use cse_sql::BinOp;
    match &e.kind {
        ExprKind::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        ExprKind::Int(i) => i.to_string(),
        ExprKind::Float(f) => format!("{f}"),
        ExprKind::Str(s) => format!("'{}'", s.replace('\'', "''")),
        ExprKind::Binary(op, a, b) => {
            let o = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {o} {})", render_expr(a), render_expr(b))
        }
        ExprKind::And(a, b) => format!("({} and {})", render_expr(a), render_expr(b)),
        ExprKind::Or(a, b) => format!("({} or {})", render_expr(a), render_expr(b)),
        ExprKind::Not(a) => format!("(not {})", render_expr(a)),
        ExprKind::IsNull(a, neg) => format!(
            "({} is {}null)",
            render_expr(a),
            if *neg { "not " } else { "" }
        ),
        ExprKind::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "({} {}between {} and {})",
            render_expr(expr),
            if *negated { "not " } else { "" },
            render_expr(lo),
            render_expr(hi)
        ),
        ExprKind::Agg { func, arg } => {
            let f = match func {
                AggName::Sum => "sum",
                AggName::Count => "count",
                AggName::Min => "min",
                AggName::Max => "max",
                AggName::Avg => "avg",
            };
            match arg {
                Some(a) => format!("{f}({})", render_expr(a)),
                None => "count(*)".to_string(),
            }
        }
        ExprKind::Subquery(s) => format!("({})", render_select(s)),
    }
}

/// Infer a storage schema from delivered result columns and rows.
fn infer_schema(columns: &[String], rows: &[Row]) -> cse_storage::Schema {
    use cse_storage::{ColumnDef, DataType};
    let types: Vec<DataType> = (0..columns.len())
        .map(|i| {
            rows.iter()
                .find_map(|r| r[i].data_type())
                .unwrap_or(DataType::Int)
        })
        .collect();
    cse_storage::Schema::new(
        columns
            .iter()
            .zip(types)
            .map(|(n, t)| {
                let mut c = ColumnDef::new(n.clone(), t);
                c.nullable = true;
                c
            })
            .collect(),
    )
}
