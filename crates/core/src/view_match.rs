//! View matching for covering subexpressions (paper §5.1).
//!
//! Candidate CSEs are treated like materialized views: for each potential
//! consumer, produce the substitute expression — a spool read plus a
//! compensation predicate, an optional re-aggregation, and a projection
//! mapping spool columns back onto the consumer's own output columns.
//!
//! CSEs are constructed to cover their consumers, so matching *should*
//! always succeed; every condition is still verified (tables, equivalence
//! subsumption via construction, predicate implication, rollup validity)
//! and `None` is returned on any mismatch rather than trusting the
//! construction.

use crate::compat::PreparedConsumer;
use crate::construct::ConstructedCse;
use crate::required::{required_of, RequiredCols};
use cse_algebra::{implies, AggFunc, ColRef, Scalar};
use cse_memo::Memo;
use cse_optimizer::{CseId, Substitute, SubstituteReAgg};

/// Build the substitute rewriting `member` over the CSE's work table.
#[allow(clippy::too_many_arguments)]
pub fn build_substitute(
    memo: &Memo,
    cse_id: CseId,
    cse: &ConstructedCse,
    member_index: usize,
    required: &RequiredCols,
) -> Option<Substitute> {
    let member: &PreparedConsumer = cse.members.get(member_index)?;
    let simplified = cse.simplified.get(member_index)?;

    // Table set must match (guaranteed by same-signature detection).
    if member.normal.spj.rels != cse.plan.rels().iter().collect::<Vec<_>>() {
        // The CSE plan's rels include exactly the anchor rels.
        let mut cse_rels: Vec<_> = cse.plan.rels().iter().collect();
        cse_rels.sort();
        let mut m_rels = member.normal.spj.rels.clone();
        m_rels.sort();
        if cse_rels != m_rels {
            return None;
        }
    }
    // The member's predicate must imply the covering predicate.
    if !implies(&member.normal.spj.predicate(), &cse.covering) {
        return None;
    }

    // Compensation: the member's simplified conjuncts not already
    // guaranteed by the covering predicate.
    let comp_conjuncts: Vec<Scalar> = simplified
        .conjuncts()
        .into_iter()
        .filter(|c| !implies(&cse.covering, c))
        .collect();
    let filter = if comp_conjuncts.is_empty() {
        None
    } else {
        Some(Scalar::and(comp_conjuncts).normalize())
    };

    match (&member.normal.group, &cse.group) {
        (Some(mg), Some((cse_keys, cse_aggs, cse_out))) => {
            // Grouped consumer over grouped CSE: roll up.
            // Every member key must be a CSE key; every member aggregate
            // must appear among the CSE's aggregates.
            if !mg.keys.iter().all(|k| cse_keys.contains(k)) {
                return None;
            }
            let mut rollups = Vec::with_capacity(mg.aggs.len());
            for a in &mg.aggs {
                let idx = cse_aggs.iter().position(|x| x == a)? as u16;
                let partial = Scalar::Col(ColRef::new(*cse_out, idx));
                let rolled = match a.func {
                    AggFunc::Count | AggFunc::CountStar => cse_algebra::AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(partial),
                    },
                    _ => a.rollup_over(partial),
                };
                rollups.push(rolled);
            }
            // Identity fast path: same keys, no compensation — the spool
            // rows are already the consumer's groups.
            let same_keys =
                mg.keys.len() == cse_keys.len() && mg.keys.iter().all(|k| cse_keys.contains(k));
            let consumer_out_cols = memo.group(member.group).props.output_cols.clone();
            if same_keys && filter.is_none() {
                let output_map = consumer_out_cols
                    .iter()
                    .map(|c| {
                        let expr = if c.rel == mg.out {
                            // Aggregate output: same position in CSE aggs.
                            let a = &mg.aggs[c.col as usize];
                            let idx =
                                cse_aggs.iter().position(|x| x == a).expect("checked above") as u16;
                            Scalar::Col(ColRef::new(*cse_out, idx))
                        } else {
                            Scalar::Col(member.alignment.col(*c))
                        };
                        (*c, expr)
                    })
                    .collect();
                return Some(Substitute {
                    cse: cse_id,
                    consumer: member.group,
                    filter: None,
                    reagg: None,
                    output_map,
                });
            }
            // General path: re-aggregate at the consumer's granularity.
            let anchor_keys: Vec<ColRef> = mg.keys.clone();
            let output_map = consumer_out_cols
                .iter()
                .map(|c| {
                    let expr = if c.rel == mg.out {
                        Scalar::Col(*c) // produced by the re-aggregation
                    } else {
                        Scalar::Col(member.alignment.col(*c))
                    };
                    (*c, expr)
                })
                .collect();
            Some(Substitute {
                cse: cse_id,
                consumer: member.group,
                filter,
                reagg: Some(SubstituteReAgg {
                    keys: anchor_keys,
                    aggs: rollups,
                    out: mg.out,
                }),
                output_map,
            })
        }
        (None, None) => {
            // SPJ over SPJ: filter + column remap.
            let mut need: Vec<ColRef> = required_of(required, member.group).into_iter().collect();
            if need.is_empty() {
                need = memo.group(member.group).props.output_cols.clone();
            }
            // Every needed column must be materialized by the CSE.
            let output_map: Option<Vec<(ColRef, Scalar)>> = need
                .iter()
                .map(|c| {
                    let anchor = member.alignment.col(*c);
                    if cse.output.contains(&anchor) {
                        Some((*c, Scalar::Col(anchor)))
                    } else {
                        None
                    }
                })
                .collect();
            Some(Substitute {
                cse: cse_id,
                consumer: member.group,
                filter,
                reagg: None,
                output_map: output_map?,
            })
        }
        // Mixed shapes can't share a signature.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::{partition_compatible, prepare_consumers};
    use crate::construct::construct;
    use crate::manager::CseManager;
    use crate::required::compute_required;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    /// Two SPJ queries over (ta ⋈ tb) with different filters.
    fn setup() -> (Memo, Vec<cse_memo::GroupId>) {
        let mut ctx = PlanContext::new();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
        ]));
        let mk = |ctx: &mut PlanContext, hi: i64| {
            let b = ctx.new_block();
            let a = ctx.add_base_rel("ta", "ta", schema.clone(), b);
            let t = ctx.add_base_rel("tb", "tb", schema.clone(), b);
            LogicalPlan::get(a)
                .filter(Scalar::cmp(
                    cse_algebra::CmpOp::Lt,
                    Scalar::col(a, 1),
                    Scalar::int(hi),
                ))
                .join(
                    LogicalPlan::get(t),
                    Scalar::eq(Scalar::col(a, 0), Scalar::col(t, 0)),
                )
                .project(vec![
                    ("k".into(), Scalar::col(a, 0)),
                    ("v".into(), Scalar::col(t, 1)),
                ])
        };
        let q1 = mk(&mut ctx, 10);
        let q2 = mk(&mut ctx, 20);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&LogicalPlan::Batch {
            children: vec![q1, q2],
        });
        memo.set_root(root);
        let mgr = CseManager::build(&memo);
        let sets = mgr.sharable_sets();
        assert_eq!(sets.len(), 1);
        (memo, sets.into_iter().next().unwrap().1)
    }

    #[test]
    fn spj_substitute_has_compensation_and_mapping() {
        let (mut memo, consumers) = setup();
        let required = compute_required(&memo, &[memo.root()]);
        let prepared = prepare_consumers(&memo, &consumers);
        let groups = partition_compatible(&memo.ctx, prepared);
        assert_eq!(groups.len(), 1);
        let cse = construct(&mut memo, groups[0].members.clone(), &required).unwrap();
        // The < 20 member's compensation... member 0 is < 10 (covering is
        // the hull < 20, so member 0 keeps its filter, member 1 may not).
        let s0 = build_substitute(&memo, CseId(0), &cse, 0, &required).unwrap();
        let s1 = build_substitute(&memo, CseId(0), &cse, 1, &required).unwrap();
        // Exactly one of them needs no compensation (the wider range).
        assert!(s0.filter.is_some() ^ s1.filter.is_some());
        assert!(!s0.output_map.is_empty());
        assert!(s1.reagg.is_none());
        // Output map targets are the consumer's own columns.
        for (c, _) in &s0.output_map {
            assert!(memo.group(s0.consumer).props.output_cols.contains(c));
        }
    }

    #[test]
    fn substitute_maps_second_consumer_through_alignment() {
        let (mut memo, consumers) = setup();
        let required = compute_required(&memo, &[memo.root()]);
        let prepared = prepare_consumers(&memo, &consumers);
        let anchor_rels = prepared[0].normal.spj.rels.clone();
        let groups = partition_compatible(&memo.ctx, prepared);
        let cse = construct(&mut memo, groups[0].members.clone(), &required).unwrap();
        let s1 = build_substitute(&memo, CseId(0), &cse, 1, &required).unwrap();
        // Every defining expression references anchor rels only.
        for (_, e) in &s1.output_map {
            for c in e.columns() {
                assert!(anchor_rels.contains(&c.rel), "{c} not in anchor space");
            }
        }
    }
}
