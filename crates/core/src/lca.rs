//! Least-common-ancestor computation over the memo DAG (paper §5.2).

use crate::manager::CseManager;
use cse_memo::GroupId;
use std::collections::BTreeSet;

/// The least common ancestor group of `consumers`: the lowest group of
/// which every consumer is a descendant. `None` when the consumers span
/// disconnected trees (e.g. a stacked CSE consumed from several spool
/// definitions) — the optimizer then charges the initial cost at final
/// assembly instead.
pub fn least_common_ancestor(mgr: &CseManager, consumers: &[GroupId]) -> Option<GroupId> {
    let mut iter = consumers.iter();
    let first = iter.next()?;
    let mut common: BTreeSet<GroupId> = mgr.ancestors_of(*first).clone();
    for c in iter {
        let anc = mgr.ancestors_of(*c);
        common = common.intersection(anc).copied().collect();
        if common.is_empty() {
            return None;
        }
    }
    // Lowest: a common ancestor that is not an ancestor of any other
    // common member (other than itself).
    let lowest: Vec<GroupId> = common
        .iter()
        .copied()
        .filter(|&x| {
            !common
                .iter()
                .any(|&y| y != x && mgr.ancestors_of(y).contains(&x))
        })
        .collect();
    lowest.first().copied().or_else(|| common.first().copied())
}

/// Are two candidates competing (Definition 5.2)? Their LCAs lie on one
/// ancestor path. Missing LCAs are conservatively treated as competing.
pub fn competing(mgr: &CseManager, lca_a: Option<GroupId>, lca_b: Option<GroupId>) -> bool {
    match (lca_a, lca_b) {
        (Some(a), Some(b)) => {
            a == b || mgr.ancestors_of(a).contains(&b) || mgr.ancestors_of(b).contains(&a)
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::CseManager;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_memo::Memo;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    /// Batch of two queries, each a two-table join; plus the batch root.
    fn build() -> (Memo, Vec<GroupId>, GroupId) {
        let mut ctx = PlanContext::new();
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let mk = |ctx: &mut PlanContext| {
            let b = ctx.new_block();
            let a = ctx.add_base_rel("ta", "ta", schema.clone(), b);
            let t = ctx.add_base_rel("tb", "tb", schema.clone(), b);
            LogicalPlan::get(a).join(
                LogicalPlan::get(t),
                Scalar::eq(Scalar::col(a, 0), Scalar::col(t, 0)),
            )
        };
        let q1 = mk(&mut ctx);
        let q2 = mk(&mut ctx);
        let mut memo = Memo::new(ctx);
        let g1 = memo.insert_plan(&q1);
        let g2 = memo.insert_plan(&q2);
        let root = memo.insert_plan(&LogicalPlan::Batch {
            children: vec![q1, q2],
        });
        memo.set_root(root);
        (memo, vec![g1, g2], root)
    }

    #[test]
    fn lca_of_cross_query_consumers_is_root() {
        let (memo, consumers, root) = build();
        let mgr = CseManager::build(&memo);
        assert_eq!(least_common_ancestor(&mgr, &consumers), Some(root));
    }

    #[test]
    fn lca_of_single_consumer_is_itself() {
        let (memo, consumers, _) = build();
        let mgr = CseManager::build(&memo);
        assert_eq!(
            least_common_ancestor(&mgr, &consumers[..1]),
            Some(consumers[0])
        );
    }

    #[test]
    fn competing_on_same_path() {
        let (memo, consumers, root) = build();
        let mgr = CseManager::build(&memo);
        // root is an ancestor of consumer 0: competing.
        assert!(competing(&mgr, Some(root), Some(consumers[0])));
        // The two join groups are unrelated: independent.
        assert!(!competing(&mgr, Some(consumers[0]), Some(consumers[1])));
        // Unknown LCA: conservatively competing.
        assert!(competing(&mgr, None, Some(consumers[0])));
    }
}
