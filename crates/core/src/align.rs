//! Consumer alignment: mapping every consumer's table instances onto a
//! common ("anchor") set of instances.
//!
//! Expressions with the same table signature reference the same multiset
//! of base tables, but through per-query [`RelId`]s. The first consumer is
//! the *anchor*; every other consumer's instances are matched positionally
//! after sorting by (table name, rel id). For the self-join-free queries
//! of the paper's experiments this alignment is exact; with self-joins it
//! picks one of the possible correspondences (documented limitation).

use cse_algebra::{ColRef, PlanContext, RelId, Scalar, SpjgNormal};
use std::collections::HashMap;

/// Column/rel mapping from one consumer's space into the anchor space.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// consumer rel -> anchor rel
    rel_map: HashMap<RelId, RelId>,
}

impl Alignment {
    /// Identity alignment (for the anchor itself).
    pub fn identity(rels: &[RelId]) -> Self {
        Alignment {
            rel_map: rels.iter().map(|r| (*r, *r)).collect(),
        }
    }

    /// Align `consumer` rels onto `anchor` rels. Both lists must reference
    /// the same multiset of table names. Returns `None` on mismatch.
    pub fn new(ctx: &PlanContext, anchor: &[RelId], consumer: &[RelId]) -> Option<Alignment> {
        if anchor.len() != consumer.len() {
            return None;
        }
        let sort_key = |r: &RelId| (ctx.rel(*r).name.clone(), *r);
        let mut a: Vec<RelId> = anchor.to_vec();
        let mut c: Vec<RelId> = consumer.to_vec();
        a.sort_by_key(sort_key);
        c.sort_by_key(sort_key);
        let mut rel_map = HashMap::with_capacity(a.len());
        for (ca, cc) in a.iter().zip(c.iter()) {
            if ctx.rel(*ca).name != ctx.rel(*cc).name {
                return None;
            }
            rel_map.insert(*cc, *ca);
        }
        Some(Alignment { rel_map })
    }

    /// Map a consumer column into anchor space (columns of unmapped rels —
    /// e.g. aggregate outputs — pass through unchanged).
    pub fn col(&self, c: ColRef) -> ColRef {
        match self.rel_map.get(&c.rel) {
            Some(anchor_rel) => ColRef::new(*anchor_rel, c.col),
            None => c,
        }
    }

    /// Map a consumer rel into anchor space.
    pub fn rel(&self, r: RelId) -> RelId {
        self.rel_map.get(&r).copied().unwrap_or(r)
    }

    /// Rewrite a scalar into anchor space.
    pub fn scalar(&self, s: &Scalar) -> Scalar {
        s.rewrite_cols(&|c| Scalar::Col(self.col(c))).normalize()
    }

    /// Align a whole normal form into anchor space (the group spec's `out`
    /// rel is left in consumer space deliberately — consumers keep their
    /// own aggregate identities).
    pub fn normal_form(&self, n: &SpjgNormal) -> SpjgNormal {
        let mut rels: Vec<RelId> = n.spj.rels.iter().map(|r| self.rel(*r)).collect();
        rels.sort();
        let mut conjuncts: Vec<Scalar> = n.spj.conjuncts.iter().map(|c| self.scalar(c)).collect();
        conjuncts.sort();
        conjuncts.dedup();
        SpjgNormal {
            spj: cse_algebra::SpjNormal { rels, conjuncts },
            group: n.group.as_ref().map(|g| cse_algebra::GroupSpec {
                keys: g.keys.iter().map(|k| self.col(*k)).collect(),
                aggs: g
                    .aggs
                    .iter()
                    .map(|a| a.rewrite_cols(&|c| Scalar::Col(self.col(c))).normalize())
                    .collect(),
                out: g.out,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn ctx_two_queries() -> (PlanContext, Vec<RelId>, Vec<RelId>) {
        let mut ctx = PlanContext::new();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
        ]));
        let b1 = ctx.new_block();
        let q1 = vec![
            ctx.add_base_rel("cust", "c", schema.clone(), b1),
            ctx.add_base_rel("ord", "o", schema.clone(), b1),
        ];
        let b2 = ctx.new_block();
        // Reversed declaration order in the second query.
        let o2 = ctx.add_base_rel("ord", "o2", schema.clone(), b2);
        let c2 = ctx.add_base_rel("cust", "c2", schema.clone(), b2);
        (ctx, q1, vec![o2, c2])
    }

    #[test]
    fn aligns_by_table_name() {
        let (ctx, q1, q2) = ctx_two_queries();
        let al = Alignment::new(&ctx, &q1, &q2).unwrap();
        // q2's ord instance maps to q1's ord instance.
        assert_eq!(al.rel(q2[0]), q1[1]);
        assert_eq!(al.rel(q2[1]), q1[0]);
        assert_eq!(al.col(ColRef::new(q2[0], 1)), ColRef::new(q1[1], 1));
    }

    #[test]
    fn rejects_different_tables() {
        let (mut ctx, q1, _) = ctx_two_queries();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let other = ctx.add_base_rel("zzz", "z", schema.clone(), b);
        let other2 = ctx.add_base_rel("cust", "c3", schema, b);
        assert!(Alignment::new(&ctx, &q1, &[other, other2]).is_none());
        assert!(Alignment::new(&ctx, &q1, &[other]).is_none());
    }

    #[test]
    fn scalar_rewrite() {
        let (ctx, q1, q2) = ctx_two_queries();
        let al = Alignment::new(&ctx, &q1, &q2).unwrap();
        let s = Scalar::eq(Scalar::col(q2[0], 0), Scalar::col(q2[1], 0));
        let mapped = al.scalar(&s);
        let expect = Scalar::eq(Scalar::col(q1[1], 0), Scalar::col(q1[0], 0)).normalize();
        assert_eq!(mapped, expect);
    }

    #[test]
    fn identity_maps_self() {
        let (_, q1, _) = ctx_two_queries();
        let al = Alignment::identity(&q1);
        assert_eq!(al.rel(q1[0]), q1[0]);
    }
}
