//! The end-to-end optimization pipeline (the paper's Figure 1):
//!
//! 1. lower SQL → logical plan → memo; explore; table signatures are
//!    collected incrementally (Step 1);
//! 2. normal optimization (baseline plan + per-group cost bounds);
//! 3. if the query is expensive enough and the CSE manager finds sharable
//!    signatures: generate candidate CSEs (Step 2) with heuristics H1–H4,
//!    including a second detection round over the candidate definitions
//!    themselves (stacked CSEs, §5.5);
//! 4. resume optimization with candidate sets enabled (Step 3, §5.3) and
//!    return the cheapest plan.

use crate::candidates::{
    cost_candidate, estimate_cse, generate_for_set, h4_prune_contained, CostBounds,
    CostedCandidate, GenConfig,
};
use crate::enumerate::choose_best;
use crate::lca::least_common_ancestor;
use crate::manager::CseManager;
use crate::required::{compute_required, required_of, RequiredCols};
use crate::view_match::build_substitute;
use cse_algebra::{ColRef, LogicalPlan, PlanContext, Scalar};
use cse_cost::{CostModel, StatsCatalog};
use cse_govern::{
    sites, Budget, BudgetClock, BudgetTrip, CancelToken, DegradationEvent, ExecLimits,
    FailpointRegistry, Reason, Rung,
};
use cse_lint::{lint_batch, LintMode};
use cse_memo::{explore, ExploreConfig, GroupId, Memo};
use cse_optimizer::{
    CseCandidate, CseId, FullPlan, IndexInfo, Optimizer, OptimizerConfig, Substitute,
};
use cse_storage::Catalog;
use cse_verify::{CandidateAudit, CostAudit, MemberAudit, Report as VerifyReport};
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct CseConfig {
    /// Master switch: off reproduces the "No CSE" columns of the paper.
    pub enable_cse: bool,
    /// Candidate-generation knobs (heuristics on/off, α, β).
    pub gen: GenConfig,
    pub explore: ExploreConfig,
    pub optimizer: OptimizerConfig,
    pub cost_model: CostModel,
    /// Cap on CSE re-optimizations (§5.3 enumeration).
    pub max_cse_optimizations: u32,
    /// Cheap-query gate: skip the CSE phase below this baseline cost.
    pub min_query_cost: f64,
    /// Detect CSEs over candidate definitions too (§5.5).
    pub stacked: bool,
    /// Run the `cse-verify` invariant passes during optimization and fail
    /// the query on any error-severity diagnostic. Defaults to on in debug
    /// and test builds, off in release (the audits redo whole-memo work).
    pub verify: bool,
    /// Optimization budget (wall-clock deadline, memo and candidate caps).
    /// Tripping it never fails the query: the pipeline walks the
    /// degradation ladder (full CSE → capped CSE → baseline) instead.
    pub budget: Budget,
    /// Force the baseline rung outright (`--no-cse-fallback-only`): the
    /// CSE phase is skipped and an `OPT_FORCED` event is recorded. Unlike
    /// `enable_cse = false`, this *reports* the skip as a degradation.
    pub fallback_only: bool,
    /// Where the degradation ladder starts. The serving layer lowers this
    /// under global memory pressure (Elevated → capped CSE) rather than
    /// letting a full-sharing plan materialize spools the pool cannot
    /// hold; a lowered start is recorded as a `MEM_PRESSURE` degradation.
    pub start_rung: Rung,
    /// Deterministic fault-injection registry, shared with the engine.
    /// Disabled unless armed explicitly or via the `CSE_FAIL` env var.
    pub failpoints: FailpointRegistry,
    /// Per-statement execution limits, enforced by the engine.
    pub exec_limits: ExecLimits,
    /// Cooperative cancellation for the whole request (explicit cancel or
    /// watchdog deadline). Checked at the pipeline's stage boundaries and,
    /// via the budget clock, inside the candidate-generation and
    /// enumeration hot loops. Unlike a budget trip, a cancellation *fails*
    /// the optimization — a canceled request must stop, not degrade.
    pub cancel: CancelToken,
    /// qlint mode (`--lint[=deny]`): run the static analyzer over the SQL
    /// batch before optimization, report its diagnostics in
    /// [`CseReport::lint`], and feed proven facts forward (redundant
    /// conjuncts into covering construction, unsatisfiable statements
    /// into a constant-FALSE short circuit). `Deny` additionally fails
    /// the batch on any warning-or-worse diagnostic.
    pub lint: LintMode,
}

impl Default for CseConfig {
    fn default() -> Self {
        CseConfig {
            enable_cse: true,
            gen: GenConfig::default(),
            explore: ExploreConfig::default(),
            optimizer: OptimizerConfig::default(),
            cost_model: CostModel::default(),
            max_cse_optimizations: 64,
            min_query_cost: 0.0,
            stacked: true,
            verify: cfg!(debug_assertions),
            budget: Budget::unlimited(),
            fallback_only: false,
            start_rung: Rung::FullCse,
            failpoints: FailpointRegistry::from_env(),
            exec_limits: ExecLimits::none(),
            cancel: CancelToken::never(),
            lint: LintMode::Off,
        }
    }
}

impl CseConfig {
    /// The paper's "No CSE" configuration.
    pub fn no_cse() -> Self {
        CseConfig {
            enable_cse: false,
            ..Default::default()
        }
    }

    /// The paper's "Using CSEs (no heuristics)" configuration.
    pub fn no_heuristics() -> Self {
        CseConfig {
            gen: GenConfig {
                heuristics: false,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Diagnostic summary of one candidate.
#[derive(Debug, Clone)]
pub struct CandidateSummary {
    pub id: CseId,
    pub tables: Vec<String>,
    pub grouped: bool,
    pub consumers: usize,
    pub est_rows: f64,
    pub est_width: f64,
}

/// What happened during optimization — the numbers the paper's tables
/// report.
#[derive(Debug, Clone, Default)]
pub struct CseReport {
    /// Signatures shared by ≥2 expressions (detection output).
    pub sharable_signatures: usize,
    /// Candidates given to the optimizer (paper: "# of CSEs").
    pub candidates: Vec<CandidateSummary>,
    /// CSE re-optimizations performed (paper: bracketed count).
    pub cse_optimizations: u32,
    /// Estimated cost of the plan without CSEs.
    pub baseline_cost: f64,
    /// Estimated cost of the final plan.
    pub final_cost: f64,
    /// Spools actually used in the final plan.
    pub spools_used: usize,
    /// Wall-clock of the normal optimization phases.
    pub baseline_time: Duration,
    /// Wall-clock of the whole optimization including the CSE phase.
    pub total_time: Duration,
    /// Diagnostics of the `cse-verify` passes (present iff
    /// [`CseConfig::verify`] was set; clean when the query succeeded).
    pub verification: Option<VerifyReport>,
    /// The degradation-ladder rung the plan was produced on.
    pub rung: Rung,
    /// Every downgrade recorded on the way (empty in the common case).
    pub degradations: Vec<DegradationEvent>,
    /// qlint diagnostics (present iff [`CseConfig::lint`] was enabled and
    /// the batch came in as SQL text).
    pub lint: Option<cse_lint::Report>,
}

/// Optimization output: executable plan, context for the executor, report.
pub struct Optimized {
    pub plan: FullPlan,
    pub ctx: PlanContext,
    pub report: CseReport,
}

/// Optimize a SQL batch end to end.
///
/// When [`CseConfig::lint`] is enabled, the qlint analyzer runs over the
/// batch first: `Deny` mode rejects the batch on any warning-or-worse
/// diagnostic; otherwise diagnostics land in [`CseReport::lint`] and
/// proven facts feed the optimization (statements with provably
/// unsatisfiable WHERE clauses are short-circuited with a constant-FALSE
/// filter, redundant conjuncts inform covering-predicate construction).
pub fn optimize_sql(catalog: &Catalog, sql: &str, cfg: &CseConfig) -> Result<Optimized, String> {
    let (ctx, mut plan) = cse_sql::lower_batch_sql(catalog, sql)?;
    let mut lint = None;
    let mut facts = cse_memo::ProvenFacts::default();
    if cfg.lint.enabled() {
        let outcome = lint_batch(catalog, sql);
        if outcome.denies(cfg.lint) {
            return Err(format!(
                "lint denied the batch ({} error(s), {} warning(s)):\n{}",
                outcome.report.error_count(),
                outcome.report.warning_count(),
                outcome.report.render_as("lint")
            ));
        }
        if !outcome.facts.unsat_statements.is_empty() {
            // `lower_batch_sql` succeeded, so every statement parsed and
            // lowered: lint's source-order indices equal batch children.
            plan = short_circuit_unsat(plan, &outcome.facts.unsat_statements);
        }
        facts.redundant_conjuncts = outcome.facts.redundant.clone();
        lint = Some(outcome.report);
    }
    let mut optimized = optimize_plan_with_facts(catalog, ctx, plan, cfg, facts)?;
    optimized.report.lint = lint;
    Ok(optimized)
}

/// Insert a constant-FALSE filter into each statement listed in `unsat`.
///
/// The filter lands *below* the statement's root aggregate (above the
/// SPJ core), which preserves semantics exactly: a grouped aggregate
/// over an empty input produces zero groups, and a scalar aggregate
/// still produces its single NULL/zero row — the same rows the
/// contradictory WHERE clause would have produced the expensive way.
/// Statements without a root aggregate get the filter directly on their
/// SPJ core, below the `Project`/`Sort` wrappers.
fn short_circuit_unsat(
    plan: LogicalPlan,
    unsat: &std::collections::BTreeSet<usize>,
) -> LogicalPlan {
    fn spine_has_aggregate(p: &LogicalPlan) -> bool {
        match p {
            LogicalPlan::Aggregate { .. } => true,
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Filter { input, .. } => spine_has_aggregate(input),
            // HAVING subqueries cross-join above the aggregate; the spine
            // continues down the left side.
            LogicalPlan::Join { left, .. } => spine_has_aggregate(left),
            _ => false,
        }
    }
    fn insert_false(p: LogicalPlan) -> LogicalPlan {
        match p {
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(insert_false(*input)),
                exprs,
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(insert_false(*input)),
                keys,
            },
            LogicalPlan::Filter { input, pred } if spine_has_aggregate(&input) => {
                LogicalPlan::Filter {
                    input: Box::new(insert_false(*input)),
                    pred,
                }
            }
            LogicalPlan::Join { left, right, pred } if spine_has_aggregate(&left) => {
                LogicalPlan::Join {
                    left: Box::new(insert_false(*left)),
                    right,
                    pred,
                }
            }
            LogicalPlan::Aggregate {
                input,
                keys,
                aggs,
                out,
            } => LogicalPlan::Aggregate {
                input: Box::new(LogicalPlan::Filter {
                    input,
                    pred: Scalar::false_(),
                }),
                keys,
                aggs,
                out,
            },
            other => LogicalPlan::Filter {
                input: Box::new(other),
                pred: Scalar::false_(),
            },
        }
    }
    match plan {
        LogicalPlan::Batch { children } => LogicalPlan::Batch {
            children: children
                .into_iter()
                .enumerate()
                .map(|(i, c)| {
                    if unsat.contains(&i) {
                        insert_false(c)
                    } else {
                        c
                    }
                })
                .collect(),
        },
        single if unsat.contains(&0) => insert_false(single),
        single => single,
    }
}

/// Optimize an already-lowered logical plan.
pub fn optimize_plan(
    catalog: &Catalog,
    ctx: PlanContext,
    plan: LogicalPlan,
    cfg: &CseConfig,
) -> Result<Optimized, String> {
    optimize_plan_with_facts(catalog, ctx, plan, cfg, cse_memo::ProvenFacts::default())
}

/// [`optimize_plan`] with analyzer-proven facts threaded into the memo
/// (see `cse_memo::ProvenFacts` for the soundness contract).
pub fn optimize_plan_with_facts(
    catalog: &Catalog,
    ctx: PlanContext,
    plan: LogicalPlan,
    cfg: &CseConfig,
    facts: cse_memo::ProvenFacts,
) -> Result<Optimized, String> {
    let trace = std::env::var("CSE_TRACE").is_ok();
    macro_rules! stage {
        ($name:expr, $t:expr) => {
            if trace {
                eprintln!("[cse-trace] {}: {:?}", $name, $t.elapsed());
            }
        };
    }
    let t_start = Instant::now();
    cfg.cancel.check("pipeline/entry").map_err(abort_message)?;
    let mut memo = Memo::new(ctx);
    memo.facts = facts;
    let root = memo.insert_plan(&plan);
    memo.set_root(root);
    explore(&mut memo, &cfg.explore);
    stage!("insert+explore", t_start);
    cfg.cancel
        .check("pipeline/explored")
        .map_err(abort_message)?;

    // Pass 1+2 of the verifier: provenance + signature audit over the
    // explored query memo.
    let mut vreport = VerifyReport::new();
    if cfg.verify {
        vreport.merge(cse_verify::verify_memo(&memo, &[root]));
    }

    let stats = StatsCatalog::from_catalog(catalog);
    let indexes = IndexInfo::from_catalog(catalog);

    // Normal optimization phases: baseline plan + cost bounds.
    let baseline = {
        let mut opt = Optimizer::new(
            &memo,
            &stats,
            cfg.cost_model.clone(),
            cfg.optimizer.clone(),
            indexes.clone(),
        );
        opt.optimize_full(root, 0)
    };
    let baseline_time = t_start.elapsed();
    stage!("baseline", t_start);
    cfg.cancel
        .check("pipeline/baseline")
        .map_err(abort_message)?;
    let mut report = CseReport {
        baseline_cost: baseline.cost,
        final_cost: baseline.cost,
        baseline_time,
        total_time: baseline_time,
        ..Default::default()
    };

    if !cfg.enable_cse || baseline.cost < cfg.min_query_cost {
        return finish(
            baseline,
            memo.ctx.clone(),
            report,
            cfg.verify,
            vreport,
            None,
        );
    }
    if cfg.fallback_only {
        report.rung = Rung::Baseline;
        report.degradations.push(DegradationEvent::opt(
            Reason::OptForced,
            "pipeline",
            Rung::FullCse,
            Rung::Baseline,
            "baseline rung forced by configuration",
        ));
        report.total_time = t_start.elapsed();
        return finish(
            baseline,
            memo.ctx.clone(),
            report,
            cfg.verify,
            vreport,
            None,
        );
    }

    // The degradation ladder: run the full CSE phase; if the budget trips,
    // retry with tightened heuristics and hard caps; if that trips too (or
    // the phase panics), fall back to the baseline plan. Each rung gets its
    // own clone of the explored memo so a tripped or panicked attempt can
    // never leak partial mutations into the next one, and the whole phase
    // runs under `catch_unwind` so an optimizer bug degrades the plan
    // instead of aborting the process.
    //
    // Unwind-safety audit (re-asserted when `CancelToken` landed): the
    // closure borrows only state that is either consumed by the attempt
    // (the memo clone), read-only (`stats`, `indexes`, `baseline`), or
    // write-once-atomic (the token's cancel flag; the failpoint registry's
    // mutex recovers poisoning via `into_inner`). No partially-mutated
    // structure outlives a panicking attempt, so `AssertUnwindSafe` holds.
    let mut rung = cfg.start_rung;
    if rung != Rung::FullCse {
        report.degradations.push(DegradationEvent::opt(
            Reason::MemPressure,
            "admission",
            Rung::FullCse,
            rung,
            "memory pressure capped the starting rung",
        ));
    }
    let mut phase: Option<PhaseOutput> = None;
    while rung != Rung::Baseline {
        let (eff, caps) = tighten(cfg, rung);
        let clock = eff.budget.start_with(&cfg.cancel);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            cse_phase(
                memo.clone(),
                &stats,
                &indexes,
                &eff,
                &caps,
                &clock,
                &baseline,
                root,
            )
        }));
        match attempt {
            Ok(Ok(out)) => {
                phase = Some(out);
                break;
            }
            Ok(Err(trip)) if trip.reason.is_cancellation() => {
                // Cancellation aborts the request outright: descending the
                // ladder would keep burning a canceled caller's wall-clock.
                return Err(abort_message(trip));
            }
            Ok(Err(trip)) => {
                let next = rung.next_down().unwrap_or(Rung::Baseline);
                report.degradations.push(trip.event(rung, next));
                rung = next;
            }
            Err(payload) => {
                // A panic is a bug, not a resource shortage: go straight to
                // the floor instead of retrying a broken phase.
                report.degradations.push(DegradationEvent::opt(
                    Reason::OptPanic,
                    "cse-phase",
                    rung,
                    Rung::Baseline,
                    panic_message(payload.as_ref()),
                ));
                rung = Rung::Baseline;
            }
        }
    }
    report.rung = rung;

    let (mut final_plan, cost_audit) = match phase {
        Some(out) => {
            report.sharable_signatures = out.sharable_signatures;
            report.candidates = out.candidates;
            report.cse_optimizations = out.cse_optimizations;
            vreport.merge(out.vreport);
            (out.plan, out.cost_audit)
        }
        None => (baseline.clone(), None),
    };
    if !final_plan.spools.is_empty() {
        // Retain the no-CSE plan alongside the shared one: the engine
        // retries against it per statement when a spool faults or an
        // execution budget trips.
        final_plan.baseline = Some(Box::new(baseline.root.clone()));
    }
    report.final_cost = final_plan.cost;
    report.spools_used = final_plan.spools.len();
    report.total_time = t_start.elapsed();

    finish(
        final_plan,
        memo.ctx.clone(),
        report,
        cfg.verify,
        vreport,
        cost_audit,
    )
}

/// Output of one successful CSE-phase attempt (one ladder rung).
struct PhaseOutput {
    plan: FullPlan,
    sharable_signatures: usize,
    candidates: Vec<CandidateSummary>,
    cse_optimizations: u32,
    /// Verifier diagnostics accumulated during this attempt.
    vreport: VerifyReport,
    /// Pass-5 costing audit input (populated only under `verify`).
    cost_audit: Option<CostAudit>,
}

/// Per-rung candidate caps derived by [`tighten`].
struct RungCaps {
    /// Representational cap on registered candidates (the optimizer's CSE
    /// mask is 64 bits wide; the full rung keeps the historical 60).
    keep: usize,
    /// Whether exceeding `budget.max_candidates` trips the rung (full rung)
    /// or silently truncates the candidate list (capped rung).
    trip_on_overflow: bool,
}

/// Derive the effective configuration and caps for one ladder rung. The
/// capped rung tightens every knob that bounds work: doubled α (fewer sets
/// pass H1), halved β (more containment pruning), no stacked round, a
/// short enumeration, a quartered exploration budget and a hard candidate
/// cap of 8.
fn tighten(cfg: &CseConfig, rung: Rung) -> (CseConfig, RungCaps) {
    match rung {
        Rung::FullCse => (
            cfg.clone(),
            RungCaps {
                keep: 60,
                trip_on_overflow: true,
            },
        ),
        Rung::CappedCse => {
            let mut c = cfg.clone();
            c.gen.alpha = (cfg.gen.alpha * 2.0).max(0.2);
            c.gen.beta = cfg.gen.beta / 2.0;
            c.stacked = false;
            c.max_cse_optimizations = cfg.max_cse_optimizations.min(8);
            c.explore.max_gexprs = cfg.explore.max_gexprs / 4;
            (
                c,
                RungCaps {
                    keep: 8,
                    trip_on_overflow: false,
                },
            )
        }
        Rung::Baseline => unreachable!("the baseline rung never runs the CSE phase"),
    }
}

/// Error text for a cancellation abort. The stable reason code leads so
/// callers (and humans) can distinguish `REQ_CANCELED` / `REQ_DEADLINE`
/// aborts from genuine planning failures.
fn abort_message(trip: BudgetTrip) -> String {
    format!(
        "[{}] optimization aborted at {}: {}",
        trip.reason.code(),
        trip.stage,
        trip.detail
    )
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt at the CSE phase (Steps 2 + 3) on a private memo clone,
/// under a started budget clock. Returns the chosen plan (never worse than
/// the baseline) or the budget trip that aborted the attempt.
#[allow(clippy::too_many_arguments)]
fn cse_phase(
    mut memo: Memo,
    stats: &StatsCatalog,
    indexes: &IndexInfo,
    cfg: &CseConfig,
    caps: &RungCaps,
    clock: &BudgetClock,
    baseline: &FullPlan,
    root: GroupId,
) -> Result<PhaseOutput, BudgetTrip> {
    let trace = std::env::var("CSE_TRACE").is_ok();
    macro_rules! stage {
        ($name:expr, $t:expr) => {
            if trace {
                eprintln!("[cse-trace] {}: {:?}", $name, $t.elapsed());
            }
        };
    }
    clock.check_time("cse-phase")?;
    if cfg.failpoints.should_fail(sites::OPT_CSE_PHASE) {
        // The optimizer-side failpoint panics on purpose: it exercises the
        // `catch_unwind` isolation of the ladder, not the trip path.
        panic!("injected failpoint: {}", sites::OPT_CSE_PHASE);
    }
    clock.check_memo(memo.num_gexprs(), "cse-phase")?;

    let mut vreport = VerifyReport::new();
    let mut out = PhaseOutput {
        plan: baseline.clone(),
        sharable_signatures: 0,
        candidates: Vec::new(),
        cse_optimizations: 0,
        vreport: VerifyReport::new(),
        cost_audit: None,
    };

    // Step 2: detection + candidate generation (phase A).
    let t_gen = Instant::now();
    let (candidates, bounds) = run_generation(
        &mut memo,
        stats,
        indexes,
        cfg,
        root,
        &BTreeSet::new(),
        clock,
    )?;
    stage!("generation", t_gen);
    if caps.trip_on_overflow {
        clock.check_candidates(candidates.len(), "generation")?;
    }

    // Pass 5 setup: snapshot the claimed per-group bounds and recompute the
    // winners on the *same* memo state (later exploration may legitimately
    // find cheaper plans, which would make a fresh winner undercut a bound
    // that was correct when recorded).
    let mut cost_audit = CostAudit::default();
    if cfg.verify {
        cost_audit.bounds = bounds.iter().collect();
        let mut opt = Optimizer::new(
            &memo,
            stats,
            cfg.cost_model.clone(),
            cfg.optimizer.clone(),
            indexes.clone(),
        );
        cost_audit.winners = cost_audit
            .bounds
            .iter()
            .map(|&(g, _)| (g, opt.optimize_group(g, 0).cost))
            .collect();
    }

    {
        let mgr = CseManager::build(&memo);
        out.sharable_signatures = mgr.sharable_sets().len();
    }
    if candidates.is_empty() {
        out.vreport = vreport;
        out.cost_audit = Some(cost_audit);
        return Ok(out);
    }

    // Register definitions in the memo for costing.
    let mut registered: Vec<(CostedCandidate, GroupId)> = Vec::new();
    for c in candidates {
        let def_root = memo.insert_plan(&c.cse.plan);
        registered.push((c, def_root));
    }
    explore(&mut memo, &cfg.explore);
    stage!("def-insert+explore", t_gen);
    clock.check_time("def-explore")?;
    clock.check_memo(memo.num_gexprs(), "def-explore")?;

    // Stacked round (§5.5): candidate definitions are themselves query
    // expressions — a narrower candidate may pick up additional consumers
    // *inside* a wider candidate's definition (e.g. the paper's Table 2,
    // where the pre-aggregated orders⋈lineitem CSE also feeds the
    // customer⋈orders⋈lineitem CSE's definition). The candidate set is
    // fixed at this point; only consumer sets are extended.
    if cfg.stacked {
        let def_roots: BTreeSet<GroupId> = registered.iter().map(|(_, d)| *d).collect();
        let t_ext = Instant::now();
        extend_with_stacked_consumers(&memo, &mut registered, &def_roots);
        stage!("stacked-extension", t_ext);
        clock.check_time("stacked-extension")?;
    }

    // Too many candidates cannot be represented in the optimizer's mask;
    // keep the most promising (widest consumer sets, then smallest size) —
    // in practice only the no-heuristics configuration comes close. The
    // capped rung additionally truncates to its hard cap (and any tighter
    // budget cap) instead of tripping.
    registered.sort_by(|(a, _), (b, _)| {
        b.cse
            .members
            .len()
            .cmp(&a.cse.members.len())
            .then(a.est_rows.total_cmp(&b.est_rows))
    });
    let keep = caps.keep.min(clock.max_candidates.unwrap_or(usize::MAX));
    registered.truncate(keep);

    let t_mgr = Instant::now();
    let mgr = CseManager::build(&memo);
    stage!("manager-rebuild", t_mgr);
    let mut roots = vec![root];
    roots.extend(registered.iter().map(|(_, d)| *d));
    let required = compute_required(&memo, &roots);

    // Pass 1+2 again over the grown memo: candidate definitions (and the
    // exploration they triggered) must preserve the same invariants.
    if cfg.verify {
        vreport.merge(cse_verify::verify_memo(&memo, &roots));
    }

    let mut cse_candidates: Vec<CseCandidate> = Vec::new();
    let mut substitutes: Vec<Substitute> = Vec::new();
    let mut lca_list: Vec<(CseId, Option<GroupId>)> = Vec::new();
    let mut audits: Vec<CandidateAudit> = Vec::new();
    for (i, (c, def_root)) in registered.iter().enumerate() {
        let id = CseId(i as u32);
        let consumers: Vec<GroupId> = c.cse.members.iter().map(|m| m.group).collect();
        let lca = least_common_ancestor(&mgr, &consumers);
        let mut member_matched = vec![false; c.cse.members.len()];
        for (mi, _) in c.cse.members.iter().enumerate() {
            if let Some(s) = build_substitute(&memo, id, &c.cse, mi, &required) {
                substitutes.push(s);
                member_matched[mi] = true;
            }
        }
        let matched = member_matched.iter().filter(|&&m| m).count();
        if cfg.verify {
            audits.push(candidate_audit(id.0, c, &member_matched, &required));
        }
        if matched < 2 {
            // Not enough matchable consumers: candidate is useless.
            substitutes.retain(|s| s.cse != id);
            continue;
        }
        out.candidates.push(CandidateSummary {
            id,
            tables: c.signature.tables.clone(),
            grouped: c.signature.grouped,
            consumers: consumers.len(),
            est_rows: c.est_rows,
            est_width: c.est_width,
        });
        lca_list.push((id, lca));
        cse_candidates.push(CseCandidate {
            id,
            def_root: *def_root,
            def_plan: c.cse.plan.clone(),
            output: c.cse.output.clone(),
            est_rows: c.est_rows,
            est_width: c.est_width,
            consumers,
            lca,
        });
    }

    // Passes 3+4 (+ candidate-level costing sanity) over every constructed
    // candidate, matched or not.
    if cfg.verify {
        vreport.merge(cse_verify::verify_candidates(&audits));
    }

    if cse_candidates.is_empty() {
        out.candidates.clear();
        out.vreport = vreport;
        out.cost_audit = Some(cost_audit);
        return Ok(out);
    }

    // Step 3: resume optimization with candidates enabled.
    let mut opt = Optimizer::new(
        &memo,
        stats,
        cfg.cost_model.clone(),
        cfg.optimizer.clone(),
        indexes.clone(),
    );
    opt.register_candidates(cse_candidates, substitutes);
    let t_enum = Instant::now();
    let outcome = choose_best(
        &mut opt,
        &mgr,
        root,
        &lca_list,
        cfg.max_cse_optimizations,
        clock,
    )?;
    stage!("enumeration", t_enum);
    out.cse_optimizations = outcome.optimizations;

    out.plan = if outcome.plan.cost < baseline.cost {
        outcome.plan
    } else {
        baseline.clone()
    };
    out.vreport = vreport;
    out.cost_audit = Some(cost_audit);
    Ok(out)
}

/// Terminate `optimize_plan`: run the end-to-end costing audit (pass 5),
/// attach the verification report, and fail the query when any
/// error-severity diagnostic fired.
fn finish(
    plan: FullPlan,
    ctx: PlanContext,
    mut report: CseReport,
    verify: bool,
    mut vreport: VerifyReport,
    cost_audit: Option<CostAudit>,
) -> Result<Optimized, String> {
    if verify {
        if let Some(mut audit) = cost_audit {
            audit.baseline_cost = report.baseline_cost;
            audit.final_cost = report.final_cost;
            vreport.merge(cse_verify::verify_costs(&audit));
        }
        if report.rung == Rung::Baseline {
            // Pass 6: a plan produced under a tripped (or forced) budget
            // must be a genuine baseline plan — no covering operators.
            vreport.merge(cse_verify::verify_downgrade(&plan));
        }
        if vreport.error_count() > 0 {
            return Err(format!(
                "plan verification failed ({} error(s)):\n{}",
                vreport.error_count(),
                vreport.render()
            ));
        }
        report.verification = Some(vreport);
    }
    Ok(Optimized { plan, ctx, report })
}

/// Adapt one costed candidate (plus the per-member view-matching outcome)
/// into the self-contained audit record `cse-verify` consumes.
fn candidate_audit(
    id: u32,
    c: &CostedCandidate,
    member_matched: &[bool],
    required: &RequiredCols,
) -> CandidateAudit {
    let rel_set = c.cse.members[0].normal.spj.rel_set();
    let (keys, aggs) = match &c.cse.group {
        Some((k, a, _)) => (Some(k.clone()), Some(a.clone())),
        None => (None, None),
    };
    let members = c
        .cse
        .members
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            // Required columns of the member's ancestors, mapped into
            // anchor space and restricted to the CSE's base rels (a grouped
            // member's synthetic agg-output columns are not served by the
            // work table directly).
            let req: BTreeSet<ColRef> = required_of(required, m.group)
                .into_iter()
                .map(|col| m.alignment.col(col))
                .filter(|col| rel_set.contains(col.rel))
                .collect();
            let (mkeys, maggs) = match &m.normal.group {
                Some(g) => (g.keys.clone(), g.aggs.clone()),
                None => (Vec::new(), Vec::new()),
            };
            MemberAudit {
                group: m.group,
                classes: m.classes.clone(),
                simplified: c.cse.simplified[mi].clone(),
                keys: mkeys,
                aggs: maggs,
                required: req,
                matched: member_matched[mi],
            }
        })
        .collect();
    CandidateAudit {
        id,
        rel_set,
        output: c.cse.output.clone(),
        covering: c.cse.covering.clone(),
        join_conjuncts: c.cse.join_conjuncts.clone(),
        keys,
        aggs,
        est_rows: c.est_rows,
        est_width: c.est_width,
        cw: c.cw,
        cr: c.cr,
        ce_lower: c.ce_lower,
        members,
    }
}

/// Add def-internal consumers to existing candidates (§5.5). A group
/// inside a definition qualifies when it has the candidate's signature,
/// aligns onto the anchor rels, *requires* every covering join (its
/// equivalence classes entail the candidate's join conjuncts), its
/// predicate implies the covering predicate, and — for grouped candidates
/// — its keys and aggregates are subsumed by the candidate's.
fn extend_with_stacked_consumers(
    memo: &Memo,
    registered: &mut [(CostedCandidate, GroupId)],
    def_roots: &BTreeSet<GroupId>,
) {
    let mgr = CseManager::build(memo);
    let mut def_internal: BTreeSet<GroupId> = BTreeSet::new();
    for &d in def_roots {
        def_internal.extend(memo.descendants(d));
    }
    for d in def_roots {
        def_internal.remove(d);
    }
    for (cand, own_def) in registered.iter_mut() {
        let own_tree: BTreeSet<GroupId> = memo.descendants(*own_def).into_iter().collect();
        let groups: Vec<GroupId> = mgr.groups_of(&cand.signature).to_vec();
        for g in groups {
            if !def_internal.contains(&g)
                || own_tree.contains(&g)
                || cand.cse.members.iter().any(|m| m.group == g)
            {
                continue;
            }
            let tree = memo.extract_first_tree(g);
            let normal = match cse_algebra::SpjgNormal::from_plan(&tree) {
                Some(n) => n,
                None => continue,
            };
            let anchor = &cand.cse.members[0].normal.spj.rels;
            let alignment = match crate::align::Alignment::new(&memo.ctx, anchor, &normal.spj.rels)
            {
                Some(a) => a,
                None => continue,
            };
            let aligned = alignment.normal_form(&normal);
            let classes = aligned.spj.equiv_classes();
            let ec = cse_algebra::EquivClasses::from_conjuncts(&aligned.spj.conjuncts);
            // The consumer must enforce every join the spool applied.
            let joins_ok = cand.cse.join_conjuncts.iter().all(|j| {
                j.as_col_eq_col()
                    .map(|(a, b)| ec.are_equal(a, b))
                    .unwrap_or(false)
            });
            if !joins_ok {
                continue;
            }
            if !cse_algebra::implies(&aligned.spj.predicate(), &cand.cse.covering) {
                continue;
            }
            if let Some((keys, aggs, _)) = &cand.cse.group {
                let mg = match &aligned.group {
                    Some(mg) => mg,
                    None => continue,
                };
                if !mg.keys.iter().all(|k| keys.contains(k))
                    || !mg.aggs.iter().all(|a| aggs.contains(a))
                {
                    continue;
                }
            } else if aligned.group.is_some() {
                continue;
            }
            // Simplified predicate: conjuncts beyond the covering joins.
            let implied_by_join = |c: &cse_algebra::Scalar| -> bool {
                c.as_col_eq_col()
                    .map(|(a, b)| {
                        let jec =
                            cse_algebra::EquivClasses::from_conjuncts(&cand.cse.join_conjuncts);
                        jec.are_equal(a, b)
                    })
                    .unwrap_or(false)
            };
            let simplified = cse_algebra::Scalar::and(
                aligned
                    .spj
                    .conjuncts
                    .iter()
                    .filter(|c| !implied_by_join(c))
                    .cloned(),
            )
            .normalize();
            cand.cse.members.push(crate::compat::PreparedConsumer {
                group: g,
                normal: aligned,
                classes,
                alignment,
            });
            cand.cse.simplified.push(simplified);
        }
    }
}

/// One round of detection + candidate generation over the current memo.
/// Also returns the per-group cost bounds the candidates were generated
/// against, so the costing audit (pass 5) can diff them against freshly
/// recomputed winners.
#[allow(clippy::too_many_arguments)]
fn run_generation(
    memo: &mut Memo,
    stats: &StatsCatalog,
    indexes: &IndexInfo,
    cfg: &CseConfig,
    root: GroupId,
    exclude_consumers: &BTreeSet<GroupId>,
    clock: &BudgetClock,
) -> Result<(Vec<CostedCandidate>, CostBounds), BudgetTrip> {
    // Cost bounds for every group (normal-phase history, §5.4/§4.3).
    let bounds = {
        let mut opt = Optimizer::new(
            memo,
            stats,
            cfg.cost_model.clone(),
            cfg.optimizer.clone(),
            indexes.clone(),
        );
        let mut costs: HashMap<GroupId, f64> = HashMap::new();
        let ids: Vec<GroupId> = memo.groups().map(|g| g.id).collect();
        for g in ids {
            costs.insert(g, opt.optimize_group(g, 0).cost);
        }
        CostBounds::new(costs)
    };
    let query_cost = bounds.lower(root);
    let mgr = CseManager::build(memo);
    let sets: Vec<_> = mgr
        .sharable_sets()
        .into_iter()
        .map(|(sig, consumers)| {
            (
                sig,
                consumers
                    .into_iter()
                    .filter(|g| !exclude_consumers.contains(g))
                    .collect::<Vec<_>>(),
            )
        })
        .filter(|(_, consumers)| consumers.len() >= 2)
        .collect();
    let mut roots = vec![root];
    roots.extend(exclude_consumers.iter().copied());
    let required: RequiredCols = compute_required(memo, &roots);
    let trace = std::env::var("CSE_TRACE").is_ok();
    let mut all: Vec<CostedCandidate> = Vec::new();
    for (sig, consumers) in sets {
        clock.check_time("generation")?;
        let t = std::time::Instant::now();
        let before = all.len();
        all.extend(generate_for_set(
            memo,
            stats,
            &cfg.cost_model,
            &bounds,
            &required,
            &sig,
            &consumers,
            query_cost,
            &cfg.gen,
            clock,
        )?);
        if trace && t.elapsed().as_millis() > 50 {
            eprintln!(
                "[cse-trace]   set {} consumers={} -> +{} candidates in {:?}",
                sig,
                0,
                all.len() - before,
                t.elapsed()
            );
        }
    }
    if cfg.gen.heuristics {
        all = h4_prune_contained(&mgr, all, cfg.gen.beta);
    }
    Ok((all, bounds))
}

/// Convenience: recost a constructed CSE after memo changes (used by
/// maintenance and tests).
pub fn recost(
    memo: &Memo,
    stats: &StatsCatalog,
    model: &CostModel,
    bounds: &CostBounds,
    c: crate::construct::ConstructedCse,
    signature: cse_memo::TableSignature,
) -> CostedCandidate {
    let _ = estimate_cse(memo, stats, &c);
    cost_candidate(memo, stats, model, bounds, signature, c)
}
