//! Covering-subexpression construction (paper §4.2, the six steps).
//!
//! Given a set of aligned, join-compatible consumers:
//! 1. intersect equivalence classes → N-ary equijoin predicate;
//! 2. simplify each consumer's predicate by deleting conjuncts already in
//!    the join predicate;
//! 3. OR the simplified predicates into a covering predicate (with
//!    factoring of common conjuncts and single-column range hulls, which is
//!    how the paper's E5 ends up with `o_orderdate < '1996-07-01' AND
//!    0 < c_nationkey < 25`);
//! 4. union group-by keys (+ covering-predicate columns) and aggregation
//!    expressions when aggregation is required;
//! 5. project exactly the columns consumers require;
//! 6. (the spool operator is implicit: the optimizer charges C_W/C_R and
//!    the executor materializes the work table).

use crate::compat::PreparedConsumer;
use crate::required::RequiredCols;
use cse_algebra::{
    classes_to_conjuncts, implies, intersect_all, AggExpr, CmpOp, ColRef, LogicalPlan, RelId,
    RelSet, Scalar,
};
use cse_memo::Memo;
use std::collections::BTreeSet;

/// A constructed covering subexpression (pre-costing).
#[derive(Debug, Clone)]
pub struct ConstructedCse {
    /// The consumers covered, in anchor space.
    pub members: Vec<PreparedConsumer>,
    /// SPJG definition plan (anchor space), without the spool.
    pub plan: LogicalPlan,
    /// Work-table column layout.
    pub output: Vec<ColRef>,
    /// Covering selection predicate (TRUE when consumers' predicates
    /// union to everything).
    pub covering: Scalar,
    /// Equijoin conjuncts from the intersected classes.
    pub join_conjuncts: Vec<Scalar>,
    /// Per-member simplified predicate (step 2), parallel to `members`.
    pub simplified: Vec<Scalar>,
    /// Group-by of the CSE, if aggregation is required.
    pub group: Option<(Vec<ColRef>, Vec<AggExpr>, RelId)>,
}

/// Build the CSE covering `members` (≥1). Returns `None` when members mix
/// grouped/ungrouped shapes (cannot happen for same-signature sets) or no
/// member survives normalization.
pub fn construct(
    memo: &mut Memo,
    members: Vec<PreparedConsumer>,
    required: &RequiredCols,
) -> Option<ConstructedCse> {
    if members.is_empty() {
        return None;
    }
    let grouped = members[0].normal.has_group();
    if members.iter().any(|m| m.normal.has_group() != grouped) {
        return None;
    }
    let rels: Vec<RelId> = members[0].normal.spj.rels.clone();

    // Step 1: intersected equivalence classes → join conjuncts.
    let class_collections: Vec<_> = members.iter().map(|m| m.classes.clone()).collect();
    let inter = intersect_all(&class_collections);
    let join_conjuncts = classes_to_conjuncts(&inter);

    // Step 2: simplify each member's predicate.
    let implied_by_join = |c: &Scalar| -> bool {
        match c.as_col_eq_col() {
            Some((a, b)) => inter.iter().any(|cl| cl.contains(&a) && cl.contains(&b)),
            None => false,
        }
    };
    let simplified: Vec<Scalar> = members
        .iter()
        .map(|m| {
            let pred = Scalar::and(
                m.normal
                    .spj
                    .conjuncts
                    .iter()
                    .filter(|c| !implied_by_join(c))
                    .cloned(),
            )
            .normalize();
            // Step 2b (analyzer feedback): drop conjuncts qlint proved
            // redundant — after re-verifying the implication locally.
            prune_proven_redundant(&pred, &memo.facts.redundant_conjuncts)
        })
        .collect();

    // Step 3: covering predicate = OR of simplified predicates, factored
    // and range-merged.
    let covering = simplify_covering(&simplified);

    // Step 4: group-by. Beyond the union of consumer keys, only columns a
    // consumer's *compensation* predicate will re-filter on must survive
    // the group-by — conjuncts already guaranteed by the covering predicate
    // (e.g. a date filter common to every consumer) need no compensation,
    // which is why the paper's E5 groups only by (c_nationkey,
    // c_mktsegment) although its covering predicate also mentions
    // o_orderdate.
    let group = if grouped {
        let mut keys: Vec<ColRef> = Vec::new();
        let mut aggs: Vec<AggExpr> = Vec::new();
        for (m, simp) in members.iter().zip(&simplified) {
            let g = m.normal.group.as_ref().expect("grouped checked");
            for k in &g.keys {
                if !keys.contains(k) {
                    keys.push(*k);
                }
            }
            for a in &g.aggs {
                if !aggs.contains(a) {
                    aggs.push(a.clone());
                }
            }
            for conj in simp.conjuncts() {
                if implies(&covering, &conj) {
                    continue; // guaranteed by the spool contents
                }
                for c in conj.columns() {
                    if !keys.contains(&c) {
                        keys.push(c);
                    }
                }
            }
        }
        keys.sort();
        let block = memo.ctx.rel(rels[0]).block;
        // Reuse one synthetic rel per (rels, keys, aggs) shape: Algorithm
        // 1's trial constructions revisit the same shapes many times.
        let out = memo.agg_out_for_key(
            format!("cse|{rels:?}|{keys:?}|{aggs:?}"),
            &aggs,
            Some(block),
        );
        Some((keys, aggs, out))
    } else {
        None
    };

    // Step 5: output columns.
    let output: Vec<ColRef> = match &group {
        Some((keys, aggs, out)) => {
            let mut cols = keys.clone();
            cols.extend((0..aggs.len()).map(|i| ColRef::new(*out, i as u16)));
            cols
        }
        None => {
            let mut set: BTreeSet<ColRef> = BTreeSet::new();
            for (m, simp) in members.iter().zip(&simplified) {
                for c in crate::required::required_of(required, m.group) {
                    set.insert(m.alignment.col(c));
                }
                // Compensation-predicate columns only.
                for conj in simp.conjuncts() {
                    if !implies(&covering, &conj) {
                        set.extend(conj.columns());
                    }
                }
            }
            // A consumer with no recorded requirements (shouldn't happen
            // for real roots) falls back to every column of every rel.
            if set.is_empty() {
                for &r in &rels {
                    let n = memo.ctx.rel(r).schema.len();
                    set.extend((0..n).map(|i| ColRef::new(r, i as u16)));
                }
            }
            set.into_iter().collect()
        }
    };

    // Step 6 (plan shape): filtered leaves, connected join order, residual
    // covering predicate on top, optional aggregate.
    let plan = build_join_plan(&rels, &join_conjuncts, &covering)?;
    let plan = match &group {
        Some((keys, aggs, out)) => LogicalPlan::Aggregate {
            input: Box::new(plan),
            keys: keys.clone(),
            aggs: aggs.clone(),
            out: *out,
        },
        None => plan,
    };

    Some(ConstructedCse {
        members,
        plan,
        output,
        covering,
        join_conjuncts,
        simplified,
        group,
    })
}

/// Drop conjuncts of `pred` that the analyzer proved redundant
/// (`facts`), keeping the predicate row-for-row equivalent.
///
/// Soundness: a fact alone never licenses the drop. Each candidate
/// conjunct is **re-verified locally** — it is removed only when the AND
/// of the *surviving* conjuncts still implies it (the conservative
/// `cse-algebra::implies`). A stale or misrouted fact (e.g. rel ids from
/// a different lowering) simply fails re-verification and the predicate
/// is returned unchanged.
pub fn prune_proven_redundant(pred: &Scalar, facts: &BTreeSet<Scalar>) -> Scalar {
    if facts.is_empty() {
        return pred.clone();
    }
    let conjuncts = pred.conjuncts();
    if conjuncts.len() < 2 {
        return pred.clone();
    }
    let mut kept: Vec<Scalar> = conjuncts.clone();
    // Iterate over the original conjuncts; re-verify each flagged one
    // against the others that are still kept (never against itself).
    for c in &conjuncts {
        if !facts.contains(&c.clone().normalize()) {
            continue;
        }
        let Some(pos) = kept.iter().position(|k| k == c) else {
            continue;
        };
        let rest: Vec<Scalar> = kept
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, k)| k.clone())
            .collect();
        if rest.is_empty() {
            continue;
        }
        let support = Scalar::and(rest).normalize();
        if implies(&support, c) {
            kept.remove(pos);
        }
    }
    if kept.len() == conjuncts.len() {
        pred.clone()
    } else {
        Scalar::and(kept).normalize()
    }
}

/// [`simplify_covering`] with analyzer facts: each branch is first pruned
/// of proven-redundant conjuncts (locally re-verified, see
/// [`prune_proven_redundant`]), which lets the factoring and range-hull
/// rewrites below produce a strictly smaller covering predicate whenever
/// the analyzer caught a redundancy the branches carry.
pub fn simplify_covering_with_facts(simplified: &[Scalar], facts: &BTreeSet<Scalar>) -> Scalar {
    if facts.is_empty() {
        return simplify_covering(simplified);
    }
    let pruned: Vec<Scalar> = simplified
        .iter()
        .map(|s| prune_proven_redundant(s, facts))
        .collect();
    simplify_covering(&pruned)
}

/// OR of the simplified predicates with two equivalence-preserving /
/// sound-weakening rewrites:
/// - conjuncts present in every branch are factored out of the OR;
/// - per column, if every branch constrains it with ranges, the OR of the
///   branches implies the per-column interval hull, which is added as an
///   extra conjunct (and branches that become fully represented drop out).
pub fn simplify_covering(simplified: &[Scalar]) -> Scalar {
    if simplified.iter().any(|s| s.is_true()) {
        return Scalar::true_();
    }
    let branch_conjuncts: Vec<Vec<Scalar>> = simplified.iter().map(|s| s.conjuncts()).collect();
    // Factor common conjuncts.
    let mut common: Vec<Scalar> = branch_conjuncts[0].clone();
    for b in &branch_conjuncts[1..] {
        common.retain(|c| b.contains(c));
    }
    let residual_branches: Vec<Vec<Scalar>> = branch_conjuncts
        .iter()
        .map(|b| b.iter().filter(|c| !common.contains(c)).cloned().collect())
        .collect();

    let mut top_conjuncts = common;
    if residual_branches.iter().any(|b| b.is_empty()) {
        // Some branch imposes nothing beyond the common part: the OR of the
        // residuals is TRUE.
        return Scalar::and(top_conjuncts).normalize();
    }

    // Single-column range hull: if every residual branch constrains a
    // common set of columns with ranges only, replace the OR by per-column
    // hulls (this is exactly how the paper's E5 covering predicate looks).
    let range_only = residual_branches.iter().all(|b| {
        b.iter().all(|c| {
            c.as_col_vs_lit()
                .map(|(_, op, _)| op != CmpOp::Ne)
                .unwrap_or(false)
        })
    });
    if range_only {
        let mut cols: BTreeSet<ColRef> = residual_branches[0]
            .iter()
            .filter_map(|c| c.as_col_vs_lit().map(|(col, _, _)| col))
            .collect();
        for b in &residual_branches[1..] {
            let bc: BTreeSet<ColRef> = b
                .iter()
                .filter_map(|c| c.as_col_vs_lit().map(|(col, _, _)| col))
                .collect();
            cols = cols.intersection(&bc).copied().collect();
        }
        // Hull per column constrained in every branch.
        let mut hull_conjuncts: Vec<Scalar> = Vec::new();
        for col in &cols {
            let mut lo: Option<(cse_storage::Value, bool)> = None;
            let mut hi: Option<(cse_storage::Value, bool)> = None;
            let mut all_bounded_lo = true;
            let mut all_bounded_hi = true;
            for b in &residual_branches {
                let pred = Scalar::and(b.iter().cloned());
                let ranges = cse_algebra::column_ranges(&pred);
                let iv = ranges.get(col).cloned().unwrap_or_default();
                match iv.lo {
                    Some((v, inc)) => {
                        lo = Some(match lo {
                            None => (v, inc),
                            Some((cur, cinc)) => match v.total_cmp(&cur) {
                                std::cmp::Ordering::Less => (v, inc),
                                std::cmp::Ordering::Equal => (cur, cinc || inc),
                                std::cmp::Ordering::Greater => (cur, cinc),
                            },
                        });
                    }
                    None => all_bounded_lo = false,
                }
                match iv.hi {
                    Some((v, inc)) => {
                        hi = Some(match hi {
                            None => (v, inc),
                            Some((cur, cinc)) => match v.total_cmp(&cur) {
                                std::cmp::Ordering::Greater => (v, inc),
                                std::cmp::Ordering::Equal => (cur, cinc || inc),
                                std::cmp::Ordering::Less => (cur, cinc),
                            },
                        });
                    }
                    None => all_bounded_hi = false,
                }
            }
            if all_bounded_lo {
                if let Some((v, inc)) = lo {
                    hull_conjuncts.push(Scalar::cmp(
                        if inc { CmpOp::Ge } else { CmpOp::Gt },
                        Scalar::Col(*col),
                        Scalar::Lit(v),
                    ));
                }
            }
            if all_bounded_hi {
                if let Some((v, inc)) = hi {
                    hull_conjuncts.push(Scalar::cmp(
                        if inc { CmpOp::Le } else { CmpOp::Lt },
                        Scalar::Col(*col),
                        Scalar::Lit(v),
                    ));
                }
            }
        }
        // The hull is sound for any branch shape; it is *exact* (no
        // residual OR needed) when each branch constrains exactly one
        // column and that column is shared — the common workload shape.
        let exact = residual_branches.iter().all(|b| {
            let bc: BTreeSet<ColRef> = b
                .iter()
                .filter_map(|c| c.as_col_vs_lit().map(|(col, _, _)| col))
                .collect();
            bc.len() == 1 && cols.iter().any(|c| bc.contains(c))
        }) && cols.len() == 1;
        top_conjuncts.extend(hull_conjuncts);
        if !exact {
            top_conjuncts.push(Scalar::or(
                residual_branches
                    .iter()
                    .map(|b| Scalar::and(b.iter().cloned())),
            ));
        }
        return Scalar::and(top_conjuncts).normalize();
    }

    top_conjuncts.push(Scalar::or(
        residual_branches
            .iter()
            .map(|b| Scalar::and(b.iter().cloned())),
    ));
    Scalar::and(top_conjuncts).normalize()
}

/// Build a left-deep, connected join tree over `rels`: single-rel covering
/// conjuncts become leaf filters, join conjuncts attach at the lowest
/// covering join, multi-rel covering residue lands in a top filter.
pub fn build_join_plan(
    rels: &[RelId],
    join_conjuncts: &[Scalar],
    covering: &Scalar,
) -> Option<LogicalPlan> {
    let mut remaining: Vec<Scalar> = join_conjuncts.to_vec();
    remaining.extend(covering.conjuncts());
    // Greedy connected order.
    let mut order: Vec<RelId> = vec![*rels.first()?];
    let mut left: Vec<RelId> = rels[1..].to_vec();
    while !left.is_empty() {
        let covered = RelSet::from_iter(order.iter().copied());
        let next = left
            .iter()
            .position(|r| {
                remaining.iter().any(|c| {
                    let cr = c.rels();
                    cr.contains(*r) && !cr.intersect(covered).is_empty()
                })
            })
            .unwrap_or(0); // disconnected: cross join the first leftover
        order.push(left.remove(next));
    }
    let mut plan: Option<LogicalPlan> = None;
    let mut covered = RelSet::EMPTY;
    for r in order {
        let leaf_set = RelSet::single(r);
        let local: Vec<Scalar> = take_covered(&mut remaining, leaf_set);
        let mut leaf = LogicalPlan::get(r);
        if !local.is_empty() {
            leaf = leaf.filter(Scalar::and(local));
        }
        covered = covered.union(leaf_set);
        plan = Some(match plan {
            None => leaf,
            Some(p) => {
                let join_pred: Vec<Scalar> = take_covered(&mut remaining, covered);
                p.join(leaf, Scalar::and(join_pred).normalize())
            }
        });
    }
    let mut plan = plan?;
    if !remaining.is_empty() {
        plan = plan.filter(Scalar::and(remaining));
    }
    Some(plan)
}

fn take_covered(remaining: &mut Vec<Scalar>, set: RelSet) -> Vec<Scalar> {
    let mut out = Vec::new();
    remaining.retain(|c| {
        let r = c.rels();
        if !r.is_empty() && r.is_subset(set) {
            out.push(c.clone());
            false
        } else {
            true
        }
    });
    out
}

/// Does the covering predicate of a CSE admit this member (sanity check
/// used by tests and view matching)?
pub fn member_implies_covering(member_pred: &Scalar, covering: &Scalar) -> bool {
    implies(member_pred, covering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::RelId;

    fn col(r: u32, c: u16) -> Scalar {
        Scalar::col(RelId(r), c)
    }

    #[test]
    fn covering_factors_common_and_merges_ranges() {
        // Example 1's shape: shared o_orderdate conjunct, disjoint
        // c_nationkey ranges (0,20), (5,25), (2,24) → hull (0,25).
        let date = Scalar::cmp(CmpOp::Lt, col(1, 4), Scalar::int(9678));
        let b1 = Scalar::and([
            date.clone(),
            Scalar::cmp(CmpOp::Gt, col(0, 3), Scalar::int(0)),
            Scalar::cmp(CmpOp::Lt, col(0, 3), Scalar::int(20)),
        ]);
        let b2 = Scalar::and([
            date.clone(),
            Scalar::cmp(CmpOp::Gt, col(0, 3), Scalar::int(5)),
            Scalar::cmp(CmpOp::Lt, col(0, 3), Scalar::int(25)),
        ]);
        let b3 = Scalar::and([
            date.clone(),
            Scalar::cmp(CmpOp::Gt, col(0, 3), Scalar::int(2)),
            Scalar::cmp(CmpOp::Lt, col(0, 3), Scalar::int(24)),
        ]);
        let branches = vec![b1.normalize(), b2.normalize(), b3.normalize()];
        let cov = simplify_covering(&branches);
        // Must contain the common date conjunct + hull, no OR.
        let cs = cov.conjuncts();
        assert_eq!(cs.len(), 3, "covering = date ∧ hull-lo ∧ hull-hi: {cov}");
        for b in &branches {
            assert!(member_implies_covering(b, &cov), "{b} must imply {cov}");
        }
        // And the hull is (0, 25).
        let ranges = cse_algebra::column_ranges(&cov);
        let iv = &ranges[&cse_algebra::ColRef::new(RelId(0), 3)];
        assert_eq!(iv.lo.as_ref().unwrap().0, cse_storage::Value::Int(0));
        assert_eq!(iv.hi.as_ref().unwrap().0, cse_storage::Value::Int(25));
    }

    #[test]
    fn covering_with_true_branch_is_true() {
        let b1 = Scalar::true_();
        let b2 = Scalar::cmp(CmpOp::Lt, col(0, 0), Scalar::int(5));
        assert!(simplify_covering(&[b1, b2]).is_true());
    }

    #[test]
    fn covering_keeps_or_when_not_mergeable() {
        // Branches on different columns: hull is sound but inexact, the OR
        // must remain.
        let b1 = Scalar::cmp(CmpOp::Lt, col(0, 0), Scalar::int(5)).normalize();
        let b2 = Scalar::cmp(CmpOp::Gt, col(0, 1), Scalar::int(7)).normalize();
        let cov = simplify_covering(&[b1.clone(), b2.clone()]);
        assert!(member_implies_covering(&b1, &cov));
        assert!(member_implies_covering(&b2, &cov));
        assert!(!cov.is_true());
    }

    #[test]
    fn join_plan_is_connected() {
        let rels = vec![RelId(0), RelId(1), RelId(2)];
        let joins = vec![
            Scalar::eq(col(0, 0), col(1, 0)).normalize(),
            Scalar::eq(col(1, 1), col(2, 0)).normalize(),
        ];
        let plan = build_join_plan(&rels, &joins, &Scalar::true_()).unwrap();
        // No cross joins: every Join node's predicate is non-trivial.
        fn check(p: &LogicalPlan) {
            if let LogicalPlan::Join { left, right, pred } = p {
                assert!(!pred.is_true(), "cross join generated");
                check(left);
                check(right);
            }
        }
        check(&plan);
        assert_eq!(plan.rels().len(), 3);
    }
}
