//! Required-column analysis over the memo.
//!
//! For every group, which of its output columns do its ancestors actually
//! reference? The covering subexpression only needs to materialize the
//! union of its consumers' required columns (step 5 of the construction in
//! §4.2: "all columns and expressions that are required to compute the
//! result of a potential consumer") — and this is what makes Heuristic 2
//! bite on `SELECT *` consumers.

use cse_algebra::{ColRef, Scalar};
use cse_memo::{GroupId, Memo, Op};
use std::collections::{BTreeSet, HashMap};

/// `required[g]` = columns of g's output that some ancestor references.
pub type RequiredCols = HashMap<GroupId, BTreeSet<ColRef>>;

/// Compute required columns for every group reachable from `roots`,
/// propagating down through every group expression to a fixpoint.
pub fn compute_required(memo: &Memo, roots: &[GroupId]) -> RequiredCols {
    let mut required: RequiredCols = HashMap::new();
    // Roots (statement outputs) require their full projection inputs; for
    // non-Project roots require all output cols.
    let mut work: Vec<GroupId> = Vec::new();
    for &r in roots {
        let all: BTreeSet<ColRef> = memo.group(r).props.output_cols.iter().copied().collect();
        required.insert(r, all);
        work.push(r);
    }
    while let Some(g) = work.pop() {
        let req_g = required.get(&g).cloned().unwrap_or_default();
        for &eid in &memo.group(g).exprs.clone() {
            let e = memo.gexpr(eid);
            // Columns this operator itself consumes from its children.
            let mut local: BTreeSet<ColRef> = BTreeSet::new();
            let add_scalar = |s: &Scalar, acc: &mut BTreeSet<ColRef>| {
                acc.extend(s.columns());
            };
            match &e.op {
                Op::Get { .. } => {}
                Op::Filter { pred } => add_scalar(pred, &mut local),
                Op::Join { pred } => add_scalar(pred, &mut local),
                Op::Aggregate { keys, aggs, .. } => {
                    local.extend(keys.iter().copied());
                    for a in aggs {
                        if let Some(arg) = &a.arg {
                            add_scalar(arg, &mut local);
                        }
                    }
                }
                Op::Project { exprs } => {
                    for (_, s) in exprs {
                        add_scalar(s, &mut local);
                    }
                }
                Op::Sort { keys } => {
                    for (s, _) in keys {
                        add_scalar(s, &mut local);
                    }
                }
                Op::Batch => {}
            }
            for &c in &e.children {
                let child_cols: BTreeSet<ColRef> =
                    memo.group(c).props.output_cols.iter().copied().collect();
                // Child must provide: pass-through requirements it can
                // supply + the operator's own references into it.
                let mut need: BTreeSet<ColRef> = req_g
                    .iter()
                    .copied()
                    .filter(|col| child_cols.contains(col))
                    .collect();
                need.extend(local.iter().copied().filter(|col| child_cols.contains(col)));
                // Batch children are statement roots: they require all
                // their outputs (results are delivered in full).
                if matches!(e.op, Op::Batch) {
                    need.extend(child_cols.iter().copied());
                }
                let entry = required.entry(c).or_default();
                let before = entry.len();
                entry.extend(need);
                if entry.len() != before || before == 0 {
                    work.push(c);
                }
            }
        }
    }
    required
}

/// The required columns of one group (empty set if never computed).
pub fn required_of(required: &RequiredCols, g: GroupId) -> BTreeSet<ColRef> {
    required.get(&g).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{AggExpr, LogicalPlan, PlanContext, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn build() -> (Memo, GroupId, cse_algebra::RelId, cse_algebra::RelId) {
        let mut ctx = PlanContext::new();
        let blk = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
        ]));
        let r = ctx.add_base_rel("r", "r", schema.clone(), blk);
        let s = ctx.add_base_rel("s", "s", schema, blk);
        let out = ctx.add_agg_output(&[DataType::Int], blk);
        let join = LogicalPlan::get(r).join(
            LogicalPlan::get(s),
            Scalar::eq(Scalar::col(r, 0), Scalar::col(s, 0)),
        );
        let plan = LogicalPlan::Aggregate {
            input: Box::new(join),
            keys: vec![cse_algebra::ColRef::new(r, 1)],
            aggs: vec![AggExpr::sum(Scalar::col(s, 2))],
            out,
        }
        .project(vec![("total".into(), Scalar::col(out, 0))]);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&plan);
        (memo, root, r, s)
    }

    #[test]
    fn join_group_requires_only_referenced_columns() {
        let (memo, root, r, s) = build();
        let req = compute_required(&memo, &[root]);
        // Find the join group (rels = {r,s}, no group flag).
        let join_group = memo
            .groups()
            .find(|g| {
                g.props.rels.len() == 2
                    && g.props.signature.as_ref().is_some_and(|sig| !sig.grouped)
            })
            .unwrap();
        let need = required_of(&req, join_group.id);
        // Required: r.a (join key via agg input? no: join key), r.b (group
        // key), s.a (join key), s.c (agg arg). NOT r.c, s.b.
        assert!(need.contains(&cse_algebra::ColRef::new(r, 1)));
        assert!(need.contains(&cse_algebra::ColRef::new(s, 2)));
        assert!(!need.contains(&cse_algebra::ColRef::new(r, 2)));
        assert!(!need.contains(&cse_algebra::ColRef::new(s, 1)));
    }

    #[test]
    fn leaf_requirements_subset_of_schema() {
        let (memo, root, r, _) = build();
        let req = compute_required(&memo, &[root]);
        let get_group = memo
            .groups()
            .find(|g| g.props.rels == cse_algebra::RelSet::single(r))
            .unwrap();
        let need = required_of(&req, get_group.id);
        assert!(!need.is_empty());
        assert!(need.iter().all(|c| c.rel == r));
    }
}
