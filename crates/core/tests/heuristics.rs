//! Unit-level tests of the generation heuristics (§4.3) against synthetic
//! catalogs where each heuristic's firing condition is controlled.

use cse_algebra::{CmpOp, LogicalPlan, PlanContext, Scalar};
use cse_core::candidates::{
    cost_candidate, h1_worthwhile, h4_prune_contained, shared_cost, CostBounds,
};
use cse_core::{compute_required, construct, prepare_consumers, CseManager};
use cse_cost::{CostModel, StatsCatalog};
use cse_memo::{explore, ExploreConfig, GroupId, Memo};
use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
use std::collections::HashMap;

/// Catalog with two tables of `n` rows each.
fn catalog(n: i64) -> Catalog {
    let mut a = Table::new(
        "ta",
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
    );
    let mut b = Table::new(
        "tb",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
    );
    for i in 0..n {
        a.push(row(vec![Value::Int(i), Value::Int(i % 10)]))
            .unwrap();
        b.push(row(vec![Value::Int(i), Value::Int(i % 7)])).unwrap();
    }
    let mut cat = Catalog::new();
    cat.register_table(a).unwrap();
    cat.register_table(b).unwrap();
    cat
}

/// Memo with two similar joins (different filter bounds) + batch root.
fn memo_two_joins(catalog: &Catalog) -> (Memo, Vec<GroupId>) {
    let mut ctx = PlanContext::new();
    let sa = catalog.table("ta").unwrap().schema().clone();
    let sb = catalog.table("tb").unwrap().schema().clone();
    let mk = |ctx: &mut PlanContext, hi: i64| {
        let blk = ctx.new_block();
        let a = ctx.add_base_rel("ta", "ta", sa.clone(), blk);
        let b = ctx.add_base_rel("tb", "tb", sb.clone(), blk);
        LogicalPlan::get(a)
            .filter(Scalar::cmp(CmpOp::Lt, Scalar::col(a, 1), Scalar::int(hi)))
            .join(
                LogicalPlan::get(b),
                Scalar::eq(Scalar::col(a, 0), Scalar::col(b, 0)),
            )
            .project(vec![
                ("k".into(), Scalar::col(a, 0)),
                ("w".into(), Scalar::col(b, 1)),
            ])
    };
    let q1 = mk(&mut ctx, 5);
    let q2 = mk(&mut ctx, 8);
    let mut memo = Memo::new(ctx);
    let root = memo.insert_plan(&LogicalPlan::Batch {
        children: vec![q1, q2],
    });
    memo.set_root(root);
    explore(&mut memo, &ExploreConfig::default());
    let mgr = CseManager::build(&memo);
    let sets = mgr.sharable_sets();
    assert_eq!(sets.len(), 1);
    (memo, sets.into_iter().next().unwrap().1)
}

#[test]
fn h1_rejects_cheap_sets_and_accepts_expensive_ones() {
    let bounds = CostBounds::new(HashMap::from([(GroupId(1), 10.0), (GroupId(2), 15.0)]));
    // Query cost 1000, alpha 10%: 25 < 100 -> reject.
    assert!(!h1_worthwhile(
        &bounds,
        &[GroupId(1), GroupId(2)],
        1000.0,
        0.10
    ));
    // Query cost 200: 25 >= 20 -> accept.
    assert!(h1_worthwhile(
        &bounds,
        &[GroupId(1), GroupId(2)],
        200.0,
        0.10
    ));
}

#[test]
fn shared_cost_includes_all_three_components() {
    let cat = catalog(500);
    let (mut memo, consumers) = memo_two_joins(&cat);
    let stats = StatsCatalog::from_catalog(&cat);
    let required = compute_required(&memo, &[memo.root()]);
    let prepared = prepare_consumers(&memo, &consumers);
    let sig = memo
        .signature_of(consumers[0])
        .expect("consumer has signature")
        .clone();
    let cse = construct(&mut memo, prepared, &required).unwrap();
    let bounds = CostBounds::new(HashMap::from([
        (consumers[0], 100.0),
        (consumers[1], 150.0),
    ]));
    let costed = cost_candidate(&memo, &stats, &CostModel::default(), &bounds, sig, cse);
    // ce_lower = max of member bounds = 150.
    assert_eq!(costed.ce_lower, 150.0);
    assert!(costed.cw > 0.0);
    assert!(costed.cr > 0.0);
    assert!(
        costed.cr < costed.cw,
        "reading must be cheaper than writing"
    );
    let sc = shared_cost(&costed);
    assert!(
        (sc - (costed.ce_lower + costed.cw + 2.0 * costed.cr)).abs() < 1e-9,
        "shared cost formula"
    );
}

#[test]
fn h4_discards_contained_candidate_with_larger_result() {
    let cat = catalog(500);
    let (mut memo, consumers) = memo_two_joins(&cat);
    let stats = StatsCatalog::from_catalog(&cat);
    let required = compute_required(&memo, &[memo.root()]);
    let mgr = CseManager::build(&memo);
    let sig = memo.signature_of(consumers[0]).unwrap().clone();
    let prepared = prepare_consumers(&memo, &consumers);
    let cse = construct(&mut memo, prepared, &required).unwrap();
    let bounds = CostBounds::default();
    let model = CostModel::default();
    // Two copies of the same candidate: mutually contained, equal size —
    // with β=0.9, size_c > 0.9·size_p holds, so one dies.
    let a = cost_candidate(&memo, &stats, &model, &bounds, sig.clone(), cse.clone());
    let b = cost_candidate(&memo, &stats, &model, &bounds, sig, cse);
    let kept = h4_prune_contained(&mgr, vec![a, b], 0.90);
    assert_eq!(kept.len(), 1, "one of two identical candidates must die");
    // With β above 1.0 nothing dies (a candidate is never bigger than
    // itself times >1).
    let cat2 = catalog(500);
    let (mut memo2, consumers2) = memo_two_joins(&cat2);
    let stats2 = StatsCatalog::from_catalog(&cat2);
    let required2 = compute_required(&memo2, &[memo2.root()]);
    let mgr2 = CseManager::build(&memo2);
    let sig2 = memo2.signature_of(consumers2[0]).unwrap().clone();
    let prepared2 = prepare_consumers(&memo2, &consumers2);
    let cse2 = construct(&mut memo2, prepared2, &required2).unwrap();
    let a2 = cost_candidate(&memo2, &stats2, &model, &bounds, sig2.clone(), cse2.clone());
    let b2 = cost_candidate(&memo2, &stats2, &model, &bounds, sig2, cse2);
    let kept2 = h4_prune_contained(&mgr2, vec![a2, b2], 1.5);
    assert_eq!(kept2.len(), 2);
}

#[test]
fn construct_output_covers_compensation_columns() {
    let cat = catalog(200);
    let (mut memo, consumers) = memo_two_joins(&cat);
    let required = compute_required(&memo, &[memo.root()]);
    let prepared = prepare_consumers(&memo, &consumers);
    let cse = construct(&mut memo, prepared, &required).unwrap();
    // The differing filter column (ta.v, aligned to the anchor's rel) must
    // be materialized so consumers can compensate.
    for simp in &cse.simplified {
        for conj in simp.conjuncts() {
            if !cse_algebra::implies(&cse.covering, &conj) {
                for c in conj.columns() {
                    assert!(
                        cse.output.contains(&c),
                        "compensation column {c} missing from spool output"
                    );
                }
            }
        }
    }
    // Covering is the range hull: v < 8 (the wider of 5 and 8).
    assert!(!cse.covering.is_true());
    let ranges = cse_algebra::column_ranges(&cse.covering);
    let (_, iv) = ranges.iter().next().expect("hull range");
    assert_eq!(iv.hi.as_ref().unwrap().0, Value::Int(8));
}

#[test]
fn trivial_construct_matches_consumer() {
    let cat = catalog(100);
    let (mut memo, consumers) = memo_two_joins(&cat);
    let required = compute_required(&memo, &[memo.root()]);
    let prepared = prepare_consumers(&memo, &consumers);
    let one = vec![prepared[0].clone()];
    let cse = construct(&mut memo, one, &required).unwrap();
    assert_eq!(cse.members.len(), 1);
    // Trivial CSE's covering predicate is the consumer's own filter.
    assert!(cse_algebra::implies(
        &cse.members[0].normal.spj.predicate(),
        &cse.covering
    ));
}
