//! The maintenance module's SQL renderer must be a faithful inverse of
//! the parser for the supported subset (view definitions round-trip
//! through rewrite_from → parse).

use cse_core::maintenance::render_select;
use cse_sql::{parse_one, Statement};

fn roundtrip(sql: &str) {
    let Statement::Select(s1) = parse_one(sql).expect("parse original") else {
        panic!("not a select");
    };
    let rendered = render_select(&s1);
    let Statement::Select(s2) = parse_one(&rendered).expect("parse rendered") else {
        panic!("rendered not a select");
    };
    // Rendering normalizes alias presence; compare re-rendered forms.
    assert_eq!(render_select(&s2), rendered, "second render must be stable");
    assert_eq!(s1.select.len(), s2.select.len());
    assert_eq!(s1.from.len(), s2.from.len());
    assert_eq!(s1.group_by.len(), s2.group_by.len());
}

#[test]
fn renders_simple_select() {
    roundtrip("select a, b from t where a < 5");
}

#[test]
fn renders_aggregates_and_grouping() {
    roundtrip(
        "select c_nationkey, sum(l_extendedprice) as le, count(*) as n \
         from customer, orders, lineitem \
         where c_custkey = o_custkey and o_orderkey = l_orderkey \
         group by c_nationkey",
    );
}

#[test]
fn renders_qualified_columns_and_aliases() {
    roundtrip("select c.a as x, d.b from t1 c, t2 d where c.k = d.k");
}

#[test]
fn renders_string_and_date_literals() {
    roundtrip("select a from t where d < '1996-07-01' and s = 'it''s'");
}

#[test]
fn renders_or_not_between() {
    roundtrip("select a from t where a between 1 and 5 or not b = 2");
}

#[test]
fn renders_arithmetic() {
    roundtrip("select a * 2 + 1 as x from t where a / 4 > 1.5");
}

#[test]
fn renders_min_max() {
    roundtrip("select min(a) as lo, max(b) as hi from t group by c");
}
