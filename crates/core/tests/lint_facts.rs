//! Analyzer facts → constructor feedback.
//!
//! `cse_lint` proves conjuncts redundant at lint time and hands them to
//! the optimizer as `ProvenFacts` on the memo. These tests check the
//! whole feedback path at the memo level:
//!
//! - [`prune_proven_redundant`] drops only locally re-verified conjuncts
//!   (a stale fact is a no-op);
//! - [`simplify_covering_with_facts`] yields a strictly smaller — but
//!   equivalent — covering predicate than [`simplify_covering`];
//! - a full `construct()` run over a two-consumer sharable set produces
//!   a strictly smaller covering predicate when the facts are present.

use cse_algebra::{implies, CmpOp, LogicalPlan, PlanContext, RelId, Scalar};
use cse_core::{
    compute_required, construct, partition_compatible, prepare_consumers, prune_proven_redundant,
    simplify_covering, simplify_covering_with_facts, CseManager,
};
use cse_memo::Memo;
use cse_storage::{DataType, Schema};
use std::collections::BTreeSet;
use std::sync::Arc;

fn lt(col: Scalar, n: i64) -> Scalar {
    Scalar::cmp(CmpOp::Lt, col, Scalar::int(n))
}

fn single_rel() -> (PlanContext, RelId) {
    let mut ctx = PlanContext::new();
    let b = ctx.new_block();
    let schema = Arc::new(Schema::from_pairs(&[
        ("k", DataType::Int),
        ("v", DataType::Int),
    ]));
    let r = ctx.add_base_rel("t", "t", schema, b);
    (ctx, r)
}

#[test]
fn prune_drops_only_reverified_conjuncts() {
    let (_ctx, r) = single_rel();
    let v = || Scalar::col(r, 1);
    let k = || Scalar::col(r, 0);

    let mut facts = BTreeSet::new();
    facts.insert(lt(v(), 100).normalize());

    // v < 10 AND v < 100, fact: v < 100 is redundant. The surviving
    // v < 10 implies it, so the drop is licensed.
    let pred = Scalar::and(vec![lt(v(), 10), lt(v(), 100)]).normalize();
    let pruned = prune_proven_redundant(&pred, &facts);
    let kept = pruned.conjuncts();
    assert_eq!(kept.len(), 1, "expected one conjunct, got {pruned}");
    assert!(kept.contains(&lt(v(), 10).normalize()));
    // Row-for-row equivalent.
    assert!(implies(&pred, &pruned) && implies(&pruned, &pred));

    // A fact that fails local re-verification is a no-op: k > 0 does NOT
    // imply v < 100, so the flagged conjunct must survive.
    let pred2 = Scalar::and(vec![
        Scalar::cmp(CmpOp::Gt, k(), Scalar::int(0)),
        lt(v(), 100),
    ])
    .normalize();
    assert_eq!(prune_proven_redundant(&pred2, &facts), pred2);
}

#[test]
fn covering_is_strictly_smaller_with_facts() {
    let (_ctx, r) = single_rel();
    let v = || Scalar::col(r, 1);

    let b1 = Scalar::and(vec![lt(v(), 10), lt(v(), 100)]).normalize();
    let b2 = Scalar::and(vec![lt(v(), 20), lt(v(), 100)]).normalize();
    let facts: BTreeSet<Scalar> = [lt(v(), 100).normalize()].into_iter().collect();

    let plain = simplify_covering(&[b1.clone(), b2.clone()]);
    let with = simplify_covering_with_facts(&[b1, b2], &facts);
    assert!(
        with.conjuncts().len() < plain.conjuncts().len(),
        "facts should shrink the covering: {with} vs {plain}"
    );
    // Still the same covering set: each implies the other.
    assert!(implies(&plain, &with) && implies(&with, &plain));
}

/// Two SPJ consumers over (ta ⋈ tb), both carrying the redundant
/// conjunct `v < 100` next to their real range. Returns the covering
/// predicate `construct()` chose.
fn construct_covering(with_facts: bool) -> Scalar {
    let mut ctx = PlanContext::new();
    let schema = Arc::new(Schema::from_pairs(&[
        ("k", DataType::Int),
        ("v", DataType::Int),
    ]));
    let mut a_rels: Vec<RelId> = Vec::new();
    let mk = |ctx: &mut PlanContext, hi: i64, a_rels: &mut Vec<RelId>| {
        let b = ctx.new_block();
        let a = ctx.add_base_rel("ta", "ta", schema.clone(), b);
        let t = ctx.add_base_rel("tb", "tb", schema.clone(), b);
        a_rels.push(a);
        LogicalPlan::get(a)
            .filter(Scalar::and(vec![
                lt(Scalar::col(a, 1), hi),
                lt(Scalar::col(a, 1), 100),
            ]))
            .join(
                LogicalPlan::get(t),
                Scalar::eq(Scalar::col(a, 0), Scalar::col(t, 0)),
            )
            .project(vec![
                ("k".into(), Scalar::col(a, 0)),
                ("v".into(), Scalar::col(t, 1)),
            ])
    };
    let q1 = mk(&mut ctx, 10, &mut a_rels);
    let q2 = mk(&mut ctx, 20, &mut a_rels);
    let mut memo = Memo::new(ctx);
    let root = memo.insert_plan(&LogicalPlan::Batch {
        children: vec![q1, q2],
    });
    memo.set_root(root);
    if with_facts {
        // qlint emits the fact per statement, in that statement's rel
        // space; insert both spellings the way `optimize_sql` does.
        for a in &a_rels {
            memo.facts
                .redundant_conjuncts
                .insert(lt(Scalar::col(*a, 1), 100).normalize());
        }
    }
    let mgr = CseManager::build(&memo);
    let sets = mgr.sharable_sets();
    assert_eq!(sets.len(), 1);
    let consumers = sets.into_iter().next().expect("one set").1;
    let required = compute_required(&memo, &[memo.root()]);
    let prepared = prepare_consumers(&memo, &consumers);
    let groups = partition_compatible(&memo.ctx, prepared);
    assert_eq!(groups.len(), 1);
    construct(&mut memo, groups[0].members.clone(), &required)
        .expect("constructible")
        .covering
}

#[test]
fn construct_covering_shrinks_under_facts() {
    let plain = construct_covering(false);
    let with = construct_covering(true);
    assert!(
        with.conjuncts().len() < plain.conjuncts().len(),
        "covering should be strictly smaller with facts: {with} vs {plain}"
    );
    // The shrunken covering is the range hull v < 20 alone — the pruned
    // v < 100 was implied by it, so the spool contents are identical.
    assert!(implies(&with, &plain) && implies(&plain, &with));
}
