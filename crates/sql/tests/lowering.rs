//! Lowered-plan *shape* tests: predicate placement, aggregate structure,
//! subquery placement, error paths.

use cse_algebra::{LogicalPlan, Scalar};
use cse_sql::lower_batch_sql;
use cse_storage::{Catalog, DataType, Schema, Table};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (name, cols) in [
        (
            "ta",
            vec![
                ("a_k", DataType::Int),
                ("a_v", DataType::Int),
                ("a_d", DataType::Date),
            ],
        ),
        ("tb", vec![("b_k", DataType::Int), ("b_v", DataType::Int)]),
        ("tc", vec![("c_k", DataType::Int), ("c_v", DataType::Int)]),
    ] {
        cat.register_table(Table::new(name, Schema::from_pairs(&cols)))
            .unwrap();
    }
    cat
}

/// Walk helper: count nodes matching a predicate.
fn count(plan: &LogicalPlan, f: &dyn Fn(&LogicalPlan) -> bool) -> usize {
    let mut n = usize::from(f(plan));
    match plan {
        LogicalPlan::Get { .. } => {}
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Aggregate { input, .. } => n += count(input, f),
        LogicalPlan::Join { left, right, .. } => {
            n += count(left, f) + count(right, f);
        }
        LogicalPlan::Batch { children } => {
            n += children.iter().map(|c| count(c, f)).sum::<usize>();
        }
    }
    n
}

#[test]
fn single_table_predicates_are_pushed_to_leaves() {
    let cat = catalog();
    let (ctx, plan) = lower_batch_sql(
        &cat,
        "select a_k from ta, tb where a_k = b_k and a_v < 5 and b_v > 2",
    )
    .unwrap();
    plan.validate(&ctx).unwrap();
    // Two leaf filters (one per table), join pred on the join.
    let filters = count(&plan, &|p| matches!(p, LogicalPlan::Filter { .. }));
    assert_eq!(
        filters,
        2,
        "both local predicates must sit on leaves:\n{}",
        plan.display(&ctx)
    );
    let join_has_pred = count(
        &plan,
        &|p| matches!(p, LogicalPlan::Join { pred, .. } if !pred.is_true()),
    );
    assert_eq!(join_has_pred, 1);
}

#[test]
fn aggregate_collects_distinct_functions_once() {
    let cat = catalog();
    let (_, plan) = lower_batch_sql(
        &cat,
        "select a_k, sum(a_v) as s1, sum(a_v) as s2, count(*) as n from ta group by a_k",
    )
    .unwrap();
    // sum(a_v) referenced twice but collected once: 2 aggregate exprs.
    let mut found = false;
    plan_visit(&plan, &mut |p| {
        if let LogicalPlan::Aggregate { aggs, .. } = p {
            assert_eq!(aggs.len(), 2);
            found = true;
        }
    });
    assert!(found);
}

#[test]
fn sort_sits_below_project() {
    let cat = catalog();
    let (_, plan) = lower_batch_sql(&cat, "select a_k from ta order by a_v desc").unwrap();
    match &plan {
        LogicalPlan::Project { input, .. } => {
            assert!(matches!(input.as_ref(), LogicalPlan::Sort { .. }));
        }
        other => panic!("expected Project at root, got {other:?}"),
    }
}

#[test]
fn where_subquery_joins_below_aggregate() {
    let cat = catalog();
    let (ctx, plan) = lower_batch_sql(
        &cat,
        "select a_k, sum(a_v) as s from ta \
         where a_v > (select sum(b_v) / 10 from tb) group by a_k",
    )
    .unwrap();
    plan.validate(&ctx).unwrap();
    // One aggregate for the outer group-by, one for the subquery; the
    // subquery's aggregate must be *below* the outer one (inside its input).
    let mut ok = false;
    plan_visit(&plan, &mut |p| {
        if let LogicalPlan::Aggregate { input, keys, .. } = p {
            if !keys.is_empty() {
                // outer aggregate: its input subtree must contain the
                // subquery aggregate.
                ok = count(input, &|q| matches!(q, LogicalPlan::Aggregate { .. })) == 1;
            }
        }
    });
    assert!(
        ok,
        "subquery aggregate must be below the outer aggregate:\n{}",
        plan.display(&ctx)
    );
}

#[test]
fn having_subquery_joins_above_aggregate() {
    let cat = catalog();
    let (ctx, plan) = lower_batch_sql(
        &cat,
        "select a_k, sum(a_v) as s from ta group by a_k \
         having sum(a_v) > (select sum(b_v) / 10 from tb)",
    )
    .unwrap();
    plan.validate(&ctx).unwrap();
    // The HAVING filter sits above a join of (outer aggregate, subquery).
    let mut ok = false;
    plan_visit(&plan, &mut |p| {
        if let LogicalPlan::Filter { input, .. } = p {
            if let LogicalPlan::Join { left, right, .. } = input.as_ref() {
                let l_agg = matches!(left.as_ref(), LogicalPlan::Aggregate { .. });
                let r_agg = matches!(right.as_ref(), LogicalPlan::Aggregate { .. });
                ok |= l_agg && r_agg;
            }
        }
    });
    assert!(
        ok,
        "HAVING subquery must cross-join above the aggregate:\n{}",
        plan.display(&ctx)
    );
}

#[test]
fn date_literal_becomes_date_value() {
    let cat = catalog();
    let (_, plan) = lower_batch_sql(&cat, "select a_k from ta where a_d < '1996-07-01'").unwrap();
    let mut saw_date = false;
    plan_visit(&plan, &mut |p| {
        if let LogicalPlan::Filter { pred, .. } = p {
            pred.visit(&mut |s| {
                if let Scalar::Lit(cse_storage::Value::Date(_)) = s {
                    saw_date = true;
                }
            });
        }
    });
    assert!(saw_date, "string literal must coerce to a Date value");
}

#[test]
fn lowering_errors() {
    let cat = catalog();
    for bad in [
        "select * from ta group by a_k",             // star + group by
        "select sum(a_v) from ta group by sum(a_v)", // aggregate as key
        "select a_v from ta group by a_k",           // non-key non-aggregate
        "select a_k from ta where sum(a_v) > 1",     // aggregate in WHERE
        "select (select b_k from tb) from ta",       // non-aggregate subquery
    ] {
        assert!(lower_batch_sql(&cat, bad).is_err(), "must reject: {bad}");
    }
}

#[test]
fn batch_shares_one_context() {
    let cat = catalog();
    let (ctx, plan) = lower_batch_sql(&cat, "select a_k from ta; select a_v from ta;").unwrap();
    // Two statements, four+... two instances of ta, distinct rel ids.
    assert!(matches!(plan, LogicalPlan::Batch { .. }));
    assert_eq!(ctx.rel_count(), 2);
    assert_eq!(plan.rels().len(), 2);
}

fn plan_visit(plan: &LogicalPlan, f: &mut impl FnMut(&LogicalPlan)) {
    fn go(p: &LogicalPlan, f: &mut dyn FnMut(&LogicalPlan)) {
        f(p);
        match p {
            LogicalPlan::Get { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Aggregate { input, .. } => go(input, f),
            LogicalPlan::Join { left, right, .. } => {
                go(left, f);
                go(right, f);
            }
            LogicalPlan::Batch { children } => {
                for c in children {
                    go(c, f);
                }
            }
        }
    }
    go(plan, f);
}
