//! # cse-sql
//!
//! SQL front end for the supported subset: lexer, recursive-descent
//! parser, and lowering into logical plans over globally-identified
//! columns. Batches share one plan context so similar subexpressions in
//! different statements can be detected and covered.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{AggName, BinOp, Expr, FromItem, SelectItem, SelectStmt, Statement};
pub use error::SqlError;
pub use lexer::{tokenize, Token};
pub use lower::{lower_batch_sql, SqlLowerer};
pub use parser::{parse_batch, parse_one};
