//! # cse-sql
//!
//! SQL front end for the supported subset: lexer, recursive-descent
//! parser, and lowering into logical plans over globally-identified
//! columns. Batches share one plan context so similar subexpressions in
//! different statements can be detected and covered.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod span;

pub use ast::{AggName, BinOp, Expr, ExprKind, FromItem, SelectItem, SelectStmt, Statement};
pub use error::SqlError;
pub use lexer::{tokenize, tokenize_spanned, LexError, Token};
pub use lower::{collect_conjunct_exprs, lower_batch_sql, LowerTrace, SqlLowerer};
pub use parser::{
    parse_batch, parse_batch_recovering, parse_one, ParseError, ParsedBatch, ParsedStatement,
};
pub use span::Span;
