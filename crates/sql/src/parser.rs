//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::lexer::{tokenize, Token};

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse a semicolon-separated batch of statements.
pub fn parse_batch(sql: &str) -> Result<Vec<Statement>, String> {
    let mut p = Parser {
        toks: tokenize(sql)?,
        pos: 0,
    };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat(&Token::Semi) {
            continue;
        }
        out.push(p.statement()?);
    }
    if out.is_empty() {
        return Err("empty batch".into());
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_one(sql: &str) -> Result<Statement, String> {
    let stmts = parse_batch(sql)?;
    if stmts.len() != 1 {
        return Err(format!("expected one statement, got {}", stmts.len()));
    }
    Ok(stmts.into_iter().next().expect("len checked"))
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, String> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), String> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(format!(
                "expected {t}, found {}",
                self.peek().map(|x| x.to_string()).unwrap_or("EOF".into())
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(format!(
                "expected {kw}, found {}",
                self.peek().map(|x| x.to_string()).unwrap_or("EOF".into())
            ))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found {other}")),
        }
    }

    fn statement(&mut self) -> Result<Statement, String> {
        if self.eat_kw("CREATE") {
            self.expect_kw("MATERIALIZED")?;
            self.expect_kw("VIEW")?;
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.select_stmt()?;
            return Ok(Statement::CreateMaterializedView { name, query });
        }
        Ok(Statement::Select(self.select_stmt()?))
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, String> {
        self.expect_kw("SELECT")?;
        let mut select = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                select.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(_)) = self.peek() {
                    // bare alias
                    Some(self.ident()?)
                } else {
                    None
                };
                select.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(_)) = self.peek() {
                Some(self.ident()?)
            } else {
                None
            };
            from.push(FromItem { table, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    /// expr := or_expr
    fn expr(&mut self) -> Result<Expr, String> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, String> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, String> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        // [NOT] BETWEEN a AND b
        let negated = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "NOT") {
            // lookahead for BETWEEN
            if matches!(self.toks.get(self.pos + 1), Some(Token::Keyword(k)) if k == "BETWEEN") {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, String> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Int(i) => Expr::Int(-i),
                Expr::Float(f) => Expr::Float(-f),
                other => Expr::Binary(BinOp::Sub, Box::new(Expr::Int(0)), Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.next()? {
            Token::Int(i) => Ok(Expr::Int(i)),
            Token::Float(f) => Ok(Expr::Float(f)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::LParen => {
                // Scalar subquery or parenthesized expression.
                if matches!(self.peek(), Some(Token::Keyword(k)) if k == "SELECT") {
                    let sub = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(k) if matches!(k.as_str(), "SUM" | "COUNT" | "MIN" | "MAX" | "AVG") => {
                self.expect(&Token::LParen)?;
                let func = match k.as_str() {
                    "SUM" => AggName::Sum,
                    "COUNT" => AggName::Count,
                    "MIN" => AggName::Min,
                    "MAX" => AggName::Max,
                    _ => AggName::Avg,
                };
                if func == AggName::Count && self.eat(&Token::Star) {
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Agg { func, arg: None });
                }
                // DISTINCT is recognized but unsupported.
                if self.eat_kw("DISTINCT") {
                    return Err("DISTINCT aggregates are not supported".into());
                }
                let arg = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                })
            }
            Token::Keyword(k) if k == "NULL" => Err("bare NULL literal not supported".into()),
            Token::Ident(first) => {
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(first),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => Err(format!("unexpected token {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let sql = "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, \
                   sum(l_quantity) as lq \
                   from customer, orders, lineitem \
                   where c_custkey = o_custkey and o_orderkey = l_orderkey \
                   and o_orderdate < '1996-07-01' \
                   and c_nationkey > 0 and c_nationkey < 20 \
                   group by c_nationkey, c_mktsegment";
        let stmt = parse_one(sql).unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert_eq!(s.select.len(), 4);
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.group_by.len(), 2);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_batches() {
        let stmts = parse_batch("select a from t; select b from u;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parses_scalar_subquery() {
        let sql = "select c_nationkey, sum(l_discount) as totaldisc \
                   from customer, orders, lineitem \
                   where c_custkey = o_custkey \
                   group by c_nationkey \
                   having sum(l_discount) > (select sum(l_discount) / 25 from lineitem) \
                   order by totaldisc desc";
        let stmt = parse_one(sql).unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(s.having, Some(Expr::Binary(BinOp::Gt, _, _))));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1);
    }

    #[test]
    fn parses_star_and_aliases() {
        let stmt = parse_one("select * from customer c, orders o where c.c_custkey = o.o_custkey")
            .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.select, vec![SelectItem::Star]);
        assert_eq!(s.from[0].alias.as_deref(), Some("c"));
    }

    #[test]
    fn parses_count_star_and_avg() {
        let stmt = parse_one("select count(*), avg(x) from t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.select.len(), 2);
    }

    #[test]
    fn parses_between() {
        let stmt = parse_one("select a from t where a between 1 and 5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(s.where_clause, Some(Expr::Between { .. })));
    }

    #[test]
    fn parses_create_materialized_view() {
        let stmt = parse_one("create materialized view v1 as select a from t").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateMaterializedView { ref name, .. } if name == "v1"
        ));
    }

    #[test]
    fn operator_precedence() {
        let stmt = parse_one("select a from t where a < 1 + 2 * 3 and b = 4 or c = 5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        // (a < 7-ish AND b=4) OR c=5 — top must be OR.
        assert!(matches!(s.where_clause, Some(Expr::Or(_, _))));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_one("selec a from t").is_err());
        assert!(parse_one("select from t").is_err());
        assert!(parse_batch("").is_err());
    }
}
