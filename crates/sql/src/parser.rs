//! Recursive-descent parser for the SQL subset.
//!
//! Two entry points: [`parse_batch`] (strict — any error fails the whole
//! batch) and [`parse_batch_recovering`] (lint-friendly — a statement
//! that fails to parse produces one [`ParseError`] and the parser skips
//! to the next `;` so every other statement in the batch still parses).
//! All errors carry byte spans into the source.

use crate::ast::*;
use crate::lexer::{tokenize_spanned, Token};
use crate::span::Span;
use std::fmt;

/// A parse failure with the byte range it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at bytes {}", self.message, self.span)
    }
}

/// One successfully parsed statement of a recovering batch parse.
#[derive(Debug, Clone)]
pub struct ParsedStatement {
    pub stmt: Statement,
    /// Ordinal of the statement within the batch, counting statements that
    /// failed to parse (so indices match source order).
    pub index: usize,
    /// Byte span of the statement text (excluding the trailing `;`).
    pub span: Span,
}

/// Result of [`parse_batch_recovering`]: everything that parsed plus one
/// error per statement that didn't.
#[derive(Debug, Clone, Default)]
pub struct ParsedBatch {
    pub statements: Vec<ParsedStatement>,
    pub errors: Vec<ParseError>,
}

pub struct Parser {
    toks: Vec<Token>,
    spans: Vec<Span>,
    pos: usize,
    /// Byte length of the input (for end-of-input error spans).
    eof: usize,
}

/// Parse a semicolon-separated batch, recovering at statement boundaries:
/// on an error the parser records it and skips past the next `;`, so one
/// bad statement yields one diagnostic instead of aborting the batch.
pub fn parse_batch_recovering(sql: &str) -> ParsedBatch {
    let spanned = match tokenize_spanned(sql) {
        Ok(t) => t,
        Err(e) => {
            return ParsedBatch {
                statements: Vec::new(),
                errors: vec![ParseError {
                    message: e.message,
                    span: e.span,
                }],
            }
        }
    };
    let (toks, spans): (Vec<Token>, Vec<Span>) = spanned.into_iter().unzip();
    let mut p = Parser {
        toks,
        spans,
        pos: 0,
        eof: sql.len(),
    };
    let mut out = ParsedBatch::default();
    let mut index = 0usize;
    while !p.at_end() {
        if p.eat(&Token::Semi) {
            continue;
        }
        let start = p.cur_span();
        match p.statement() {
            Ok(stmt) => {
                out.statements.push(ParsedStatement {
                    stmt,
                    index,
                    span: start.merge(p.prev_span()),
                });
            }
            Err(e) => {
                out.errors.push(e);
                p.recover_to_semi();
            }
        }
        index += 1;
    }
    out
}

/// Parse a semicolon-separated batch of statements (strict: the first
/// error fails the whole batch).
pub fn parse_batch(sql: &str) -> Result<Vec<Statement>, String> {
    let batch = parse_batch_recovering(sql);
    if let Some(e) = batch.errors.first() {
        return Err(e.to_string());
    }
    if batch.statements.is_empty() {
        return Err("empty batch".into());
    }
    Ok(batch.statements.into_iter().map(|s| s.stmt).collect())
}

/// Parse exactly one statement.
pub fn parse_one(sql: &str) -> Result<Statement, String> {
    let stmts = parse_batch(sql)?;
    if stmts.len() != 1 {
        return Err(format!("expected one statement, got {}", stmts.len()));
    }
    Ok(stmts.into_iter().next().expect("len checked"))
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    /// Span of the token at the cursor (or a zero-width span at EOF).
    fn cur_span(&self) -> Span {
        self.spans
            .get(self.pos)
            .copied()
            .unwrap_or_else(|| Span::point(self.eof))
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        if self.pos == 0 {
            Span::point(0)
        } else {
            self.spans
                .get(self.pos - 1)
                .copied()
                .unwrap_or_else(|| Span::point(self.eof))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.cur_span(),
        }
    }

    /// Skip forward past the next `;` (statement-level error recovery).
    fn recover_to_semi(&mut self) {
        while !self.at_end() {
            let is_semi = matches!(self.peek(), Some(Token::Semi));
            self.pos += 1;
            if is_semi {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {t}, found {}",
                self.peek().map(|x| x.to_string()).unwrap_or("EOF".into())
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {kw}, found {}",
                self.peek().map(|x| x.to_string()).unwrap_or("EOF".into())
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.next()? {
                Token::Ident(s) => Ok(s),
                other => Err(self.err(format!(
                    "internal: token stream advanced unexpectedly (peeked identifier, got {other})"
                ))),
            },
            Some(other) => Err(self.err(format!("expected identifier, found {other}"))),
            None => Err(self.err("expected identifier, found EOF")),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_kw("CREATE") {
            self.expect_kw("MATERIALIZED")?;
            self.expect_kw("VIEW")?;
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.select_stmt()?;
            return Ok(Statement::CreateMaterializedView { name, query });
        }
        Ok(Statement::Select(self.select_stmt()?))
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        let start = self.cur_span();
        self.expect_kw("SELECT")?;
        let mut select = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                select.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(_)) = self.peek() {
                    // bare alias
                    Some(self.ident()?)
                } else {
                    None
                };
                select.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let item_start = self.cur_span();
            let table = self.ident()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(_)) = self.peek() {
                Some(self.ident()?)
            } else {
                None
            };
            from.push(FromItem {
                table,
                alias,
                span: item_start.merge(self.prev_span()),
            });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            span: start.merge(self.prev_span()),
        })
    }

    /// expr := or_expr
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Or(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::And(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur_span();
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            let span = start.merge(inner.span);
            return Ok(Expr::new(ExprKind::Not(Box::new(inner)), span));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let span = lhs.span.merge(self.prev_span());
            return Ok(Expr::new(ExprKind::IsNull(Box::new(lhs), negated), span));
        }
        // [NOT] BETWEEN a AND b
        let negated = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "NOT") {
            // lookahead for BETWEEN
            if matches!(self.toks.get(self.pos + 1), Some(Token::Keyword(k)) if k == "BETWEEN") {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            let span = lhs.span.merge(hi.span);
            return Ok(Expr::new(
                ExprKind::Between {
                    expr: Box::new(lhs),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                },
                span,
            ));
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(
            ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur_span();
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            let span = start.merge(inner.span);
            return Ok(match inner.kind {
                ExprKind::Int(i) => Expr::new(ExprKind::Int(-i), span),
                ExprKind::Float(f) => Expr::new(ExprKind::Float(-f), span),
                other => Expr::new(
                    ExprKind::Binary(
                        BinOp::Sub,
                        Box::new(Expr::new(ExprKind::Int(0), start)),
                        Box::new(Expr::new(other, inner.span)),
                    ),
                    span,
                ),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.cur_span();
        match self.next()? {
            Token::Int(i) => Ok(Expr::new(ExprKind::Int(i), start)),
            Token::Float(f) => Ok(Expr::new(ExprKind::Float(f), start)),
            Token::Str(s) => Ok(Expr::new(ExprKind::Str(s), start)),
            Token::LParen => {
                // Scalar subquery or parenthesized expression.
                if matches!(self.peek(), Some(Token::Keyword(k)) if k == "SELECT") {
                    let sub = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    let span = start.merge(self.prev_span());
                    return Ok(Expr::new(ExprKind::Subquery(Box::new(sub)), span));
                }
                let mut e = self.expr()?;
                self.expect(&Token::RParen)?;
                // Widen to cover the parentheses.
                e.span = start.merge(self.prev_span());
                Ok(e)
            }
            Token::Keyword(k) if matches!(k.as_str(), "SUM" | "COUNT" | "MIN" | "MAX" | "AVG") => {
                self.expect(&Token::LParen)?;
                let func = match k.as_str() {
                    "SUM" => AggName::Sum,
                    "COUNT" => AggName::Count,
                    "MIN" => AggName::Min,
                    "MAX" => AggName::Max,
                    _ => AggName::Avg,
                };
                if func == AggName::Count && self.eat(&Token::Star) {
                    self.expect(&Token::RParen)?;
                    let span = start.merge(self.prev_span());
                    return Ok(Expr::new(ExprKind::Agg { func, arg: None }, span));
                }
                // DISTINCT is recognized but unsupported.
                if self.eat_kw("DISTINCT") {
                    return Err(ParseError {
                        message: "DISTINCT aggregates are not supported".into(),
                        span: self.prev_span(),
                    });
                }
                let arg = self.expr()?;
                self.expect(&Token::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(
                    ExprKind::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                    },
                    span,
                ))
            }
            Token::Keyword(k) if k == "NULL" => Err(ParseError {
                message: "bare NULL literal not supported".into(),
                span: start,
            }),
            Token::Ident(first) => {
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    let span = start.merge(self.prev_span());
                    Ok(Expr::new(
                        ExprKind::Column {
                            qualifier: Some(first),
                            name: col,
                        },
                        span,
                    ))
                } else {
                    Ok(Expr::new(
                        ExprKind::Column {
                            qualifier: None,
                            name: first,
                        },
                        start,
                    ))
                }
            }
            other => Err(ParseError {
                message: format!("unexpected token {other}"),
                span: start,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let sql = "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, \
                   sum(l_quantity) as lq \
                   from customer, orders, lineitem \
                   where c_custkey = o_custkey and o_orderkey = l_orderkey \
                   and o_orderdate < '1996-07-01' \
                   and c_nationkey > 0 and c_nationkey < 20 \
                   group by c_nationkey, c_mktsegment";
        let stmt = parse_one(sql).unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert_eq!(s.select.len(), 4);
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.group_by.len(), 2);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_batches() {
        let stmts = parse_batch("select a from t; select b from u;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parses_scalar_subquery() {
        let sql = "select c_nationkey, sum(l_discount) as totaldisc \
                   from customer, orders, lineitem \
                   where c_custkey = o_custkey \
                   group by c_nationkey \
                   having sum(l_discount) > (select sum(l_discount) / 25 from lineitem) \
                   order by totaldisc desc";
        let stmt = parse_one(sql).unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(
            s.having.as_ref().map(|e| &e.kind),
            Some(ExprKind::Binary(BinOp::Gt, _, _))
        ));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1);
    }

    #[test]
    fn parses_star_and_aliases() {
        let stmt = parse_one("select * from customer c, orders o where c.c_custkey = o.o_custkey")
            .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.select, vec![SelectItem::Star]);
        assert_eq!(s.from[0].alias.as_deref(), Some("c"));
    }

    #[test]
    fn parses_count_star_and_avg() {
        let stmt = parse_one("select count(*), avg(x) from t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.select.len(), 2);
    }

    #[test]
    fn parses_between() {
        let stmt = parse_one("select a from t where a between 1 and 5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(
            s.where_clause.as_ref().map(|e| &e.kind),
            Some(ExprKind::Between { .. })
        ));
    }

    #[test]
    fn parses_create_materialized_view() {
        let stmt = parse_one("create materialized view v1 as select a from t").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateMaterializedView { ref name, .. } if name == "v1"
        ));
    }

    #[test]
    fn operator_precedence() {
        let stmt = parse_one("select a from t where a < 1 + 2 * 3 and b = 4 or c = 5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        // (a < 7-ish AND b=4) OR c=5 — top must be OR.
        assert!(matches!(
            s.where_clause.as_ref().map(|e| &e.kind),
            Some(ExprKind::Or(_, _))
        ));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_one("selec a from t").is_err());
        assert!(parse_one("select from t").is_err());
        assert!(parse_batch("").is_err());
    }

    #[test]
    fn expr_spans_point_at_source() {
        let sql = "select a from t where a < 5 and b >= 10";
        let Statement::Select(s) = parse_one(sql).unwrap() else {
            panic!()
        };
        let w = s.where_clause.unwrap();
        // The whole conjunction covers "a < 5 and b >= 10".
        assert_eq!(w.span.slice(sql), "a < 5 and b >= 10");
        let ExprKind::And(lhs, rhs) = w.kind else {
            panic!()
        };
        assert_eq!(lhs.span.slice(sql), "a < 5");
        assert_eq!(rhs.span.slice(sql), "b >= 10");
    }

    #[test]
    fn statement_and_from_spans() {
        let sql = "select a from t;  select b from u x;";
        let batch = parse_batch_recovering(sql);
        assert!(batch.errors.is_empty());
        assert_eq!(batch.statements.len(), 2);
        assert_eq!(batch.statements[0].span.slice(sql), "select a from t");
        assert_eq!(batch.statements[1].index, 1);
        assert_eq!(batch.statements[1].span.slice(sql), "select b from u x");
        let Statement::Select(s) = &batch.statements[1].stmt else {
            panic!()
        };
        assert_eq!(s.from[0].span.slice(sql), "u x");
    }

    #[test]
    fn parse_error_carries_span() {
        let sql = "select from t";
        let batch = parse_batch_recovering(sql);
        assert_eq!(batch.errors.len(), 1);
        let e = &batch.errors[0];
        // Error points at the FROM keyword where an expression was expected.
        assert_eq!(e.span.slice(sql), "from");
        assert!(e.message.contains("unexpected token"), "{e}");
    }

    #[test]
    fn recovers_past_two_distinct_errors() {
        // Four statements: #0 ok, #1 garbage head, #2 missing select list,
        // #3 ok. Recovery must surface exactly the two errors and both
        // good statements.
        let sql = "select a from t; \
                   selec oops from t; \
                   select from t; \
                   select b from u;";
        let batch = parse_batch_recovering(sql);
        assert_eq!(batch.statements.len(), 2, "{batch:?}");
        assert_eq!(batch.errors.len(), 2, "{batch:?}");
        assert_eq!(batch.statements[0].index, 0);
        assert_eq!(batch.statements[1].index, 3);
        // The two errors are distinct and each carries a span inside its
        // own statement.
        assert_ne!(batch.errors[0].message, batch.errors[1].message);
        assert!(batch.errors[0].span.start < batch.errors[1].span.start);
        // Strict mode still fails the whole batch.
        assert!(parse_batch(sql).is_err());
    }

    #[test]
    fn recovering_handles_lex_error() {
        let batch = parse_batch_recovering("select a from t where a ? 3");
        assert!(batch.statements.is_empty());
        assert_eq!(batch.errors.len(), 1);
        assert!(batch.errors[0].message.contains("unexpected character"));
    }
}
