//! Abstract syntax tree for the supported SQL subset.
//!
//! Every expression node carries the byte [`Span`] of the source text it
//! was parsed from, so downstream analyzers (the `cse-lint` frontend
//! linter in particular) can point diagnostics at exact offsets. Spans
//! are *metadata*: equality of AST nodes deliberately ignores them, so
//! a statement parsed from re-rendered SQL compares equal to the
//! original.

use crate::span::Span;

/// Binary operators in the AST (comparisons and arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    Sum,
    Count,
    Min,
    Max,
    Avg,
}

/// Expression shapes (the payload of [`Expr`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `qualifier.column` or bare `column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Int(i64),
    Float(f64),
    Str(String),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>, /*negated=*/ bool),
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    /// `SUM(x)`, `COUNT(*)`, ...
    Agg {
        func: AggName,
        arg: Option<Box<Expr>>, // None = COUNT(*)
    },
    /// Uncorrelated scalar subquery.
    Subquery(Box<SelectStmt>),
}

/// An expression together with the source span it was parsed from.
#[derive(Debug, Clone)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

// Equality ignores spans: the same expression parsed from different
// offsets (or from re-rendered SQL) compares equal.
impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM.
#[derive(Debug, Clone)]
pub struct FromItem {
    pub table: String,
    pub alias: Option<String>,
    /// Span of `table [AS alias]` in the source.
    pub span: Span,
}

impl PartialEq for FromItem {
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table && self.alias == other.alias
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, Default)]
pub struct SelectStmt {
    pub select: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, /*desc=*/ bool)>,
    /// Span of the whole statement in the source.
    pub span: Span,
}

impl PartialEq for SelectStmt {
    fn eq(&self, other: &Self) -> bool {
        self.select == other.select
            && self.from == other.from
            && self.where_clause == other.where_clause
            && self.group_by == other.group_by
            && self.having == other.having
            && self.order_by == other.order_by
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `CREATE MATERIALIZED VIEW name AS SELECT ...`
    CreateMaterializedView {
        name: String,
        query: SelectStmt,
    },
}
