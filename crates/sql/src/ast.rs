//! Abstract syntax tree for the supported SQL subset.

/// Binary operators in the AST (comparisons and arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    Sum,
    Count,
    Min,
    Max,
    Avg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `qualifier.column` or bare `column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Int(i64),
    Float(f64),
    Str(String),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>, /*negated=*/ bool),
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    /// `SUM(x)`, `COUNT(*)`, ...
    Agg {
        func: AggName,
        arg: Option<Box<Expr>>, // None = COUNT(*)
    },
    /// Uncorrelated scalar subquery.
    Subquery(Box<SelectStmt>),
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub table: String,
    pub alias: Option<String>,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub select: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, /*desc=*/ bool)>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `CREATE MATERIALIZED VIEW name AS SELECT ...`
    CreateMaterializedView {
        name: String,
        query: SelectStmt,
    },
}
