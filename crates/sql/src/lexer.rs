//! SQL tokenizer.

use std::fmt;

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Keywords are uppercased identifiers from the reserved list.
    Keyword(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "AS",
    "AND",
    "OR",
    "NOT",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "AVG",
    "ASC",
    "DESC",
    "IS",
    "NULL",
    "BETWEEN",
    "CREATE",
    "MATERIALIZED",
    "VIEW",
    "DISTINCT",
];

/// Tokenize SQL text. Returns an error message with position on bad input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Token::Ne);
                i += 2;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(format!("unterminated string literal at byte {i}"));
                    }
                    if bytes[j] == b'\'' {
                        // doubled quote = escaped quote
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !seen_dot))
                {
                    if bytes[i] == b'.' {
                        // Don't eat "1." in "1.x" (no such syntax here, but safe).
                        if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                            break;
                        }
                        seen_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if seen_dot {
                    out.push(Token::Float(
                        text.parse().map_err(|e| format!("bad float {text}: {e}"))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse().map_err(|e| format!("bad int {text}: {e}"))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == 'Δ' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
            }
            c if (c as u32) >= 0x80 => {
                // Unicode identifier start (delta tables: Δcustomer+ is
                // registered programmatically, not parsed; but accept the
                // bytes as part of identifiers).
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(format!("unexpected character '{other}' at byte {i}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("select a, b from t where a < 10").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("'1996-07-01' 'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("1996-07-01".into()));
        assert_eq!(toks[1], Token::Str("it's".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("3.5 42").unwrap();
        assert_eq!(toks[0], Token::Float(3.5));
        assert_eq!(toks[1], Token::Int(42));
    }

    #[test]
    fn operators() {
        let toks = tokenize("<= >= <> != = < >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Eq,
                Token::Lt,
                Token::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("select -- comment\n a").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("SeLeCt SUM").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("SUM".into()));
    }
}
