//! SQL tokenizer.

use crate::span::Span;
use std::fmt;

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Keywords are uppercased identifiers from the reserved list.
    Keyword(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// A lexing failure with the byte range it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.span.start)
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "AS",
    "AND",
    "OR",
    "NOT",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "AVG",
    "ASC",
    "DESC",
    "IS",
    "NULL",
    "BETWEEN",
    "CREATE",
    "MATERIALIZED",
    "VIEW",
    "DISTINCT",
];

/// Tokenize SQL text, returning each token with the half-open byte span
/// it was lexed from.
pub fn tokenize_spanned(input: &str) -> Result<Vec<(Token, Span)>, LexError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out: Vec<(Token, Span)> = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push((Token::Comma, Span::new(i, i + 1)));
                i += 1;
            }
            '.' => {
                out.push((Token::Dot, Span::new(i, i + 1)));
                i += 1;
            }
            '(' => {
                out.push((Token::LParen, Span::new(i, i + 1)));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, Span::new(i, i + 1)));
                i += 1;
            }
            ';' => {
                out.push((Token::Semi, Span::new(i, i + 1)));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, Span::new(i, i + 1)));
                i += 1;
            }
            '+' => {
                out.push((Token::Plus, Span::new(i, i + 1)));
                i += 1;
            }
            '-' => {
                out.push((Token::Minus, Span::new(i, i + 1)));
                i += 1;
            }
            '/' => {
                out.push((Token::Slash, Span::new(i, i + 1)));
                i += 1;
            }
            '=' => {
                out.push((Token::Eq, Span::new(i, i + 1)));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push((Token::Le, Span::new(i, i + 2)));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push((Token::Ne, Span::new(i, i + 2)));
                    i += 2;
                } else {
                    out.push((Token::Lt, Span::new(i, i + 1)));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push((Token::Ge, Span::new(i, i + 2)));
                    i += 2;
                } else {
                    out.push((Token::Gt, Span::new(i, i + 1)));
                    i += 1;
                }
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push((Token::Ne, Span::new(i, i + 2)));
                i += 2;
            }
            '\'' => {
                let quote = i;
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".to_string(),
                            span: Span::new(quote, bytes.len()),
                        });
                    }
                    if bytes[j] == b'\'' {
                        // doubled quote = escaped quote
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push((Token::Str(s), Span::new(quote, j + 1)));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !seen_dot))
                {
                    if bytes[i] == b'.' {
                        // Don't eat "1." in "1.x" (no such syntax here, but safe).
                        if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                            break;
                        }
                        seen_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let span = Span::new(start, i);
                if seen_dot {
                    let f = text.parse().map_err(|e| LexError {
                        message: format!("bad float {text}: {e}"),
                        span,
                    })?;
                    out.push((Token::Float(f), span));
                } else {
                    let n = text.parse().map_err(|e| LexError {
                        message: format!("bad int {text}: {e}"),
                        span,
                    })?;
                    out.push((Token::Int(n), span));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == 'Δ' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let span = Span::new(start, i);
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push((Token::Keyword(upper), span));
                } else {
                    out.push((Token::Ident(word.to_string()), span));
                }
            }
            c if (c as u32) >= 0x80 => {
                // Unicode identifier start (delta tables: Δcustomer+ is
                // registered programmatically, not parsed; but accept the
                // bytes as part of identifiers).
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                out.push((
                    Token::Ident(input[start..i].to_string()),
                    Span::new(start, i),
                ));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    span: Span::new(i, i + 1),
                })
            }
        }
    }
    Ok(out)
}

/// Tokenize SQL text. Returns an error message with position on bad input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    tokenize_spanned(input)
        .map(|toks| toks.into_iter().map(|(t, _)| t).collect())
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("select a, b from t where a < 10").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("'1996-07-01' 'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("1996-07-01".into()));
        assert_eq!(toks[1], Token::Str("it's".into()));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("3.5 42").unwrap();
        assert_eq!(toks[0], Token::Float(3.5));
        assert_eq!(toks[1], Token::Int(42));
    }

    #[test]
    fn operators() {
        let toks = tokenize("<= >= <> != = < >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Eq,
                Token::Lt,
                Token::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("select -- comment\n a").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("SeLeCt SUM").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("SUM".into()));
    }

    #[test]
    fn spans_index_source_bytes() {
        let src = "select a from t where a < 10";
        let toks = tokenize_spanned(src).unwrap();
        // Every span slices back to text that re-lexes to the same token.
        for (tok, span) in &toks {
            let text = span.slice(src);
            assert!(!text.is_empty(), "empty slice for {tok:?}");
            match tok {
                Token::Ident(s) => assert_eq!(text, s),
                Token::Int(i) => assert_eq!(text, i.to_string()),
                Token::Keyword(k) => assert_eq!(text.to_ascii_uppercase(), *k),
                _ => {}
            }
        }
        // `10` sits at the end of the input.
        let (last, span) = toks.last().unwrap();
        assert_eq!(*last, Token::Int(10));
        assert_eq!(span.to_pair(), (26, 28));
    }

    #[test]
    fn string_spans_include_quotes() {
        let src = "x = '1996-07-01'";
        let toks = tokenize_spanned(src).unwrap();
        let (tok, span) = &toks[2];
        assert_eq!(*tok, Token::Str("1996-07-01".into()));
        assert_eq!(span.slice(src), "'1996-07-01'");
    }

    #[test]
    fn lex_error_carries_span() {
        let err = tokenize_spanned("select a ? b").unwrap_err();
        assert_eq!(err.span.to_pair(), (9, 10));
        assert!(err.message.contains("unexpected character"));
    }
}
