//! Structured errors for the SQL front end.
//!
//! Lowering used to surface every failure as a bare `String`, which made it
//! impossible for callers to distinguish "the query is malformed" from "the
//! query is valid SQL we simply don't support yet" from "the lowerer has a
//! bug". [`SqlError`] keeps those apart while still converting into the
//! `String` errors the rest of the pipeline threads around.

use std::fmt;

/// What went wrong while parsing or lowering a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The lexer or parser rejected the input text.
    Parse(String),
    /// A name failed to resolve (unknown/ambiguous column, unknown table or
    /// alias) or a reference is illegal where it appears (bare column not in
    /// GROUP BY, aggregate below the aggregation level).
    Bind(String),
    /// Valid SQL outside the supported subset (e.g. correlated subqueries,
    /// `SELECT *` with GROUP BY, DDL through the query path).
    Unsupported(String),
    /// An invariant of the lowerer itself was violated — always a bug.
    Internal(String),
}

impl SqlError {
    /// Stable machine-readable tag, mirroring `cse-verify`'s rule ids.
    pub fn kind(&self) -> &'static str {
        match self {
            SqlError::Parse(_) => "parse",
            SqlError::Bind(_) => "bind",
            SqlError::Unsupported(_) => "unsupported",
            SqlError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Bind(m) => write!(f, "binding error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SqlError::Internal(m) => write!(f, "internal lowering error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// The optimizer pipeline still threads `Result<_, String>`; keep `?`
/// working at those call sites.
impl From<SqlError> for String {
    fn from(e: SqlError) -> String {
        e.to_string()
    }
}
