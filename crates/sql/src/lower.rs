//! Lowering: AST → logical plans over globally-identified columns.
//!
//! Each statement becomes one query block; a batch becomes a `Batch` plan
//! whose children share one [`PlanContext`], so similar subexpressions in
//! different statements can later be covered by one CSE. Uncorrelated
//! scalar subqueries become their own blocks cross-joined into the main
//! block (below the aggregate when referenced in WHERE, above it when
//! referenced in HAVING).

use crate::ast::*;
use crate::error::SqlError;
use crate::span::Span;
use cse_algebra::{
    AggExpr, AggFunc, ArithOp, BlockId, CmpOp, ColRef, LogicalPlan, PlanContext, RelId, Scalar,
    SortOrder,
};
use cse_storage::{Catalog, DataType, Value};

/// Side-channel the lowerer fills in for downstream analyzers: which
/// source spans the lowered predicate conjuncts and group keys came
/// from. Reset per top-level statement ([`SqlLowerer::lower_select`]);
/// nested subquery blocks append to the enclosing statement's trace.
#[derive(Debug, Clone, Default)]
pub struct LowerTrace {
    /// Normalized WHERE-level conjuncts with their source spans.
    pub pred_spans: Vec<(Scalar, Span)>,
    /// Group-by key columns with their source spans.
    pub key_spans: Vec<(ColRef, Span)>,
}

/// Lowers statements against a catalog, accumulating one shared context.
pub struct SqlLowerer<'a> {
    pub catalog: &'a Catalog,
    pub ctx: PlanContext,
    /// Span trace of the most recently lowered statement.
    pub trace: LowerTrace,
}

/// Lower a whole SQL batch: returns the shared context and a `Batch` plan
/// (single statements stay unwrapped).
pub fn lower_batch_sql(
    catalog: &Catalog,
    sql: &str,
) -> Result<(PlanContext, LogicalPlan), SqlError> {
    let stmts = crate::parser::parse_batch(sql).map_err(SqlError::Parse)?;
    let selects: Vec<SelectStmt> = stmts
        .into_iter()
        .map(|s| match s {
            Statement::Select(s) => Ok(s),
            Statement::CreateMaterializedView { .. } => Err(SqlError::Unsupported(
                "CREATE MATERIALIZED VIEW must go through the maintenance API".to_string(),
            )),
        })
        .collect::<Result<_, _>>()?;
    let mut lowerer = SqlLowerer::new(catalog);
    let mut children = Vec::with_capacity(selects.len());
    for s in &selects {
        children.push(lowerer.lower_select(s)?);
    }
    // A single statement stays unwrapped; `parse_batch` rejects empty input,
    // so popping here cannot fail — surface an Internal error instead of
    // panicking if that invariant ever breaks.
    let plan = if children.len() == 1 {
        children
            .pop()
            .ok_or_else(|| SqlError::Internal("single-statement batch vanished".into()))?
    } else {
        LogicalPlan::Batch { children }
    };
    Ok((lowerer.ctx, plan))
}

/// Scope entry: one FROM item.
struct ScopeRel {
    rel: RelId,
    key: String, // alias if present, else table name (lowercase)
}

/// How column/aggregate references resolve at the current level.
enum Mode<'m> {
    /// Below any aggregation: columns resolve directly, aggregates illegal.
    Pre,
    /// Above the aggregation: group keys pass through, aggregate instances
    /// map to output columns (or composites, e.g. AVG = SUM/COUNT).
    Post {
        keys: &'m [ColRef],
        aggs: &'m [AggExpr],
        out: RelId,
    },
}

impl<'a> SqlLowerer<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        SqlLowerer {
            catalog,
            ctx: PlanContext::new(),
            trace: LowerTrace::default(),
        }
    }

    /// Lower one SELECT statement into a plan rooted at a Project.
    pub fn lower_select(&mut self, stmt: &SelectStmt) -> Result<LogicalPlan, SqlError> {
        self.trace = LowerTrace::default();
        let block = self.ctx.new_block();
        self.lower_select_in_block(stmt, block)
    }

    fn lower_select_in_block(
        &mut self,
        stmt: &SelectStmt,
        block: BlockId,
    ) -> Result<LogicalPlan, SqlError> {
        // FROM: allocate rels.
        if stmt.from.is_empty() {
            return Err(SqlError::Unsupported("FROM clause is required".into()));
        }
        let mut scope: Vec<ScopeRel> = Vec::with_capacity(stmt.from.len());
        for f in &stmt.from {
            let entry = self
                .catalog
                .get(&f.table)
                .map_err(|e| SqlError::Bind(format!("in FROM: {e}")))?;
            let rel = self.ctx.add_base_rel(
                f.table.to_ascii_lowercase(),
                f.alias.clone().unwrap_or_else(|| f.table.clone()),
                entry.table.schema().clone(),
                block,
            );
            scope.push(ScopeRel {
                rel,
                key: f
                    .alias
                    .clone()
                    .unwrap_or_else(|| f.table.clone())
                    .to_ascii_lowercase(),
            });
        }

        // WHERE: lower predicate, pulling out scalar subqueries. Lower
        // top-level AST conjuncts one by one so each lowered conjunct can
        // be traced back to its source span (`Scalar::and` flattens, so
        // the combined predicate is identical to lowering the whole tree).
        let mut where_subs: Vec<LogicalPlan> = Vec::new();
        let where_pred = match &stmt.where_clause {
            Some(e) => {
                let mut parts: Vec<&Expr> = Vec::new();
                collect_conjunct_exprs(e, &mut parts);
                let mut lowered = Vec::with_capacity(parts.len());
                for part in parts {
                    let s = self.lower_pred_with_subs(part, &scope, &mut where_subs, block)?;
                    self.trace
                        .pred_spans
                        .push((s.clone().normalize(), part.span));
                    lowered.push(s);
                }
                Some(Scalar::and(lowered))
            }
            None => None,
        };

        // Build the join tree: filtered leaves joined left-deep in FROM
        // order, predicates attached at the lowest covering join.
        let conjuncts = where_pred.map(|p| p.conjuncts()).unwrap_or_default();
        let mut remaining: Vec<Scalar> = conjuncts;
        let mut plan: Option<LogicalPlan> = None;
        let mut covered = cse_algebra::RelSet::EMPTY;
        // Rel sets of the WHERE-level subqueries (cross-joined after base
        // rels so their conjuncts resolve).
        for (idx, s) in scope.iter().enumerate() {
            let mut leaf = LogicalPlan::get(s.rel);
            let leaf_set = cse_algebra::RelSet::single(s.rel);
            let local: Vec<Scalar> = extract_covered(&mut remaining, leaf_set);
            if !local.is_empty() {
                leaf = leaf.filter(Scalar::and(local));
            }
            covered = covered.union(leaf_set);
            plan = Some(match plan {
                None => leaf,
                Some(p) => {
                    let join_pred: Vec<Scalar> = extract_join_preds(&mut remaining, covered);
                    let _ = idx;
                    p.join(leaf, Scalar::and(join_pred).normalize())
                }
            });
        }
        let mut plan =
            plan.ok_or_else(|| SqlError::Internal("FROM produced no join tree".into()))?;
        // WHERE-level subqueries: cross join below the aggregate.
        for sub in where_subs {
            plan = plan.join(sub, Scalar::true_());
            covered = plan.rels();
            let more: Vec<Scalar> = extract_covered(&mut remaining, covered);
            if !more.is_empty() {
                plan = plan.filter(Scalar::and(more));
            }
        }
        if !remaining.is_empty() {
            // Conjuncts referencing unknown columns at this level.
            plan = plan.filter(Scalar::and(std::mem::take(&mut remaining)));
        }

        // Aggregation analysis.
        let has_group = !stmt.group_by.is_empty();
        let select_exprs: Vec<(&Expr, Option<&String>)> = stmt
            .select
            .iter()
            .flat_map(|item| match item {
                SelectItem::Star => Vec::new(),
                SelectItem::Expr { expr, alias } => vec![(expr, alias.as_ref())],
            })
            .collect();
        let any_agg = select_exprs.iter().any(|(e, _)| contains_agg(e))
            || stmt.having.as_ref().map(contains_agg).unwrap_or(false)
            || stmt.order_by.iter().any(|(e, _)| contains_agg(e));

        if !(has_group || any_agg) {
            // Pure SPJ statement.
            return self.finish_spj(stmt, plan, &scope, block);
        }
        if stmt.select.iter().any(|i| matches!(i, SelectItem::Star)) {
            return Err(SqlError::Unsupported(
                "SELECT * cannot be combined with GROUP BY".into(),
            ));
        }

        // Group keys.
        let mut keys: Vec<ColRef> = Vec::new();
        for g in &stmt.group_by {
            match self.lower_expr(g, &scope, &Mode::Pre)? {
                Scalar::Col(c) => {
                    self.trace.key_spans.push((c, g.span));
                    if !keys.contains(&c) {
                        keys.push(c)
                    }
                }
                other => {
                    return Err(SqlError::Unsupported(format!(
                        "GROUP BY must list columns, got {other}"
                    )))
                }
            }
        }
        // Collect aggregate expressions from select + having + order by.
        let mut aggs: Vec<AggExpr> = Vec::new();
        for (e, _) in &select_exprs {
            self.collect_aggs(e, &scope, &mut aggs)?;
        }
        if let Some(h) = &stmt.having {
            self.collect_aggs(h, &scope, &mut aggs)?;
        }
        for (e, _) in &stmt.order_by {
            self.collect_aggs(e, &scope, &mut aggs)?;
        }
        let types: Vec<DataType> = aggs.iter().map(|a| self.ctx.agg_type(a)).collect();
        let out = self.ctx.add_agg_output(&types, block);
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            keys: keys.clone(),
            aggs: aggs.clone(),
            out,
        };

        // HAVING (post-agg mode; subqueries cross-join above the aggregate).
        if let Some(h) = &stmt.having {
            let mut having_subs: Vec<LogicalPlan> = Vec::new();
            let pred =
                self.lower_post_with_subs(h, &scope, &keys, &aggs, out, &mut having_subs, block)?;
            for sub in having_subs {
                plan = plan.join(sub, Scalar::true_());
            }
            plan = plan.filter(pred);
        }

        // SELECT list (post-agg mode).
        let mut exprs: Vec<(String, Scalar)> = Vec::with_capacity(select_exprs.len());
        for (e, alias) in &select_exprs {
            let s = self.lower_expr(
                e,
                &scope,
                &Mode::Post {
                    keys: &keys,
                    aggs: &aggs,
                    out,
                },
            )?;
            exprs.push((
                self.output_name(e, alias.map(|a| a.as_str()), exprs.len()),
                s,
            ));
        }

        // ORDER BY (post-agg; aliases resolve to select expressions).
        if !stmt.order_by.is_empty() {
            let mut sort_keys = Vec::with_capacity(stmt.order_by.len());
            for (e, desc) in &stmt.order_by {
                let s = match self.resolve_alias(e, &exprs) {
                    Some(s) => s,
                    None => self.lower_expr(
                        e,
                        &scope,
                        &Mode::Post {
                            keys: &keys,
                            aggs: &aggs,
                            out,
                        },
                    )?,
                };
                sort_keys.push((
                    s,
                    if *desc {
                        SortOrder::Desc
                    } else {
                        SortOrder::Asc
                    },
                ));
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }
        Ok(plan.project(exprs))
    }

    /// Finish a statement without aggregation: Sort (optional) + Project.
    fn finish_spj(
        &mut self,
        stmt: &SelectStmt,
        mut plan: LogicalPlan,
        scope: &[ScopeRel],
        _block: BlockId,
    ) -> Result<LogicalPlan, SqlError> {
        let mut exprs: Vec<(String, Scalar)> = Vec::new();
        for item in &stmt.select {
            match item {
                SelectItem::Star => {
                    for s in scope {
                        let schema = self.ctx.rel(s.rel).schema.clone();
                        for (i, col) in schema.columns().iter().enumerate() {
                            exprs.push((
                                col.name.clone(),
                                Scalar::Col(ColRef::new(s.rel, i as u16)),
                            ));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let s = self.lower_expr(expr, scope, &Mode::Pre)?;
                    exprs.push((self.output_name(expr, alias.as_deref(), exprs.len()), s));
                }
            }
        }
        if !stmt.order_by.is_empty() {
            let mut sort_keys = Vec::new();
            for (e, desc) in &stmt.order_by {
                let s = match self.resolve_alias(e, &exprs) {
                    Some(s) => s,
                    None => self.lower_expr(e, scope, &Mode::Pre)?,
                };
                sort_keys.push((
                    s,
                    if *desc {
                        SortOrder::Desc
                    } else {
                        SortOrder::Asc
                    },
                ));
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }
        Ok(plan.project(exprs))
    }

    /// ORDER BY aliases: `order by totaldisc desc` refers to a select item.
    fn resolve_alias(&self, e: &Expr, exprs: &[(String, Scalar)]) -> Option<Scalar> {
        if let ExprKind::Column {
            qualifier: None,
            name,
        } = &e.kind
        {
            return exprs
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, s)| s.clone());
        }
        None
    }

    fn output_name(&self, e: &Expr, alias: Option<&str>, idx: usize) -> String {
        if let Some(a) = alias {
            return a.to_string();
        }
        match &e.kind {
            ExprKind::Column { name, .. } => name.clone(),
            ExprKind::Agg { func, .. } => {
                format!("{func:?}").to_ascii_lowercase() + &idx.to_string()
            }
            _ => format!("col{idx}"),
        }
    }

    /// Lower a WHERE predicate, replacing scalar subqueries by references
    /// to their (cross-joined) single-row outputs.
    fn lower_pred_with_subs(
        &mut self,
        e: &Expr,
        scope: &[ScopeRel],
        subs: &mut Vec<LogicalPlan>,
        block: BlockId,
    ) -> Result<Scalar, SqlError> {
        // Subqueries are found during lowering; Mode::Pre forbids them, so
        // pre-walk and rewrite.
        self.lower_expr_subs(e, scope, &Mode::Pre, subs, block)
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_post_with_subs(
        &mut self,
        e: &Expr,
        scope: &[ScopeRel],
        keys: &[ColRef],
        aggs: &[AggExpr],
        out: RelId,
        subs: &mut Vec<LogicalPlan>,
        block: BlockId,
    ) -> Result<Scalar, SqlError> {
        let mode = Mode::Post { keys, aggs, out };
        self.lower_expr_subs(e, scope, &mode, subs, block)
    }

    /// Expression lowering with subquery extraction.
    fn lower_expr_subs(
        &mut self,
        e: &Expr,
        scope: &[ScopeRel],
        mode: &Mode<'_>,
        subs: &mut Vec<LogicalPlan>,
        block: BlockId,
    ) -> Result<Scalar, SqlError> {
        match &e.kind {
            ExprKind::Subquery(stmt) => {
                let (plan, value) = self.lower_scalar_subquery(stmt)?;
                let _ = block;
                subs.push(plan);
                Ok(value)
            }
            ExprKind::And(a, b) => Ok(Scalar::and([
                self.lower_expr_subs(a, scope, mode, subs, block)?,
                self.lower_expr_subs(b, scope, mode, subs, block)?,
            ])),
            ExprKind::Or(a, b) => Ok(Scalar::or([
                self.lower_expr_subs(a, scope, mode, subs, block)?,
                self.lower_expr_subs(b, scope, mode, subs, block)?,
            ])),
            ExprKind::Not(a) => Ok(Scalar::Not(Box::new(
                self.lower_expr_subs(a, scope, mode, subs, block)?,
            ))),
            ExprKind::Binary(op, a, b) => {
                let la = self.lower_expr_subs(a, scope, mode, subs, block)?;
                let lb = self.lower_expr_subs(b, scope, mode, subs, block)?;
                self.lower_binary(*op, la, lb)
            }
            _ => self.lower_expr(e, scope, mode),
        }
    }

    /// Lower an uncorrelated scalar subquery: must aggregate to one row.
    /// Returns its plan and the scalar referencing its single value.
    fn lower_scalar_subquery(
        &mut self,
        stmt: &SelectStmt,
    ) -> Result<(LogicalPlan, Scalar), SqlError> {
        if stmt.select.len() != 1 || !stmt.group_by.is_empty() {
            return Err(SqlError::Unsupported(
                "scalar subqueries must produce a single aggregated value".into(),
            ));
        }
        let expr = match &stmt.select[0] {
            SelectItem::Expr { expr, .. } => expr,
            SelectItem::Star => {
                return Err(SqlError::Unsupported(
                    "scalar subquery cannot select *".into(),
                ))
            }
        };
        if !contains_agg(expr) {
            return Err(SqlError::Unsupported(
                "scalar subqueries must be aggregates (single row)".into(),
            ));
        }
        let block = self.ctx.new_block();
        // Lower the subquery body without projection: we need the aggregate
        // outputs as global columns.
        let inner = SelectStmt {
            select: vec![stmt.select[0].clone()],
            from: stmt.from.clone(),
            where_clause: stmt.where_clause.clone(),
            group_by: vec![],
            having: None,
            order_by: vec![],
            span: stmt.span,
        };
        // Reuse the main path, then strip the Project and recover its expr.
        let lowered = self.lower_select_in_block(&inner, block)?;
        match lowered {
            LogicalPlan::Project { input, exprs } => {
                let value = exprs
                    .into_iter()
                    .next()
                    .map(|(_, s)| s)
                    .ok_or_else(|| SqlError::Internal("empty subquery projection".into()))?;
                Ok((*input, value))
            }
            _ => Err(SqlError::Internal(
                "subquery did not lower to a projection".into(),
            )),
        }
    }

    /// Lower a (sub)expression without subquery support.
    fn lower_expr(
        &mut self,
        e: &Expr,
        scope: &[ScopeRel],
        mode: &Mode<'_>,
    ) -> Result<Scalar, SqlError> {
        match &e.kind {
            ExprKind::Column { qualifier, name } => {
                let col = self.resolve_column(qualifier.as_deref(), name, scope)?;
                if let Mode::Post { keys, .. } = mode {
                    if !keys.contains(&col) {
                        return Err(SqlError::Bind(format!(
                            "column {name} must appear in GROUP BY or inside an aggregate"
                        )));
                    }
                }
                Ok(Scalar::Col(col))
            }
            ExprKind::Int(i) => Ok(Scalar::int(*i)),
            ExprKind::Float(f) => Ok(Scalar::lit(Value::Float(*f))),
            ExprKind::Str(s) => Ok(Scalar::lit(Value::str(s))),
            ExprKind::Binary(op, a, b) => {
                let la = self.lower_expr(a, scope, mode)?;
                let lb = self.lower_expr(b, scope, mode)?;
                self.lower_binary(*op, la, lb)
            }
            ExprKind::And(a, b) => Ok(Scalar::and([
                self.lower_expr(a, scope, mode)?,
                self.lower_expr(b, scope, mode)?,
            ])),
            ExprKind::Or(a, b) => Ok(Scalar::or([
                self.lower_expr(a, scope, mode)?,
                self.lower_expr(b, scope, mode)?,
            ])),
            ExprKind::Not(a) => Ok(Scalar::Not(Box::new(self.lower_expr(a, scope, mode)?))),
            ExprKind::IsNull(a, negated) => {
                let inner = Scalar::IsNull(Box::new(self.lower_expr(a, scope, mode)?));
                Ok(if *negated {
                    Scalar::Not(Box::new(inner))
                } else {
                    inner
                })
            }
            ExprKind::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let x = self.lower_expr(expr, scope, mode)?;
                let l = self.lower_expr(lo, scope, mode)?;
                let h = self.lower_expr(hi, scope, mode)?;
                let ge = self.lower_binary(BinOp::Ge, x.clone(), l)?;
                let le = self.lower_binary(BinOp::Le, x, h)?;
                let both = Scalar::and([ge, le]);
                Ok(if *negated {
                    Scalar::Not(Box::new(both))
                } else {
                    both
                })
            }
            ExprKind::Agg { func, arg } => match mode {
                Mode::Pre => Err(SqlError::Bind("aggregate not allowed here".into())),
                Mode::Post { aggs, out, .. } => {
                    let replacement =
                        self.agg_replacement(*func, arg.as_deref(), scope, aggs, *out)?;
                    Ok(replacement)
                }
            },
            ExprKind::Subquery(_) => Err(SqlError::Unsupported(
                "subquery not allowed in this position".into(),
            )),
        }
    }

    fn lower_binary(&self, op: BinOp, mut a: Scalar, mut b: Scalar) -> Result<Scalar, SqlError> {
        // Date coercion: comparing a Date column with a string literal.
        let coerce = |col: &Scalar, lit: &mut Scalar, ctx: &PlanContext| {
            if let (Scalar::Col(c), Scalar::Lit(Value::Str(s))) = (col, &*lit) {
                if ctx.col_type(*c) == DataType::Date {
                    if let Some(d) = Value::date(s) {
                        *lit = Scalar::Lit(d);
                    }
                }
            }
        };
        coerce(&a, &mut b, &self.ctx);
        coerce(&b, &mut a, &self.ctx);
        Ok(match op {
            BinOp::Eq => Scalar::cmp(CmpOp::Eq, a, b),
            BinOp::Ne => Scalar::cmp(CmpOp::Ne, a, b),
            BinOp::Lt => Scalar::cmp(CmpOp::Lt, a, b),
            BinOp::Le => Scalar::cmp(CmpOp::Le, a, b),
            BinOp::Gt => Scalar::cmp(CmpOp::Gt, a, b),
            BinOp::Ge => Scalar::cmp(CmpOp::Ge, a, b),
            BinOp::Add => Scalar::Arith(ArithOp::Add, Box::new(a), Box::new(b)),
            BinOp::Sub => Scalar::Arith(ArithOp::Sub, Box::new(a), Box::new(b)),
            BinOp::Mul => Scalar::Arith(ArithOp::Mul, Box::new(a), Box::new(b)),
            BinOp::Div => Scalar::Arith(ArithOp::Div, Box::new(a), Box::new(b)),
        })
    }

    /// Position of an aggregate in the collected list → output column (AVG
    /// expands to SUM/COUNT).
    fn agg_replacement(
        &mut self,
        func: AggName,
        arg: Option<&Expr>,
        scope: &[ScopeRel],
        aggs: &[AggExpr],
        out: RelId,
    ) -> Result<Scalar, SqlError> {
        let find = |target: &AggExpr| -> Result<u16, SqlError> {
            aggs.iter()
                .position(|a| a == target)
                .map(|i| i as u16)
                .ok_or_else(|| SqlError::Internal("aggregate not collected".to_string()))
        };
        match func {
            AggName::Avg => {
                let arg = arg.ok_or_else(|| SqlError::Bind("AVG requires an argument".into()))?;
                let larg = self.lower_expr(arg, scope, &Mode::Pre)?.normalize();
                let sum_i = find(&AggExpr::sum(larg.clone()))?;
                let cnt_i = find(&AggExpr::new(AggFunc::Count, larg))?;
                Ok(Scalar::Arith(
                    ArithOp::Div,
                    Box::new(Scalar::Col(ColRef::new(out, sum_i))),
                    Box::new(Scalar::Col(ColRef::new(out, cnt_i))),
                ))
            }
            _ => {
                let target = self.build_agg(func, arg, scope)?;
                let i = find(&target)?;
                Ok(Scalar::Col(ColRef::new(out, i)))
            }
        }
    }

    fn build_agg(
        &mut self,
        func: AggName,
        arg: Option<&Expr>,
        scope: &[ScopeRel],
    ) -> Result<AggExpr, SqlError> {
        Ok(match (func, arg) {
            (AggName::Count, None) => AggExpr::count_star(),
            (AggName::Count, Some(a)) => AggExpr::new(
                AggFunc::Count,
                self.lower_expr(a, scope, &Mode::Pre)?.normalize(),
            ),
            (AggName::Sum, Some(a)) => {
                AggExpr::sum(self.lower_expr(a, scope, &Mode::Pre)?.normalize())
            }
            (AggName::Min, Some(a)) => {
                AggExpr::min(self.lower_expr(a, scope, &Mode::Pre)?.normalize())
            }
            (AggName::Max, Some(a)) => {
                AggExpr::max(self.lower_expr(a, scope, &Mode::Pre)?.normalize())
            }
            (AggName::Avg, _) => {
                return Err(SqlError::Internal("AVG is decomposed by the caller".into()))
            }
            (f, None) => return Err(SqlError::Bind(format!("{f:?} requires an argument"))),
        })
    }

    /// Collect the aggregates an expression needs (AVG adds SUM + COUNT).
    fn collect_aggs(
        &mut self,
        e: &Expr,
        scope: &[ScopeRel],
        out: &mut Vec<AggExpr>,
    ) -> Result<(), SqlError> {
        match &e.kind {
            ExprKind::Agg { func, arg } => match func {
                AggName::Avg => {
                    let a = arg
                        .as_deref()
                        .ok_or_else(|| SqlError::Bind("AVG requires an argument".into()))?;
                    let larg = self.lower_expr(a, scope, &Mode::Pre)?.normalize();
                    for target in [
                        AggExpr::sum(larg.clone()),
                        AggExpr::new(AggFunc::Count, larg),
                    ] {
                        if !out.contains(&target) {
                            out.push(target);
                        }
                    }
                }
                _ => {
                    let target = self.build_agg(*func, arg.as_deref(), scope)?;
                    if !out.contains(&target) {
                        out.push(target);
                    }
                }
            },
            ExprKind::Binary(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
                self.collect_aggs(a, scope, out)?;
                self.collect_aggs(b, scope, out)?;
            }
            ExprKind::Not(a) | ExprKind::IsNull(a, _) => self.collect_aggs(a, scope, out)?,
            ExprKind::Between { expr, lo, hi, .. } => {
                self.collect_aggs(expr, scope, out)?;
                self.collect_aggs(lo, scope, out)?;
                self.collect_aggs(hi, scope, out)?;
            }
            // Subqueries keep their own aggregates.
            ExprKind::Subquery(_)
            | ExprKind::Column { .. }
            | ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_) => {}
        }
        Ok(())
    }

    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        scope: &[ScopeRel],
    ) -> Result<ColRef, SqlError> {
        match qualifier {
            Some(q) => {
                let q = q.to_ascii_lowercase();
                let s = scope
                    .iter()
                    .find(|s| s.key == q)
                    .ok_or_else(|| SqlError::Bind(format!("unknown table or alias '{q}'")))?;
                self.ctx
                    .resolve_col(s.rel, name)
                    .ok_or_else(|| SqlError::Bind(format!("unknown column '{q}.{name}'")))
            }
            None => {
                let mut found: Option<ColRef> = None;
                for s in scope {
                    if let Some(c) = self.ctx.resolve_col(s.rel, name) {
                        if found.is_some() {
                            return Err(SqlError::Bind(format!("ambiguous column '{name}'")));
                        }
                        found = Some(c);
                    }
                }
                found.ok_or_else(|| SqlError::Bind(format!("unknown column '{name}'")))
            }
        }
    }
}

/// Remove and return the conjuncts fully covered by `set`.
fn extract_covered(remaining: &mut Vec<Scalar>, set: cse_algebra::RelSet) -> Vec<Scalar> {
    let mut out = Vec::new();
    remaining.retain(|c| {
        if c.rels().is_subset(set) && !c.rels().is_empty() {
            out.push(c.clone());
            false
        } else {
            true
        }
    });
    out
}

/// Join predicates covered by the joined rel set (multi-rel only).
fn extract_join_preds(remaining: &mut Vec<Scalar>, covered: cse_algebra::RelSet) -> Vec<Scalar> {
    let mut out = Vec::new();
    remaining.retain(|c| {
        let r = c.rels();
        if !r.is_empty() && r.is_subset(covered) {
            out.push(c.clone());
            false
        } else {
            true
        }
    });
    out
}

fn contains_agg(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Agg { .. } => true,
        ExprKind::Binary(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
            contains_agg(a) || contains_agg(b)
        }
        ExprKind::Not(a) | ExprKind::IsNull(a, _) => contains_agg(a),
        ExprKind::Between { expr, lo, hi, .. } => {
            contains_agg(expr) || contains_agg(lo) || contains_agg(hi)
        }
        _ => false,
    }
}

/// Split an AST predicate into its top-level conjuncts (the `AND` spine).
pub fn collect_conjunct_exprs<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match &e.kind {
        ExprKind::And(a, b) => {
            collect_conjunct_exprs(a, out);
            collect_conjunct_exprs(b, out);
        }
        _ => out.push(e),
    }
}
