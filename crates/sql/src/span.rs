//! Byte spans into the original SQL text.
//!
//! Every token carries the half-open byte range `[start, end)` it was
//! lexed from; the parser merges token spans upward so every AST node —
//! and therefore every lint diagnostic derived from one — can point at
//! the exact source offsets it talks about.

use std::fmt;

/// A half-open byte range `[start, end)` into the analyzed SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub const ZERO: Span = Span { start: 0, end: 0 };

    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    /// Zero-width span at `at` (end-of-input errors).
    pub fn point(at: usize) -> Self {
        Span::new(at, at)
    }

    /// Smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        if other == Span::ZERO && self != Span::ZERO {
            return self;
        }
        if self == Span::ZERO {
            return other;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// As the `(start, end)` pair diagnostics carry.
    pub fn to_pair(self) -> (u32, u32) {
        (self.start, self.end)
    }

    /// The source text this span covers (empty if out of bounds).
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source
            .get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn merge_with_zero_is_identity() {
        let a = Span::new(3, 7);
        assert_eq!(a.merge(Span::ZERO), a);
        assert_eq!(Span::ZERO.merge(a), a);
    }

    #[test]
    fn slice_extracts_source() {
        let src = "select a from t";
        assert_eq!(Span::new(7, 8).slice(src), "a");
        assert_eq!(Span::new(7, 99).slice(src), "");
    }
}
