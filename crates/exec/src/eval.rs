//! Scalar and aggregate evaluation against physical row layouts.

use cse_algebra::{AggExpr, AggFunc, ArithOp, CmpOp, ColRef, Scalar};
use cse_storage::Value;
use std::collections::HashMap;

/// Maps global column ids to row positions for one operator's output.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    pos: HashMap<ColRef, usize>,
}

impl Layout {
    pub fn new(cols: &[ColRef]) -> Self {
        Layout {
            pos: cols.iter().enumerate().map(|(i, c)| (*c, i)).collect(),
        }
    }

    pub fn position(&self, c: ColRef) -> Option<usize> {
        self.pos.get(&c).copied()
    }

    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Evaluate a scalar expression over one row.
pub fn eval(s: &Scalar, layout: &Layout, row: &[Value]) -> Value {
    match s {
        Scalar::Col(c) => match layout.position(*c) {
            Some(i) => row[i].clone(),
            None => Value::Null,
        },
        Scalar::Lit(v) => v.clone(),
        Scalar::Cmp(op, a, b) => {
            let (va, vb) = (eval(a, layout, row), eval(b, layout, row));
            match va.sql_cmp(&vb) {
                None => Value::Null,
                Some(ord) => Value::Bool(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }),
            }
        }
        Scalar::And(parts) => {
            // Three-valued AND: false dominates, then null.
            let mut saw_null = false;
            for p in parts {
                match eval(p, layout, row) {
                    Value::Bool(false) => return Value::Bool(false),
                    Value::Bool(true) => {}
                    _ => saw_null = true,
                }
            }
            if saw_null {
                Value::Null
            } else {
                Value::Bool(true)
            }
        }
        Scalar::Or(parts) => {
            let mut saw_null = false;
            for p in parts {
                match eval(p, layout, row) {
                    Value::Bool(true) => return Value::Bool(true),
                    Value::Bool(false) => {}
                    _ => saw_null = true,
                }
            }
            if saw_null {
                Value::Null
            } else {
                Value::Bool(false)
            }
        }
        Scalar::Not(inner) => match eval(inner, layout, row) {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Null,
        },
        Scalar::Arith(op, a, b) => {
            let (va, vb) = (eval(a, layout, row), eval(b, layout, row));
            arith(*op, &va, &vb)
        }
        Scalar::IsNull(inner) => Value::Bool(eval(inner, layout, row).is_null()),
    }
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Value {
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    // Integer arithmetic stays integral except division.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return match op {
            ArithOp::Add => Value::Int(x + y),
            ArithOp::Sub => Value::Int(x - y),
            ArithOp::Mul => Value::Int(x * y),
            ArithOp::Div => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Float(*x as f64 / *y as f64)
                }
            }
        };
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => match op {
            ArithOp::Add => Value::Float(x + y),
            ArithOp::Sub => Value::Float(x - y),
            ArithOp::Mul => Value::Float(x * y),
            ArithOp::Div => {
                if y == 0.0 {
                    Value::Null
                } else {
                    Value::Float(x / y)
                }
            }
        },
        _ => Value::Null,
    }
}

/// Does the predicate accept this row (SQL semantics: NULL rejects)?
pub fn accepts(pred: &Scalar, layout: &Layout, row: &[Value]) -> bool {
    matches!(eval(pred, layout, row), Value::Bool(true))
}

/// Running state of one aggregate.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    sum_f: f64,
    sum_i: i64,
    int_only: bool,
    count: i64,
    extreme: Option<Value>,
    saw_value: bool,
}

impl AggState {
    pub fn new(func: AggFunc) -> Self {
        AggState {
            func,
            sum_f: 0.0,
            sum_i: 0,
            int_only: true,
            count: 0,
            extreme: None,
            saw_value: false,
        }
    }

    pub fn update(&mut self, v: &Value) {
        match self.func {
            AggFunc::CountStar => self.count += 1,
            AggFunc::Count => {
                if !v.is_null() {
                    self.count += 1;
                }
            }
            AggFunc::Sum => {
                if v.is_null() {
                    return;
                }
                self.saw_value = true;
                match v {
                    Value::Int(i) => {
                        self.sum_i += i;
                        self.sum_f += *i as f64;
                    }
                    _ => {
                        self.int_only = false;
                        if let Some(f) = v.as_f64() {
                            self.sum_f += f;
                        }
                    }
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if v.is_null() {
                    return;
                }
                self.saw_value = true;
                let better = match &self.extreme {
                    None => true,
                    Some(cur) => {
                        let ord = v.total_cmp(cur);
                        match self.func {
                            AggFunc::Min => ord.is_lt(),
                            _ => ord.is_gt(),
                        }
                    }
                };
                if better {
                    self.extreme = Some(v.clone());
                }
            }
        }
    }

    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Sum => {
                if !self.saw_value {
                    Value::Null
                } else if self.int_only {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggFunc::Min | AggFunc::Max => self.extreme.clone().unwrap_or(Value::Null),
        }
    }
}

/// Evaluate the argument of an aggregate for one row (CountStar has none).
pub fn agg_input(a: &AggExpr, layout: &Layout, row: &[Value]) -> Value {
    match &a.arg {
        Some(arg) => eval(arg, layout, row),
        None => Value::Int(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::RelId;

    fn layout2() -> Layout {
        Layout::new(&[ColRef::new(RelId(0), 0), ColRef::new(RelId(0), 1)])
    }

    #[test]
    fn col_and_cmp() {
        let l = layout2();
        let row = vec![Value::Int(5), Value::Int(9)];
        let p = Scalar::cmp(
            CmpOp::Lt,
            Scalar::col(RelId(0), 0),
            Scalar::col(RelId(0), 1),
        );
        assert!(accepts(&p, &l, &row));
        let q = Scalar::eq(Scalar::col(RelId(0), 0), Scalar::int(5));
        assert!(accepts(&q, &l, &row));
    }

    #[test]
    fn null_rejects() {
        let l = layout2();
        let row = vec![Value::Null, Value::Int(9)];
        let p = Scalar::cmp(CmpOp::Lt, Scalar::col(RelId(0), 0), Scalar::int(10));
        assert!(!accepts(&p, &l, &row));
    }

    #[test]
    fn three_valued_and_or() {
        let l = layout2();
        let row = vec![Value::Null, Value::Int(9)];
        let isnull = Scalar::cmp(CmpOp::Eq, Scalar::col(RelId(0), 0), Scalar::int(1));
        let true_p = Scalar::cmp(CmpOp::Lt, Scalar::col(RelId(0), 1), Scalar::int(10));
        // unknown AND true = unknown
        assert_eq!(
            eval(&Scalar::and([isnull.clone(), true_p.clone()]), &l, &row),
            Value::Null
        );
        // unknown OR true = true
        assert_eq!(
            eval(&Scalar::or([isnull, true_p]), &l, &row),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic() {
        let l = Layout::default();
        assert_eq!(
            eval(
                &Scalar::Arith(
                    ArithOp::Add,
                    Box::new(Scalar::int(2)),
                    Box::new(Scalar::int(3))
                ),
                &l,
                &[]
            ),
            Value::Int(5)
        );
        assert_eq!(
            eval(
                &Scalar::Arith(
                    ArithOp::Div,
                    Box::new(Scalar::int(7)),
                    Box::new(Scalar::int(2))
                ),
                &l,
                &[]
            ),
            Value::Float(3.5)
        );
        assert_eq!(
            eval(
                &Scalar::Arith(
                    ArithOp::Div,
                    Box::new(Scalar::int(7)),
                    Box::new(Scalar::int(0))
                ),
                &l,
                &[]
            ),
            Value::Null
        );
    }

    #[test]
    fn agg_sum_and_count() {
        let mut sum = AggState::new(AggFunc::Sum);
        let mut cnt = AggState::new(AggFunc::Count);
        for v in [Value::Int(1), Value::Null, Value::Int(4)] {
            sum.update(&v);
            cnt.update(&v);
        }
        assert_eq!(sum.finish(), Value::Int(5));
        assert_eq!(cnt.finish(), Value::Int(2));
    }

    #[test]
    fn agg_min_max_empty() {
        let mut mn = AggState::new(AggFunc::Min);
        assert_eq!(mn.finish(), Value::Null);
        mn.update(&Value::Int(3));
        mn.update(&Value::Int(-2));
        assert_eq!(mn.finish(), Value::Int(-2));
        let mut mx = AggState::new(AggFunc::Max);
        mx.update(&Value::Float(1.5));
        mx.update(&Value::Float(7.25));
        assert_eq!(mx.finish(), Value::Float(7.25));
    }

    #[test]
    fn sum_mixed_promotes_to_float() {
        let mut sum = AggState::new(AggFunc::Sum);
        sum.update(&Value::Int(1));
        sum.update(&Value::Float(0.5));
        assert_eq!(sum.finish(), Value::Float(1.5));
    }
}
