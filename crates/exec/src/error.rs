//! Structured errors for the interpreter.
//!
//! Execution used to report every failure as a bare `String` and panic on
//! some broken-invariant paths (e.g. a spool read before its definition was
//! computed). [`ExecError`] names each failure class, carries the spool id
//! where relevant, and converts into the `String` errors the session layer
//! threads around.

use cse_optimizer::CseId;
use std::fmt;

/// What went wrong while interpreting a physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The catalog rejected a table lookup (dropped or renamed since
    /// planning).
    Storage(String),
    /// The plan contains an operator shape the interpreter does not handle
    /// (interior `Project`, nested `Batch`).
    Unsupported(&'static str),
    /// A `CseRead` referenced a spool with no definition in the plan, or
    /// the spool failed to materialize before its first read.
    MissingSpool(CseId),
    /// A column required by an operator is absent from its input layout —
    /// always a planning bug.
    MissingColumn(String),
    /// A failpoint injected a fault at the named site (deterministic fault
    /// injection; armed only via configuration or `CSE_FAIL`).
    Injected { site: String },
    /// A per-statement materialization budget was breached (`what` is
    /// `"rows"` or `"bytes"`).
    ResourceBudget {
        what: &'static str,
        limit: usize,
        used: usize,
    },
    /// The request's global memory reservation could not grow: the shared
    /// pool ([`cse_govern::MemoryGovernor`]) is exhausted. Recoverable —
    /// the baseline retry charges without faulting, so cross-request
    /// memory pressure degrades the plan, never the answer.
    MemReservation { requested: usize, available: usize },
    /// The request's cancellation token fired mid-execution (`deadline`
    /// distinguishes an expired deadline from an explicit watchdog/client
    /// cancel). Never recovered in-engine: cancellation must stop the
    /// statement — baseline retry included — and bubble to the caller,
    /// which may resubmit with a fresh deadline.
    Canceled { deadline: bool },
}

impl ExecError {
    /// Can the statement be retried against the retained baseline plan?
    /// Injected faults and budget breaches are transient-by-construction;
    /// cancellation must abort, and everything else is a planning or
    /// catalog bug a retry cannot fix.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            ExecError::Injected { .. }
                | ExecError::ResourceBudget { .. }
                | ExecError::MemReservation { .. }
        )
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(m) => write!(f, "storage error: {m}"),
            ExecError::Unsupported(m) => write!(f, "unsupported plan shape: {m}"),
            ExecError::MissingSpool(id) => write!(f, "missing spool definition for {id}"),
            ExecError::MissingColumn(m) => write!(f, "column missing from layout: {m}"),
            ExecError::Injected { site } => write!(f, "injected fault at {site}"),
            ExecError::ResourceBudget { what, limit, used } => {
                write!(f, "{what} budget breached: {used} used, limit {limit}")
            }
            ExecError::MemReservation {
                requested,
                available,
            } => {
                write!(
                    f,
                    "memory reservation exhausted: requested {requested} bytes, {available} available in pool"
                )
            }
            ExecError::Canceled { deadline: true } => write!(f, "request deadline expired"),
            ExecError::Canceled { deadline: false } => write!(f, "request canceled"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The session and maintenance layers thread `Result<_, String>`; keep `?`
/// working at those call sites.
impl From<ExecError> for String {
    fn from(e: ExecError) -> String {
        e.to_string()
    }
}
