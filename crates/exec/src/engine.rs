//! The physical plan interpreter.
//!
//! Executes a [`FullPlan`]: spool work tables are computed at most once
//! (on first read) and shared by every consumer, which is precisely the
//! runtime behaviour the covering-subexpression optimization banks on.
//!
//! Execution is *governed*: [`Engine::execute_governed`] threads a
//! deterministic fault-injection registry and per-statement
//! materialization limits through the interpreter. When a spool faults or
//! a budget trips, the affected statement is retried against the retained
//! baseline plan (its original non-covering expression) and the recovery
//! is recorded in the result's provenance — a fault degrades the plan, it
//! never degrades the answer.

use crate::error::ExecError;
use crate::eval::{accepts, agg_input, eval, AggState, Layout};
use cse_algebra::{AggExpr, ColRef, PlanContext, SortOrder};
use cse_govern::{
    sites, CancelToken, DegradationEvent, ExecLimits, FailpointRegistry, MemReservation, MemScope,
    Reason, ReserveError,
};
use cse_optimizer::{CseId, FullPlan, PhysicalPlan};
use cse_storage::{Catalog, Row, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// A delivered result set (one per batch statement).
#[derive(Debug, Clone)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Recovery records for this statement: empty in the common case; one
    /// [`DegradationEvent`] per fault the statement was retried through.
    pub provenance: Vec<DegradationEvent>,
}

impl ResultSet {
    /// A result set with clean provenance.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet {
            columns,
            rows,
            provenance: Vec::new(),
        }
    }

    /// Canonical form for comparisons in tests: rows sorted by total order.
    pub fn canonicalized(mut self) -> ResultSet {
        self.rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if !o.is_eq() {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        self
    }

    /// Order-insensitive equality with a relative tolerance on floats.
    /// Plans that share subexpressions aggregate in stages, so float sums
    /// legitimately differ in the last bits from single-stage plans.
    ///
    /// Uses a default absolute epsilon floor of `1e-7`: staged aggregation
    /// can cancel to values near zero where a purely relative tolerance
    /// collapses to (almost) exact equality and spuriously fails. Use
    /// [`ResultSet::approx_eq_with`] to control the floor explicitly.
    pub fn approx_eq(&self, other: &ResultSet, rel_tol: f64) -> bool {
        self.approx_eq_with(other, rel_tol, 1e-7)
    }

    /// [`ResultSet::approx_eq`] with an explicit absolute epsilon floor:
    /// two floats match when `|x - y| <= abs_tol` **or**
    /// `|x - y| <= rel_tol · max(|x|, |y|, 1)`.
    pub fn approx_eq_with(&self, other: &ResultSet, rel_tol: f64, abs_tol: f64) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let a = self.clone().canonicalized();
        let b = other.clone().canonicalized();
        a.rows.iter().zip(b.rows.iter()).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb.iter()).all(|(x, y)| match (x, y) {
                    (Value::Float(_), _) | (_, Value::Float(_)) => match (x.as_f64(), y.as_f64()) {
                        (Some(fx), Some(fy)) => {
                            let diff = (fx - fy).abs();
                            let tol = rel_tol * fx.abs().max(fy.abs()).max(1.0);
                            diff <= abs_tol || diff <= tol
                        }
                        _ => false,
                    },
                    _ => x == y,
                })
        })
    }
}

/// Execution counters.
///
/// Under baseline-retry recovery these reflect the *final* attempt of each
/// statement only: a failed attempt's spool/scan/byte deltas are rolled
/// back before the retry, so dashboards see what actually produced the
/// answer, not work that was thrown away.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Rows produced into each spool work table.
    pub spool_rows: HashMap<CseId, usize>,
    /// Number of times each spool was read.
    pub spool_reads: HashMap<CseId, usize>,
    /// Approximate bytes held by each spool work table.
    pub spool_bytes: HashMap<CseId, usize>,
    /// Total rows scanned from base tables.
    pub base_rows_scanned: usize,
    /// Per-request high-water mark of approximate bytes materialized:
    /// the current statement's operator outputs plus all live spools.
    pub peak_bytes: usize,
}

/// Execution output: one result set per delivered statement plus metrics.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    pub results: Vec<ResultSet>,
    pub metrics: ExecMetrics,
    /// Every runtime recovery performed across the batch (union of the
    /// per-result provenance, in statement order).
    pub events: Vec<DegradationEvent>,
}

/// Intermediate rows + their layout.
struct Chunk {
    layout: Layout,
    cols: Vec<ColRef>,
    rows: Vec<Row>,
}

impl Chunk {
    fn new(cols: Vec<ColRef>, rows: Vec<Row>) -> Self {
        Chunk {
            layout: Layout::new(&cols),
            cols,
            rows,
        }
    }
}

/// The interpreter.
pub struct Engine<'a> {
    pub catalog: &'a Catalog,
    pub ctx: &'a PlanContext,
}

struct RunState<'p> {
    plan: &'p FullPlan,
    spools: HashMap<CseId, (Vec<ColRef>, Vec<Row>)>,
    metrics: ExecMetrics,
    failpoints: &'p FailpointRegistry,
    limits: &'p ExecLimits,
    /// Cooperative cancellation, checked at every operator boundary and
    /// every [`CANCEL_STRIDE`] rows inside the scan/join loops.
    cancel: &'p CancelToken,
    /// Rows / approximate bytes materialized by the current statement.
    rows_materialized: usize,
    bytes_materialized: usize,
    /// Approximate bytes held by live spools (sum of
    /// [`ExecMetrics::spool_bytes`], kept as a running total).
    spool_bytes_total: usize,
    /// Transient per-statement charge against the request's global memory
    /// reservation; recreated each statement so its bytes release on
    /// statement end. `None` when execution is not memory-governed.
    stmt_scope: Option<MemScope>,
    /// Charge for spool work tables, which outlive their statement; bytes
    /// are uncharged individually if a spool is rolled back.
    spool_scope: Option<MemScope>,
    /// Set while retrying a statement against its baseline plan: both
    /// fault injection and limits are suppressed so recovery always
    /// terminates — recovery prioritizes answering over governing.
    /// Cancellation is *not* suppressed: a watchdog must be able to stop
    /// a runaway baseline retry too. Memory-reservation charges switch to
    /// unchecked mode: the retry cannot fault, but a retry that outruns
    /// its grant becomes visible to the serving watchdog via
    /// [`MemReservation::over_grant`].
    recovering: bool,
}

/// Map a refused reservation charge into the interpreter's error space.
fn reserve_to_exec(e: ReserveError) -> ExecError {
    match e {
        ReserveError::Exhausted {
            requested,
            available,
        } => ExecError::MemReservation {
            requested,
            available,
        },
        ReserveError::Injected => ExecError::Injected {
            site: sites::MEM_RESERVE.to_string(),
        },
        ReserveError::Canceled { deadline } => ExecError::Canceled { deadline },
    }
}

/// How many rows an operator loop processes between cancellation checks.
/// A power of two so the check compiles to a mask + branch.
const CANCEL_STRIDE: usize = 4096;

impl RunState<'_> {
    /// Evaluate an armed failpoint at `site` (no-op while recovering).
    fn maybe_fail(&self, site: &str) -> Result<(), ExecError> {
        if !self.recovering && self.failpoints.should_fail(site) {
            return Err(ExecError::Injected {
                site: site.to_string(),
            });
        }
        Ok(())
    }

    /// Stop if the request was canceled or its deadline expired.
    fn check_cancel(&self) -> Result<(), ExecError> {
        if self.cancel.is_explicitly_canceled() {
            return Err(ExecError::Canceled { deadline: false });
        }
        if self.cancel.deadline_expired() {
            return Err(ExecError::Canceled { deadline: true });
        }
        Ok(())
    }

    /// Strided cancellation check for per-row loops.
    #[inline]
    fn check_cancel_at(&self, i: usize) -> Result<(), ExecError> {
        if i.is_multiple_of(CANCEL_STRIDE) {
            self.check_cancel()?;
        }
        Ok(())
    }

    /// Charge one operator's materialized output: the high-water metric
    /// and the global memory reservation always see it; the per-statement
    /// limits are enforced only outside recovery (recovery prioritizes
    /// answering over governing).
    fn charge(&mut self, rows: usize, bytes: usize) -> Result<(), ExecError> {
        self.rows_materialized += rows;
        self.bytes_materialized += bytes;
        let live = self.bytes_materialized + self.spool_bytes_total;
        self.metrics.peak_bytes = self.metrics.peak_bytes.max(live);
        if let Some(scope) = self.stmt_scope.as_mut() {
            if self.recovering {
                scope.charge_unchecked(bytes);
            } else {
                scope.charge(bytes).map_err(reserve_to_exec)?;
            }
        }
        if self.recovering || self.limits.is_unlimited() {
            return Ok(());
        }
        if let Some(cap) = self.limits.max_rows {
            if self.rows_materialized > cap {
                return Err(ExecError::ResourceBudget {
                    what: "rows",
                    limit: cap,
                    used: self.rows_materialized,
                });
            }
        }
        if let Some(cap) = self.limits.max_bytes {
            if self.bytes_materialized > cap {
                return Err(ExecError::ResourceBudget {
                    what: "bytes",
                    limit: cap,
                    used: self.bytes_materialized,
                });
            }
        }
        Ok(())
    }

    /// Replace the per-statement reservation scope with a fresh one,
    /// releasing the previous statement's transient bytes.
    fn reset_stmt_scope(&mut self) {
        self.stmt_scope = self.stmt_scope.take().map(|s| s.child());
    }

    /// Undo a failed attempt's side effects before the baseline retry:
    /// spools it materialized are dropped (and their reservation bytes
    /// returned), and metrics revert to the pre-attempt snapshot.
    fn rollback_attempt(&mut self, snapshot: &ExecMetrics) {
        let added: Vec<CseId> = self
            .spools
            .keys()
            .filter(|id| !snapshot.spool_rows.contains_key(id))
            .copied()
            .collect();
        for id in added {
            self.spools.remove(&id);
            let bytes = self.metrics.spool_bytes.get(&id).copied().unwrap_or(0);
            self.spool_bytes_total = self.spool_bytes_total.saturating_sub(bytes);
            if let Some(scope) = self.spool_scope.as_mut() {
                scope.uncharge(bytes);
            }
        }
        self.metrics = snapshot.clone();
    }
}

impl<'a> Engine<'a> {
    pub fn new(catalog: &'a Catalog, ctx: &'a PlanContext) -> Self {
        Engine { catalog, ctx }
    }

    /// Execute a full plan; batch roots deliver one result set per child.
    /// Ungoverned: no fault injection, no limits.
    pub fn execute(&self, plan: &FullPlan) -> Result<ExecOutput, ExecError> {
        self.execute_governed(plan, &FailpointRegistry::disabled(), &ExecLimits::none())
    }

    /// Execute under governance: armed failpoints may inject faults, and
    /// per-statement materialization limits are enforced. A recoverable
    /// failure (injected fault, budget breach) retries the affected
    /// statement against the retained baseline plan — or, when the plan
    /// has no retained baseline, against the same statement with
    /// governance suppressed — and records the recovery in both the
    /// result's provenance and [`ExecOutput::events`].
    pub fn execute_governed(
        &self,
        plan: &FullPlan,
        failpoints: &FailpointRegistry,
        limits: &ExecLimits,
    ) -> Result<ExecOutput, ExecError> {
        self.execute_with(plan, failpoints, limits, &CancelToken::never(), true)
    }

    /// [`Engine::execute_governed`] plus cooperative cancellation: the
    /// token is checked at every operator boundary and every
    /// [`CANCEL_STRIDE`] rows inside scans and joins, so a watchdog can
    /// stop a runaway batch without killing the executing thread.
    pub fn execute_cancelable(
        &self,
        plan: &FullPlan,
        failpoints: &FailpointRegistry,
        limits: &ExecLimits,
        cancel: &CancelToken,
    ) -> Result<ExecOutput, ExecError> {
        self.execute_with(plan, failpoints, limits, cancel, true)
    }

    /// Strict governance: like [`Engine::execute_cancelable`] but with the
    /// in-engine baseline recovery *disabled* — a recoverable fault (an
    /// injected failpoint trip, a breached limit) bubbles to the caller
    /// instead of retrying the statement here. Serving layers use this to
    /// own the retry policy (jittered backoff, attempt caps, structured
    /// rejection) rather than hiding transient faults inside the engine.
    pub fn execute_strict(
        &self,
        plan: &FullPlan,
        failpoints: &FailpointRegistry,
        limits: &ExecLimits,
        cancel: &CancelToken,
    ) -> Result<ExecOutput, ExecError> {
        self.execute_with(plan, failpoints, limits, cancel, false)
    }

    fn execute_with(
        &self,
        plan: &FullPlan,
        failpoints: &FailpointRegistry,
        limits: &ExecLimits,
        cancel: &CancelToken,
        recover: bool,
    ) -> Result<ExecOutput, ExecError> {
        self.execute_reserved(plan, failpoints, limits, cancel, None, recover)
    }

    /// The fully-governed entry point: everything the other `execute_*`
    /// methods thread, plus an optional global memory reservation. All
    /// operator output bytes (and spool work tables, which outlive their
    /// statement) are charged against the reservation; a refused charge is
    /// a recoverable fault that walks the same baseline-retry path as an
    /// injected failpoint or a breached [`ExecLimits`].
    pub fn execute_reserved(
        &self,
        plan: &FullPlan,
        failpoints: &FailpointRegistry,
        limits: &ExecLimits,
        cancel: &CancelToken,
        reservation: Option<&MemReservation>,
        recover: bool,
    ) -> Result<ExecOutput, ExecError> {
        let mut st = RunState {
            plan,
            spools: HashMap::new(),
            metrics: ExecMetrics::default(),
            failpoints,
            limits,
            cancel,
            rows_materialized: 0,
            bytes_materialized: 0,
            spool_bytes_total: 0,
            stmt_scope: reservation.map(MemReservation::scope),
            spool_scope: reservation.map(MemReservation::scope),
            recovering: false,
        };
        let statements: Vec<&PhysicalPlan> = match &plan.root {
            PhysicalPlan::Batch { children } => children.iter().collect(),
            other => vec![other],
        };
        let mut results = Vec::with_capacity(statements.len());
        let mut events = Vec::new();
        for (i, stmt) in statements.iter().enumerate() {
            st.check_cancel()?;
            st.rows_materialized = 0;
            st.bytes_materialized = 0;
            st.reset_stmt_scope();
            // Snapshot so a failed attempt's metric deltas (spools it
            // materialized, rows it scanned, the peak it touched) can be
            // rolled back — metrics report the final attempt only.
            let snapshot = st.metrics.clone();
            match self.deliver(stmt, &mut st) {
                Ok(rs) => results.push(rs),
                Err(e) if recover && e.is_recoverable() => {
                    let reason = match &e {
                        ExecError::Injected { .. } => Reason::ExecFaultInjected,
                        ExecError::ResourceBudget { what: "rows", .. } => Reason::ExecRowBudget,
                        ExecError::MemReservation { .. } => Reason::MemReservation,
                        _ => Reason::ExecMemBudget,
                    };
                    let event = DegradationEvent::exec(
                        reason,
                        format!("statement {}", i + 1),
                        format!("{e}; retried on baseline plan"),
                    );
                    st.rollback_attempt(&snapshot);
                    st.rows_materialized = 0;
                    st.bytes_materialized = 0;
                    st.reset_stmt_scope();
                    // The retained baseline is the statement's original
                    // non-covering expression. A plan without spools has
                    // nothing to retain: its statement *is* the baseline,
                    // so retry it directly with governance suppressed.
                    let base = plan.baseline_statement(i).unwrap_or(stmt);
                    st.recovering = true;
                    let retried = self.deliver(base, &mut st);
                    st.recovering = false;
                    let mut rs = retried?;
                    rs.provenance.push(event.clone());
                    events.push(event);
                    results.push(rs);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(ExecOutput {
            results,
            metrics: st.metrics,
            events,
        })
    }

    /// Run one statement subtree and name its output columns.
    fn deliver(&self, plan: &PhysicalPlan, st: &mut RunState<'_>) -> Result<ResultSet, ExecError> {
        match plan {
            PhysicalPlan::Project { input, exprs } => {
                let chunk = self.run(input, st)?;
                let mut rows = Vec::with_capacity(chunk.rows.len());
                for r in &chunk.rows {
                    let vals: Vec<Value> = exprs
                        .iter()
                        .map(|(_, e)| eval(e, &chunk.layout, r))
                        .collect();
                    rows.push(cse_storage::row(vals));
                }
                Ok(ResultSet::new(
                    exprs.iter().map(|(n, _)| n.clone()).collect(),
                    rows,
                ))
            }
            PhysicalPlan::Sort { input, keys } => {
                // Sort above Project is not generated; Sort below Project is
                // handled inside run(). A bare Sort root delivers positional
                // columns.
                let chunk = self.run(
                    &PhysicalPlan::Sort {
                        input: input.clone(),
                        keys: keys.clone(),
                    },
                    st,
                )?;
                Ok(ResultSet::new(
                    chunk.cols.iter().map(|c| self.ctx.col_name(*c)).collect(),
                    chunk.rows,
                ))
            }
            other => {
                let chunk = self.run(other, st)?;
                Ok(ResultSet::new(
                    chunk.cols.iter().map(|c| self.ctx.col_name(*c)).collect(),
                    chunk.rows,
                ))
            }
        }
    }

    /// Evaluate one operator and charge its output against the statement
    /// budget. The budget counts rows (and approximate bytes) materialized
    /// by *every* operator, spool definitions included — a runaway join
    /// inside a spool trips the consumer statement that first reads it.
    fn run(&self, plan: &PhysicalPlan, st: &mut RunState<'_>) -> Result<Chunk, ExecError> {
        st.check_cancel()?;
        let chunk = self.run_inner(plan, st)?;
        let bytes = chunk.rows.len() * chunk.cols.len().max(1) * std::mem::size_of::<Value>();
        st.charge(chunk.rows.len(), bytes)?;
        Ok(chunk)
    }

    fn run_inner(&self, plan: &PhysicalPlan, st: &mut RunState<'_>) -> Result<Chunk, ExecError> {
        match plan {
            PhysicalPlan::TableScan {
                rel,
                filter,
                layout,
            } => {
                st.maybe_fail(sites::SCAN_TABLE)?;
                let info = self.ctx.rel(*rel);
                let table = self
                    .catalog
                    .table(&info.name)
                    .map_err(|e| ExecError::Storage(e.to_string()))?;
                let lay = Layout::new(layout);
                let mut rows = Vec::new();
                st.metrics.base_rows_scanned += table.row_count();
                for (i, r) in table.scan().enumerate() {
                    st.check_cancel_at(i)?;
                    if let Some(p) = filter {
                        if !accepts(p, &lay, r) {
                            continue;
                        }
                    }
                    rows.push(r.clone());
                }
                Ok(Chunk::new(layout.clone(), rows))
            }
            PhysicalPlan::IndexRangeScan {
                rel,
                col,
                lo,
                hi,
                residual,
                layout,
            } => {
                st.maybe_fail(sites::SCAN_INDEX)?;
                let info = self.ctx.rel(*rel);
                let entry = self
                    .catalog
                    .get(&info.name)
                    .map_err(|e| ExecError::Storage(e.to_string()))?;
                let table = entry.table.clone();
                let lay = Layout::new(layout);
                let idx = entry
                    .btree_indexes
                    .iter()
                    .find(|i| i.column == col.col as usize);
                let mut rows = Vec::new();
                let lo_b = match lo {
                    Some((v, true)) => Bound::Included(v),
                    Some((v, false)) => Bound::Excluded(v),
                    None => Bound::Unbounded,
                };
                let hi_b = match hi {
                    Some((v, true)) => Bound::Included(v),
                    Some((v, false)) => Bound::Excluded(v),
                    None => Bound::Unbounded,
                };
                match idx {
                    Some(idx) => {
                        for (i, rid) in idx.range(lo_b, hi_b).enumerate() {
                            st.check_cancel_at(i)?;
                            // The index can lag the table (rebuild racing a
                            // shrink); a stale rowid must degrade to an
                            // error, not a panic on the serving path.
                            let r = table.rows().get(rid as usize).ok_or_else(|| {
                                ExecError::Storage(format!(
                                    "index rowid {rid} out of range for {}",
                                    info.name
                                ))
                            })?;
                            if let Some(p) = residual {
                                if !accepts(p, &lay, r) {
                                    continue;
                                }
                            }
                            rows.push(r.clone());
                        }
                        st.metrics.base_rows_scanned += rows.len();
                    }
                    None => {
                        // Index dropped since planning: degrade to a scan.
                        st.metrics.base_rows_scanned += table.row_count();
                        let in_range = |v: &Value| {
                            let lo_ok = match lo {
                                Some((b, true)) => v.total_cmp(b).is_ge(),
                                Some((b, false)) => v.total_cmp(b).is_gt(),
                                None => true,
                            };
                            let hi_ok = match hi {
                                Some((b, true)) => v.total_cmp(b).is_le(),
                                Some((b, false)) => v.total_cmp(b).is_lt(),
                                None => true,
                            };
                            lo_ok && hi_ok
                        };
                        let pos = lay.position(*col).ok_or_else(|| {
                            ExecError::MissingColumn(format!("index column {col}"))
                        })?;
                        for (i, r) in table.scan().enumerate() {
                            st.check_cancel_at(i)?;
                            if !in_range(&r[pos]) {
                                continue;
                            }
                            if let Some(p) = residual {
                                if !accepts(p, &lay, r) {
                                    continue;
                                }
                            }
                            rows.push(r.clone());
                        }
                    }
                }
                Ok(Chunk::new(layout.clone(), rows))
            }
            PhysicalPlan::Filter { input, pred } => {
                let chunk = self.run(input, st)?;
                let rows = chunk
                    .rows
                    .iter()
                    .filter(|r| accepts(pred, &chunk.layout, r))
                    .cloned()
                    .collect();
                Ok(Chunk::new(chunk.cols, rows))
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                keys,
                residual,
                layout,
            } => {
                let lchunk = self.run(left, st)?;
                let rchunk = self.run(right, st)?;
                let lkeys: Vec<usize> =
                    keys.iter()
                        .map(|(a, _)| {
                            lchunk.layout.position(*a).ok_or_else(|| {
                                ExecError::MissingColumn(format!("left join key {a}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                let rkeys: Vec<usize> =
                    keys.iter()
                        .map(|(_, b)| {
                            rchunk.layout.position(*b).ok_or_else(|| {
                                ExecError::MissingColumn(format!("right join key {b}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
                for r in &lchunk.rows {
                    let k: Vec<Value> = lkeys.iter().map(|i| r[*i].clone()).collect();
                    if k.iter().any(Value::is_null) {
                        continue; // NULL never joins
                    }
                    table.entry(k).or_default().push(r);
                }
                let out_layout = Layout::new(layout);
                let mut rows = Vec::new();
                for (pi, rrow) in rchunk.rows.iter().enumerate() {
                    st.check_cancel_at(pi)?;
                    let k: Vec<Value> = rkeys.iter().map(|i| rrow[*i].clone()).collect();
                    if k.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = table.get(&k) {
                        for lrow in matches {
                            let mut vals: Vec<Value> = Vec::with_capacity(layout.len());
                            vals.extend(lrow.iter().cloned());
                            vals.extend(rrow.iter().cloned());
                            let joined = cse_storage::row(vals);
                            if let Some(p) = residual {
                                if !accepts(p, &out_layout, &joined) {
                                    continue;
                                }
                            }
                            rows.push(joined);
                        }
                    }
                }
                Ok(Chunk::new(layout.clone(), rows))
            }
            PhysicalPlan::NlJoin {
                left,
                right,
                pred,
                layout,
            } => {
                let lchunk = self.run(left, st)?;
                let rchunk = self.run(right, st)?;
                let out_layout = Layout::new(layout);
                let mut rows = Vec::new();
                for (li, lrow) in lchunk.rows.iter().enumerate() {
                    st.check_cancel_at(li)?;
                    for rrow in &rchunk.rows {
                        let mut vals: Vec<Value> = Vec::with_capacity(layout.len());
                        vals.extend(lrow.iter().cloned());
                        vals.extend(rrow.iter().cloned());
                        let joined = cse_storage::row(vals);
                        if pred.is_true() || accepts(pred, &out_layout, &joined) {
                            rows.push(joined);
                        }
                    }
                }
                Ok(Chunk::new(layout.clone(), rows))
            }
            PhysicalPlan::HashAggregate {
                input,
                keys,
                aggs,
                layout,
                ..
            } => {
                let chunk = self.run(input, st)?;
                let rows = aggregate(&chunk, keys, aggs)?;
                Ok(Chunk::new(layout.clone(), rows))
            }
            PhysicalPlan::Sort { input, keys } => {
                let chunk = self.run(input, st)?;
                let mut rows = chunk.rows;
                rows.sort_by(|a, b| {
                    for (k, dir) in keys {
                        let va = eval(k, &chunk.layout, a);
                        let vb = eval(k, &chunk.layout, b);
                        let mut o = va.total_cmp(&vb);
                        if *dir == SortOrder::Desc {
                            o = o.reverse();
                        }
                        if !o.is_eq() {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(Chunk::new(chunk.cols, rows))
            }
            PhysicalPlan::Project { input, exprs } => {
                // Interior projection (rare): deliver positionally with
                // synthetic cols — only valid at roots, guarded here.
                let _ = (input, exprs);
                Err(ExecError::Unsupported(
                    "interior Project operators are not supported",
                ))
            }
            PhysicalPlan::CseRead {
                cse,
                filter,
                reagg,
                output_map,
                layout,
            } => {
                self.ensure_spool(*cse, st)?;
                *st.metrics.spool_reads.entry(*cse).or_insert(0) += 1;
                // `ensure_spool` just materialized it; report rather than
                // panic if that invariant ever breaks.
                let (spool_cols, spool_rows) = st
                    .spools
                    .get(cse)
                    .ok_or(ExecError::MissingSpool(*cse))?
                    .clone();
                let spool_layout = Layout::new(&spool_cols);
                let mut rows: Vec<Row> = spool_rows;
                if let Some(p) = filter {
                    rows.retain(|r| accepts(p, &spool_layout, r));
                }
                let (cur_cols, cur_rows) = match reagg {
                    Some(r) => {
                        let chunk = Chunk::new(spool_cols.clone(), rows);
                        let agg_rows = aggregate(&chunk, &r.keys, &r.aggs)?;
                        let mut cols = r.keys.clone();
                        cols.extend((0..r.aggs.len()).map(|i| ColRef::new(r.out, i as u16)));
                        (cols, agg_rows)
                    }
                    None => (spool_cols, rows),
                };
                let cur_layout = Layout::new(&cur_cols);
                let mut out_rows = Vec::with_capacity(cur_rows.len());
                for r in &cur_rows {
                    let vals: Vec<Value> = output_map
                        .iter()
                        .map(|(_, e)| eval(e, &cur_layout, r))
                        .collect();
                    out_rows.push(cse_storage::row(vals));
                }
                Ok(Chunk::new(layout.clone(), out_rows))
            }
            PhysicalPlan::Batch { .. } => Err(ExecError::Unsupported(
                "nested Batch operators are not supported",
            )),
        }
    }

    /// Compute a spool's work table once (recursively computes narrower
    /// stacked spools it reads).
    fn ensure_spool(&self, cse: CseId, st: &mut RunState<'_>) -> Result<(), ExecError> {
        if st.spools.contains_key(&cse) {
            return Ok(());
        }
        // Injected before any work: a failed materialization leaves no
        // partial spool behind, so a later statement (or the baseline
        // retry) sees clean state.
        st.maybe_fail(sites::SPOOL_MATERIALIZE)?;
        let def = st
            .plan
            .spools
            .get(&cse)
            .ok_or(ExecError::MissingSpool(cse))?
            .clone();
        let chunk = self.run(&def.plan, st)?;
        // Re-layout the definition output into the spool's column order.
        let rows: Vec<Row> = if chunk.cols == def.layout {
            chunk.rows
        } else {
            let positions: Vec<usize> = def
                .layout
                .iter()
                .map(|c| {
                    chunk.layout.position(*c).ok_or_else(|| {
                        ExecError::MissingColumn(format!("spool column {c} in definition"))
                    })
                })
                .collect::<Result<_, _>>()?;
            chunk
                .rows
                .iter()
                .map(|r| cse_storage::row(positions.iter().map(|i| r[*i].clone()).collect()))
                .collect()
        };
        // The spool outlives its statement, so its bytes move to the
        // persistent scope (on top of the transient charge its definition
        // already paid above — conservative double-count within this one
        // statement, gone when the statement scope resets).
        let bytes = rows.len() * def.layout.len().max(1) * std::mem::size_of::<Value>();
        if let Some(scope) = st.spool_scope.as_mut() {
            if st.recovering {
                scope.charge_unchecked(bytes);
            } else {
                scope.charge(bytes).map_err(reserve_to_exec)?;
            }
        }
        st.metrics.spool_rows.insert(cse, rows.len());
        st.metrics.spool_bytes.insert(cse, bytes);
        st.spool_bytes_total += bytes;
        let live = st.bytes_materialized + st.spool_bytes_total;
        st.metrics.peak_bytes = st.metrics.peak_bytes.max(live);
        st.spools.insert(cse, (def.layout.clone(), rows));
        Ok(())
    }
}

/// Hash aggregation shared by HashAggregate and CseRead re-aggregation.
fn aggregate(chunk: &Chunk, keys: &[ColRef], aggs: &[AggExpr]) -> Result<Vec<Row>, ExecError> {
    let key_pos: Vec<usize> = keys
        .iter()
        .map(|k| {
            chunk
                .layout
                .position(*k)
                .ok_or_else(|| ExecError::MissingColumn(format!("group key {k}")))
        })
        .collect::<Result<_, _>>()?;
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    // Deterministic output order: remember first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for r in &chunk.rows {
        let k: Vec<Value> = key_pos.iter().map(|i| r[*i].clone()).collect();
        let states = groups.entry(k.clone()).or_insert_with(|| {
            order.push(k);
            aggs.iter().map(|a| AggState::new(a.func)).collect()
        });
        for (a, s) in aggs.iter().zip(states.iter_mut()) {
            let v = agg_input(a, &chunk.layout, r);
            s.update(&v);
        }
    }
    // Scalar aggregate over an empty input produces one row.
    if keys.is_empty() && groups.is_empty() {
        let vals: Vec<Value> = aggs
            .iter()
            .map(|a| AggState::new(a.func).finish())
            .collect();
        return Ok(vec![cse_storage::row(vals)]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for k in order {
        let states = &groups[&k];
        let mut vals = k.clone();
        vals.extend(states.iter().map(AggState::finish));
        out.push(cse_storage::row(vals));
    }
    Ok(out)
}
