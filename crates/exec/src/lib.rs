//! # cse-exec
//!
//! Physical-plan interpreter: row-at-a-time operators (scans, hash/NL
//! joins, hash aggregation, sort), spool work tables computed once and
//! shared across consumers, and execution metrics.

pub mod engine;
pub mod error;
pub mod eval;

pub use engine::{Engine, ExecMetrics, ExecOutput, ResultSet};
pub use error::ExecError;
pub use eval::{accepts, eval, AggState, Layout};
