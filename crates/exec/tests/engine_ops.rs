//! Direct tests of the physical operators against hand-built plans
//! (no SQL, no optimizer — exact control over plan shapes).

use cse_algebra::{AggExpr, CmpOp, ColRef, LogicalPlan, PlanContext, RelId, Scalar, SortOrder};
use cse_exec::Engine;
use cse_optimizer::{CseId, FullPlan, PhysicalPlan, ReAgg, SpoolDef};
use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
use std::collections::BTreeMap;

fn setup() -> (Catalog, PlanContext, RelId, RelId) {
    let mut l = Table::new(
        "l",
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
    );
    let mut r = Table::new(
        "r",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Str)]),
    );
    for i in 0..6i64 {
        l.push(row(vec![Value::Int(i % 3), Value::Int(i)])).unwrap();
    }
    for (k, w) in [(0, "zero"), (1, "one"), (2, "two")] {
        r.push(row(vec![Value::Int(k), Value::str(w)])).unwrap();
    }
    let mut cat = Catalog::new();
    cat.register_table(l).unwrap();
    cat.register_table(r).unwrap();
    let mut ctx = PlanContext::new();
    let b = ctx.new_block();
    let lr = ctx.add_base_rel("l", "l", cat.table("l").unwrap().schema().clone(), b);
    let rr = ctx.add_base_rel("r", "r", cat.table("r").unwrap().schema().clone(), b);
    (cat, ctx, lr, rr)
}

fn scan(ctx: &PlanContext, rel: RelId) -> PhysicalPlan {
    let n = ctx.rel(rel).schema.len();
    PhysicalPlan::TableScan {
        rel,
        filter: None,
        layout: (0..n).map(|i| ColRef::new(rel, i as u16)).collect(),
    }
}

fn run(cat: &Catalog, ctx: &PlanContext, root: PhysicalPlan) -> Vec<cse_storage::Row> {
    let engine = Engine::new(cat, ctx);
    let plan = FullPlan {
        root,
        spools: BTreeMap::new(),
        cost: 0.0,
        baseline: None,
    };
    engine.execute(&plan).unwrap().results.remove(0).rows
}

#[test]
fn hash_join_matches_nl_join() {
    let (cat, ctx, l, r) = setup();
    let mut layout: Vec<ColRef> = (0..2).map(|i| ColRef::new(l, i)).collect();
    layout.extend((0..2).map(|i| ColRef::new(r, i)));
    let hj = PhysicalPlan::HashJoin {
        left: Box::new(scan(&ctx, l)),
        right: Box::new(scan(&ctx, r)),
        keys: vec![(ColRef::new(l, 0), ColRef::new(r, 0))],
        residual: None,
        layout: layout.clone(),
    };
    let nl = PhysicalPlan::NlJoin {
        left: Box::new(scan(&ctx, l)),
        right: Box::new(scan(&ctx, r)),
        pred: Scalar::eq(Scalar::col(l, 0), Scalar::col(r, 0)),
        layout,
    };
    let mut a = run(&cat, &ctx, hj);
    let mut b = run(&cat, &ctx, nl);
    let sort = |rows: &mut Vec<cse_storage::Row>| {
        rows.sort_by(|x, y| {
            x.iter()
                .zip(y.iter())
                .map(|(a, b)| a.total_cmp(b))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    };
    sort(&mut a);
    sort(&mut b);
    assert_eq!(a.len(), 6);
    assert_eq!(a, b);
}

#[test]
fn hash_join_residual_filters() {
    let (cat, ctx, l, r) = setup();
    let mut layout: Vec<ColRef> = (0..2).map(|i| ColRef::new(l, i)).collect();
    layout.extend((0..2).map(|i| ColRef::new(r, i)));
    let hj = PhysicalPlan::HashJoin {
        left: Box::new(scan(&ctx, l)),
        right: Box::new(scan(&ctx, r)),
        keys: vec![(ColRef::new(l, 0), ColRef::new(r, 0))],
        residual: Some(Scalar::cmp(CmpOp::Gt, Scalar::col(l, 1), Scalar::int(2))),
        layout,
    };
    let rows = run(&cat, &ctx, hj);
    assert_eq!(rows.len(), 3); // v in {3,4,5}
}

#[test]
fn spool_computed_once_across_reads() {
    let (cat, mut ctx, l, _) = setup();
    let blk = ctx.new_block();
    let agg_out = ctx.add_agg_output(&[DataType::Int], blk);
    // Spool: l filtered to v < 5.
    let spool_plan = PhysicalPlan::Filter {
        input: Box::new(scan(&ctx, l)),
        pred: Scalar::cmp(CmpOp::Lt, Scalar::col(l, 1), Scalar::int(5)),
    };
    let spool_layout: Vec<ColRef> = (0..2).map(|i| ColRef::new(l, i)).collect();
    let read = |filter: Option<Scalar>| PhysicalPlan::CseRead {
        cse: CseId(0),
        filter,
        reagg: None,
        output_map: spool_layout.iter().map(|c| (*c, Scalar::Col(*c))).collect(),
        layout: spool_layout.clone(),
    };
    // Second read re-aggregates.
    let read2 = PhysicalPlan::CseRead {
        cse: CseId(0),
        filter: None,
        reagg: Some(ReAgg {
            keys: vec![ColRef::new(l, 0)],
            aggs: vec![AggExpr::sum(Scalar::col(l, 1))],
            out: agg_out,
        }),
        output_map: vec![
            (ColRef::new(l, 0), Scalar::Col(ColRef::new(l, 0))),
            (
                ColRef::new(agg_out, 0),
                Scalar::Col(ColRef::new(agg_out, 0)),
            ),
        ],
        layout: vec![ColRef::new(l, 0), ColRef::new(agg_out, 0)],
    };
    let plan = FullPlan {
        root: PhysicalPlan::Batch {
            children: vec![
                read(Some(Scalar::cmp(
                    CmpOp::Lt,
                    Scalar::col(l, 1),
                    Scalar::int(2),
                ))),
                read2,
            ],
        },
        spools: BTreeMap::from([(
            CseId(0),
            SpoolDef {
                plan: spool_plan,
                layout: spool_layout,
                est_rows: 5.0,
            },
        )]),
        cost: 0.0,
        baseline: None,
    };
    let engine = Engine::new(&cat, &ctx);
    let out = engine.execute(&plan).unwrap();
    assert_eq!(out.results.len(), 2);
    assert_eq!(out.results[0].rows.len(), 2); // v ∈ {0,1}
    assert_eq!(out.results[1].rows.len(), 3); // groups k ∈ {0,1,2}
    assert_eq!(out.metrics.spool_reads[&CseId(0)], 2);
    assert_eq!(out.metrics.spool_rows[&CseId(0)], 5);
    // Base table scanned exactly once for the spool.
    assert_eq!(out.metrics.base_rows_scanned, 6);
}

#[test]
fn sort_orders_output() {
    let (cat, ctx, l, _) = setup();
    let plan = PhysicalPlan::Sort {
        input: Box::new(scan(&ctx, l)),
        keys: vec![(Scalar::col(l, 1), SortOrder::Desc)],
    };
    let rows = run(&cat, &ctx, plan);
    let vs: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    assert_eq!(vs, vec![5, 4, 3, 2, 1, 0]);
}

#[test]
fn missing_spool_definition_is_an_error() {
    let (cat, ctx, l, _) = setup();
    let read = PhysicalPlan::CseRead {
        cse: CseId(9),
        filter: None,
        reagg: None,
        output_map: vec![(ColRef::new(l, 0), Scalar::Col(ColRef::new(l, 0)))],
        layout: vec![ColRef::new(l, 0)],
    };
    let engine = Engine::new(&cat, &ctx);
    let plan = FullPlan {
        root: read,
        spools: BTreeMap::new(),
        cost: 0.0,
        baseline: None,
    };
    let err = engine.execute(&plan).unwrap_err();
    assert!(matches!(err, cse_exec::ExecError::MissingSpool(_)), "{err}");
}

#[test]
fn logical_plan_display_smoke() {
    // Exercise the logical display path too (used by diagnostics).
    let (_, ctx, l, r) = setup();
    let plan = LogicalPlan::get(l).join(
        LogicalPlan::get(r),
        Scalar::eq(Scalar::col(l, 0), Scalar::col(r, 0)),
    );
    let s = plan.display(&ctx);
    assert!(s.contains("Join"));
}
