//! Predicate selectivity estimation.

use crate::stats_view::StatsCatalog;
use cse_algebra::{CmpOp, ColRef, PlanContext, Scalar};
use cse_storage::Value;

/// Default selectivity for predicates the estimator cannot analyze.
pub const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Default equality selectivity without statistics.
pub const DEFAULT_EQ_SEL: f64 = 0.1;

/// Estimator bundling context and statistics.
pub struct Selectivity<'a> {
    pub ctx: &'a PlanContext,
    pub stats: &'a StatsCatalog,
}

impl<'a> Selectivity<'a> {
    pub fn new(ctx: &'a PlanContext, stats: &'a StatsCatalog) -> Self {
        Selectivity { ctx, stats }
    }

    /// Selectivity of an arbitrary predicate (in [0, 1]).
    pub fn of(&self, pred: &Scalar) -> f64 {
        match pred {
            Scalar::And(parts) => parts.iter().map(|p| self.of(p)).product(),
            Scalar::Or(parts) => {
                if parts.is_empty() {
                    return 0.0; // empty disjunction is FALSE
                }
                // Independence assumption: 1 - Π(1 - s_i).
                let miss: f64 = parts.iter().map(|p| 1.0 - self.of(p)).product();
                (1.0 - miss).clamp(0.0, 1.0)
            }
            Scalar::Not(inner) => 1.0 - self.of(inner),
            Scalar::Cmp(op, a, b) => self.cmp_selectivity(*op, a, b),
            Scalar::Lit(Value::Bool(true)) => 1.0,
            Scalar::Lit(Value::Bool(false)) => 0.0,
            Scalar::IsNull(inner) => {
                if let Scalar::Col(c) = inner.as_ref() {
                    if let Some(s) = self.stats.col_stats(self.ctx, *c) {
                        let rows = self.stats.rel_rows(self.ctx, c.rel);
                        return (s.null_count as f64 / rows).clamp(0.0, 1.0);
                    }
                }
                0.05
            }
            _ => DEFAULT_SEL,
        }
    }

    fn cmp_selectivity(&self, op: CmpOp, a: &Scalar, b: &Scalar) -> f64 {
        // Column vs column: equijoin-style local selectivity.
        if let (Scalar::Col(x), Scalar::Col(y)) = (a, b) {
            let ndx = self.stats.col_ndv(self.ctx, *x);
            let ndy = self.stats.col_ndv(self.ctx, *y);
            return match op {
                CmpOp::Eq => 1.0 / ndx.max(ndy),
                CmpOp::Ne => 1.0 - 1.0 / ndx.max(ndy),
                _ => DEFAULT_SEL,
            };
        }
        // Column vs literal.
        let col_lit = Scalar::Cmp(op, Box::new(a.clone()), Box::new(b.clone()));
        if let Some((col, op, lit)) = col_lit.as_col_vs_lit() {
            return self.col_vs_lit(col, op, &lit);
        }
        DEFAULT_SEL
    }

    fn col_vs_lit(&self, col: ColRef, op: CmpOp, lit: &Value) -> f64 {
        let stats = match self.stats.col_stats(self.ctx, col) {
            Some(s) => s,
            None => {
                return match op {
                    CmpOp::Eq => DEFAULT_EQ_SEL,
                    CmpOp::Ne => 1.0 - DEFAULT_EQ_SEL,
                    _ => DEFAULT_SEL,
                }
            }
        };
        let ndv = (stats.distinct as f64).max(1.0);
        match op {
            CmpOp::Eq => (1.0 / ndv).min(1.0),
            CmpOp::Ne => (1.0 - 1.0 / ndv).max(0.0),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let (lo, hi, v) = match (
                    stats.min.as_ref().and_then(Value::as_f64),
                    stats.max.as_ref().and_then(Value::as_f64),
                    lit.as_f64(),
                ) {
                    (Some(lo), Some(hi), Some(v)) => (lo, hi, v),
                    _ => return DEFAULT_SEL,
                };
                if hi <= lo {
                    return DEFAULT_SEL;
                }
                let frac_below = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                match op {
                    CmpOp::Lt | CmpOp::Le => frac_below,
                    _ => 1.0 - frac_below,
                }
            }
        }
        .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{row, Catalog, DataType, Schema, Table};
    use std::sync::Arc;

    fn setup() -> (PlanContext, StatsCatalog, cse_algebra::RelId) {
        let mut t = Table::new(
            "t",
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]),
        );
        for i in 0..100 {
            t.push(row(vec![Value::Int(i), Value::Int(i % 10)]))
                .unwrap();
        }
        let mut cat = Catalog::new();
        cat.register_table(t).unwrap();
        let stats = StatsCatalog::from_catalog(&cat);
        let mut ctx = PlanContext::new();
        let blk = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        let r = ctx.add_base_rel("t", "t", schema, blk);
        (ctx, stats, r)
    }

    #[test]
    fn range_selectivity() {
        let (ctx, stats, r) = setup();
        let sel = Selectivity::new(&ctx, &stats);
        // a in [0,99]; a < 50 ≈ 0.5
        let p = Scalar::cmp(CmpOp::Lt, Scalar::col(r, 0), Scalar::int(50));
        let s = sel.of(&p);
        assert!((0.45..0.56).contains(&s), "{s}");
    }

    #[test]
    fn equality_uses_ndv() {
        let (ctx, stats, r) = setup();
        let sel = Selectivity::new(&ctx, &stats);
        let p = Scalar::eq(Scalar::col(r, 1), Scalar::int(3));
        let s = sel.of(&p);
        assert!((s - 0.1).abs() < 1e-9, "{s}"); // 10 distinct values
    }

    #[test]
    fn and_multiplies_or_unions() {
        let (ctx, stats, r) = setup();
        let sel = Selectivity::new(&ctx, &stats);
        let lt = Scalar::cmp(CmpOp::Lt, Scalar::col(r, 0), Scalar::int(50));
        let both = Scalar::and([lt.clone(), lt.clone()]);
        let either = Scalar::or([lt.clone(), lt.clone()]);
        assert!(sel.of(&both) < sel.of(&lt));
        assert!(sel.of(&either) > sel.of(&lt));
        assert!(sel.of(&either) <= 1.0);
    }

    #[test]
    fn true_and_false() {
        let (ctx, stats, _) = setup();
        let sel = Selectivity::new(&ctx, &stats);
        assert_eq!(sel.of(&Scalar::true_()), 1.0);
        assert_eq!(sel.of(&Scalar::Or(vec![])), 0.0);
    }

    #[test]
    fn not_inverts() {
        let (ctx, stats, r) = setup();
        let sel = Selectivity::new(&ctx, &stats);
        let p = Scalar::cmp(CmpOp::Lt, Scalar::col(r, 0), Scalar::int(30));
        let n = Scalar::Not(Box::new(p.clone()));
        assert!((sel.of(&p) + sel.of(&n) - 1.0).abs() < 1e-9);
    }
}
