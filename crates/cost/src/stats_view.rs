//! Statistics access for the estimator: resolves global column references
//! to per-table column statistics from the catalog.

use cse_algebra::{ColRef, PlanContext, RelKind};
use cse_storage::{Catalog, ColumnStats, TableStats};
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable snapshot of per-table statistics keyed by catalog name.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    tables: HashMap<String, Arc<TableStats>>,
}

impl StatsCatalog {
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    /// Snapshot all statistics from a storage catalog.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut tables = HashMap::new();
        for name in catalog.table_names() {
            if let Ok(stats) = catalog.stats(name) {
                tables.insert(name.to_ascii_lowercase(), stats);
            }
        }
        StatsCatalog { tables }
    }

    pub fn insert(&mut self, name: impl Into<String>, stats: Arc<TableStats>) {
        self.tables.insert(name.into().to_ascii_lowercase(), stats);
    }

    pub fn get(&self, name: &str) -> Option<&Arc<TableStats>> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Row count of a table instance; 1000 when unknown (so costs stay
    /// finite and comparisons remain meaningful).
    pub fn rel_rows(&self, ctx: &PlanContext, rel: cse_algebra::RelId) -> f64 {
        let info = ctx.rel(rel);
        match info.kind {
            RelKind::Base | RelKind::Delta => self
                .get(&info.name)
                .map(|s| s.row_count as f64)
                .unwrap_or(1000.0)
                .max(1.0),
            RelKind::AggOutput => 1.0,
        }
    }

    /// Column statistics for a base/delta column, if known.
    pub fn col_stats(&self, ctx: &PlanContext, c: ColRef) -> Option<&ColumnStats> {
        let info = ctx.rel(c.rel);
        match info.kind {
            RelKind::Base | RelKind::Delta => self
                .get(&info.name)
                .and_then(|s| s.columns.get(c.col as usize)),
            RelKind::AggOutput => None,
        }
    }

    /// Number of distinct values of a column; falls back to sqrt(rows) for
    /// derived columns.
    pub fn col_ndv(&self, ctx: &PlanContext, c: ColRef) -> f64 {
        match self.col_stats(ctx, c) {
            Some(s) => (s.distinct as f64).max(1.0),
            None => self.rel_rows(ctx, c.rel).sqrt().max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{row, DataType, Schema, Table, Value};
    use std::sync::Arc as SArc;

    fn catalog() -> Catalog {
        let mut t = Table::new("t", Schema::from_pairs(&[("a", DataType::Int)]));
        for i in 0..10 {
            t.push(row(vec![Value::Int(i % 3)])).unwrap();
        }
        let mut c = Catalog::new();
        c.register_table(t).unwrap();
        c
    }

    #[test]
    fn snapshot_and_lookup() {
        let sc = StatsCatalog::from_catalog(&catalog());
        assert_eq!(sc.get("T").unwrap().row_count, 10);
        assert!(sc.get("missing").is_none());
    }

    #[test]
    fn rel_rows_and_ndv() {
        let sc = StatsCatalog::from_catalog(&catalog());
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = SArc::new(Schema::from_pairs(&[("a", DataType::Int)]));
        let r = ctx.add_base_rel("t", "t", schema, b);
        assert_eq!(sc.rel_rows(&ctx, r), 10.0);
        assert_eq!(sc.col_ndv(&ctx, ColRef::new(r, 0)), 3.0);
        // Unknown table defaults.
        let r2 = ctx.add_base_rel(
            "ghost",
            "ghost",
            SArc::new(Schema::from_pairs(&[("x", DataType::Int)])),
            b,
        );
        assert_eq!(sc.rel_rows(&ctx, r2), 1000.0);
    }
}
