//! Operator cost formulas.
//!
//! Costs are in abstract "optimizer cost units" like the paper's estimated
//! costs. Data-volume-sensitive operators (scan, spool write/read) charge
//! per byte, which is what makes Heuristic 2 (exclude consumers with huge
//! results) meaningful: a cheap-to-compute but wide expression has a spool
//! cost exceeding its computation cost.

/// Tunable cost constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-row CPU cost of producing a tuple from a scan.
    pub scan_row: f64,
    /// Per-byte IO-ish cost of a scan.
    pub scan_byte: f64,
    /// Per-row cost of evaluating a filter predicate.
    pub filter_row: f64,
    /// Per-row cost of projection/expression evaluation.
    pub project_row: f64,
    /// Per-row cost of building a hash table.
    pub hash_build_row: f64,
    /// Per-row cost of probing a hash table.
    pub hash_probe_row: f64,
    /// Per-output-row cost of a join.
    pub join_out_row: f64,
    /// Per-input-row cost of hash aggregation.
    pub agg_row: f64,
    /// Per-output-row cost of aggregation.
    pub agg_out_row: f64,
    /// Per-row + per-byte cost of writing a spool work table (C_W).
    pub spool_write_row: f64,
    pub spool_write_byte: f64,
    /// Per-row + per-byte cost of reading a spool work table (C_R).
    pub spool_read_row: f64,
    pub spool_read_byte: f64,
    /// Sort cost multiplier (n log2 n * this).
    pub sort_row: f64,
    /// Per-probe cost of an index lookup.
    pub index_probe: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_row: 1.0,
            scan_byte: 0.01,
            filter_row: 0.1,
            project_row: 0.05,
            hash_build_row: 1.5,
            hash_probe_row: 1.0,
            join_out_row: 0.5,
            agg_row: 1.2,
            agg_out_row: 0.5,
            spool_write_row: 1.0,
            spool_write_byte: 0.05,
            spool_read_row: 0.5,
            spool_read_byte: 0.02,
            sort_row: 0.3,
            index_probe: 3.0,
        }
    }
}

impl CostModel {
    pub fn scan(&self, rows: f64, width: f64) -> f64 {
        rows * (self.scan_row + self.scan_byte * width)
    }

    pub fn filter(&self, input_rows: f64) -> f64 {
        input_rows * self.filter_row
    }

    pub fn project(&self, rows: f64) -> f64 {
        rows * self.project_row
    }

    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        build_rows * self.hash_build_row
            + probe_rows * self.hash_probe_row
            + out_rows * self.join_out_row
    }

    pub fn nl_join(&self, outer_rows: f64, inner_rows: f64, out_rows: f64) -> f64 {
        outer_rows * inner_rows * self.filter_row + out_rows * self.join_out_row
    }

    pub fn hash_agg(&self, input_rows: f64, out_rows: f64) -> f64 {
        input_rows * self.agg_row + out_rows * self.agg_out_row
    }

    /// C_W: materializing a spool work table.
    pub fn spool_write(&self, rows: f64, width: f64) -> f64 {
        rows * self.spool_write_row + rows * width * self.spool_write_byte
    }

    /// C_R: one sequential read of a spool work table.
    pub fn spool_read(&self, rows: f64, width: f64) -> f64 {
        rows * self.spool_read_row + rows * width * self.spool_read_byte
    }

    pub fn sort(&self, rows: f64) -> f64 {
        let n = rows.max(2.0);
        n * n.log2() * self.sort_row
    }

    pub fn index_lookup(&self, probes: f64, matches: f64) -> f64 {
        probes * self.index_probe + matches * self.scan_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_spool_costs_more() {
        let m = CostModel::default();
        assert!(m.spool_write(1000.0, 200.0) > m.spool_write(1000.0, 16.0));
        assert!(m.spool_read(1000.0, 200.0) > m.spool_read(1000.0, 16.0));
    }

    #[test]
    fn hash_join_beats_nl_on_big_inputs() {
        let m = CostModel::default();
        assert!(m.hash_join(1e4, 1e5, 1e5) < m.nl_join(1e4, 1e5, 1e5));
    }

    #[test]
    fn costs_are_monotone_in_rows() {
        let m = CostModel::default();
        assert!(m.scan(2000.0, 8.0) > m.scan(1000.0, 8.0));
        assert!(m.hash_agg(2000.0, 10.0) > m.hash_agg(1000.0, 10.0));
        assert!(m.sort(2000.0) > m.sort(1000.0));
    }

    #[test]
    fn spool_write_dearer_than_read() {
        // Writing must cost more than reading so sharing pays only with
        // multiple consumers.
        let m = CostModel::default();
        assert!(m.spool_write(1000.0, 64.0) > m.spool_read(1000.0, 64.0));
    }
}
