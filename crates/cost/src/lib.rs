//! # cse-cost
//!
//! Cost model and cardinality estimation: table statistics snapshots,
//! predicate selectivity, SPJ/aggregate cardinality, and per-operator cost
//! formulas (including the spool write/read costs C_W and C_R that drive
//! the paper's heuristics).

pub mod cardinality;
pub mod model;
pub mod selectivity;
pub mod stats_view;

pub use cardinality::Cardinality;
pub use model::CostModel;
pub use selectivity::{Selectivity, DEFAULT_EQ_SEL, DEFAULT_SEL};
pub use stats_view::StatsCatalog;
