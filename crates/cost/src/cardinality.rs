//! Cardinality estimation for SPJ blocks and aggregations.

use crate::selectivity::Selectivity;
use crate::stats_view::StatsCatalog;
use cse_algebra::{ColRef, EquivClasses, PlanContext, RelId, Scalar};

/// Cardinality estimator.
pub struct Cardinality<'a> {
    pub ctx: &'a PlanContext,
    pub stats: &'a StatsCatalog,
}

impl<'a> Cardinality<'a> {
    pub fn new(ctx: &'a PlanContext, stats: &'a StatsCatalog) -> Self {
        Cardinality { ctx, stats }
    }

    fn sel(&self) -> Selectivity<'a> {
        Selectivity::new(self.ctx, self.stats)
    }

    /// Estimated rows of `σ_conjuncts(rel1 × rel2 × ...)`.
    ///
    /// Equijoin atoms contribute `1/max(ndv)` per *merged equivalence
    /// link* (an equivalence class of k columns contributes k-1 links, like
    /// a chain of equality predicates); other conjuncts use the selectivity
    /// estimator.
    pub fn spj_rows(&self, rels: &[RelId], conjuncts: &[Scalar]) -> f64 {
        let mut rows: f64 = rels
            .iter()
            .map(|r| self.stats.rel_rows(self.ctx, *r))
            .product();
        if rels.is_empty() {
            rows = 1.0;
        }
        // Equivalence-class based join selectivity (dedups redundant
        // equality atoms).
        let ec = EquivClasses::from_conjuncts(conjuncts.iter());
        for class in ec.classes() {
            let mut ndvs: Vec<f64> = class
                .iter()
                .map(|c| self.stats.col_ndv(self.ctx, *c))
                .collect();
            ndvs.sort_by(|a, b| a.total_cmp(b));
            // k columns equal: multiply by Π 1/ndv over all but the
            // smallest (standard System-R style generalization).
            for ndv in ndvs.iter().skip(1) {
                rows /= ndv.max(1.0);
            }
        }
        let sel = self.sel();
        for c in conjuncts {
            if c.as_col_eq_col().is_some() {
                continue; // already handled through equivalence classes
            }
            rows *= sel.of(c);
        }
        rows.max(1.0)
    }

    /// Estimated number of groups for a group-by over `input_rows` with the
    /// given keys, using the standard distinct-value overlap formula
    /// `D(n, d) = d · (1 − (1 − 1/d)^n)`.
    pub fn group_rows(&self, keys: &[ColRef], input_rows: f64) -> f64 {
        if keys.is_empty() {
            return 1.0;
        }
        let d: f64 = keys
            .iter()
            .map(|k| self.stats.col_ndv(self.ctx, *k))
            .product::<f64>()
            .max(1.0);
        let n = input_rows.max(1.0);
        let groups = d * (1.0 - (1.0 - 1.0 / d).powf(n));
        groups.clamp(1.0, n)
    }

    /// Byte width of a set of output columns.
    pub fn width_of(&self, cols: &[ColRef]) -> f64 {
        cols.iter()
            .map(|c| self.ctx.col_type(*c).width() as f64)
            .sum::<f64>()
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::sync::Arc;

    fn setup() -> (PlanContext, StatsCatalog, RelId, RelId) {
        // fact: 1000 rows, key uniform 0..99; dim: 100 rows, key unique.
        let mut fact = Table::new(
            "fact",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]),
        );
        for i in 0..1000i64 {
            t_push(&mut fact, i % 100, i as f64);
        }
        let mut dim = Table::new(
            "dim",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]),
        );
        for i in 0..100i64 {
            t_push(&mut dim, i, i as f64);
        }
        let mut cat = Catalog::new();
        cat.register_table(fact).unwrap();
        cat.register_table(dim).unwrap();
        let stats = StatsCatalog::from_catalog(&cat);
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let f = ctx.add_base_rel("fact", "fact", schema.clone(), b);
        let d = ctx.add_base_rel("dim", "dim", schema, b);
        (ctx, stats, f, d)
    }

    fn t_push(t: &mut Table, k: i64, v: f64) {
        t.push(row(vec![Value::Int(k), Value::Float(v)])).unwrap();
    }

    #[test]
    fn equijoin_cardinality() {
        let (ctx, stats, f, d) = setup();
        let card = Cardinality::new(&ctx, &stats);
        let conj = vec![Scalar::eq(Scalar::col(f, 0), Scalar::col(d, 0))];
        let rows = card.spj_rows(&[f, d], &conj);
        // 1000 * 100 / max(100,100) = 1000.
        assert!((900.0..1100.0).contains(&rows), "{rows}");
    }

    #[test]
    fn cross_product_cardinality() {
        let (ctx, stats, f, d) = setup();
        let card = Cardinality::new(&ctx, &stats);
        let rows = card.spj_rows(&[f, d], &[]);
        assert_eq!(rows, 100_000.0);
    }

    #[test]
    fn filter_reduces_rows() {
        let (ctx, stats, f, d) = setup();
        let card = Cardinality::new(&ctx, &stats);
        let conj = vec![
            Scalar::eq(Scalar::col(f, 0), Scalar::col(d, 0)),
            Scalar::cmp(cse_algebra::CmpOp::Lt, Scalar::col(d, 0), Scalar::int(50)),
        ];
        let rows = card.spj_rows(&[f, d], &conj);
        assert!((400.0..600.0).contains(&rows), "{rows}");
    }

    #[test]
    fn group_rows_caps_at_input() {
        let (ctx, stats, f, _) = setup();
        let card = Cardinality::new(&ctx, &stats);
        // 100 distinct keys over 1000 rows -> close to 100 groups.
        let g = card.group_rows(&[ColRef::new(f, 0)], 1000.0);
        assert!((90.0..=100.0).contains(&g), "{g}");
        // Tiny input: groups bounded by input.
        let g2 = card.group_rows(&[ColRef::new(f, 0)], 5.0);
        assert!(g2 <= 5.0);
        // No keys: scalar aggregate.
        assert_eq!(card.group_rows(&[], 1000.0), 1.0);
    }

    #[test]
    fn width_sums_types() {
        let (ctx, _, f, _) = setup();
        let stats = StatsCatalog::new();
        let card = Cardinality::new(&ctx, &stats);
        let w = card.width_of(&[ColRef::new(f, 0), ColRef::new(f, 1)]);
        assert_eq!(w, 16.0);
    }
}
