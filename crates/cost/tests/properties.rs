//! Property tests: selectivities stay in [0,1], cost formulas are
//! monotone and non-negative — the invariants the search relies on.
//! Driven by the deterministic in-repo generator
//! (`cse_storage::testkit::TestRng`).

use cse_algebra::{CmpOp, PlanContext, RelId, Scalar};
use cse_cost::{CostModel, Selectivity, StatsCatalog};
use cse_storage::testkit::TestRng;
use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
use std::sync::Arc;

const CASES: usize = 200;

fn setup(n: i64) -> (PlanContext, StatsCatalog, RelId) {
    let mut t = Table::new(
        "t",
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]),
    );
    for i in 0..n {
        t.push(row(vec![Value::Int(i % 50), Value::Float((i % 13) as f64)]))
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register_table(t).unwrap();
    let stats = StatsCatalog::from_catalog(&cat);
    let mut ctx = PlanContext::new();
    let b = ctx.new_block();
    let schema = Arc::new(Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Float),
    ]));
    let r = ctx.add_base_rel("t", "t", schema, b);
    (ctx, stats, r)
}

fn gen_pred(rng: &mut TestRng, rel: RelId, depth: usize) -> Scalar {
    if depth == 0 || rng.chance(0.45) {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let c = rng.range_i64(0, 2) as u16;
        let v = rng.range_i64(-60, 60);
        Scalar::cmp(*rng.pick(&ops), Scalar::col(rel, c), Scalar::int(v))
    } else {
        match rng.range_usize(0, 3) {
            0 => {
                let n = rng.range_usize(1, 3);
                Scalar::and(
                    (0..n)
                        .map(|_| gen_pred(rng, rel, depth - 1))
                        .collect::<Vec<_>>(),
                )
            }
            1 => {
                let n = rng.range_usize(1, 3);
                Scalar::or(
                    (0..n)
                        .map(|_| gen_pred(rng, rel, depth - 1))
                        .collect::<Vec<_>>(),
                )
            }
            _ => Scalar::Not(Box::new(gen_pred(rng, rel, depth - 1))),
        }
    }
}

#[test]
fn selectivity_in_unit_interval() {
    let (ctx, stats, r) = setup(500);
    let mut rng = TestRng::new(0x61);
    for _ in 0..CASES {
        let p = gen_pred(&mut rng, r, 3);
        let s = Selectivity::new(&ctx, &stats).of(&p);
        assert!((0.0..=1.0).contains(&s), "selectivity {s} for {p}");
    }
}

#[test]
fn conjunction_never_more_selective_than_parts() {
    let (ctx, stats, r) = setup(500);
    let mut rng = TestRng::new(0x62);
    let sel = Selectivity::new(&ctx, &stats);
    for _ in 0..CASES {
        let p = gen_pred(&mut rng, r, 3);
        let q = gen_pred(&mut rng, r, 3);
        let sp = sel.of(&p);
        let spq = sel.of(&Scalar::and([p, q]));
        assert!(spq <= sp + 1e-9, "AND increased selectivity: {spq} > {sp}");
    }
}

#[test]
fn disjunction_never_less_selective_than_parts() {
    let (ctx, stats, r) = setup(500);
    let mut rng = TestRng::new(0x63);
    let sel = Selectivity::new(&ctx, &stats);
    for _ in 0..CASES {
        let p = gen_pred(&mut rng, r, 3);
        let q = gen_pred(&mut rng, r, 3);
        let sp = sel.of(&p);
        let spq = sel.of(&Scalar::or([p, q]));
        assert!(spq >= sp - 1e-9, "OR decreased selectivity: {spq} < {sp}");
    }
}

#[test]
fn costs_nonnegative_and_monotone() {
    let m = CostModel::default();
    let mut rng = TestRng::new(0x64);
    for _ in 0..CASES {
        let rows = rng.range_f64(1.0, 1e7);
        let width = rng.range_f64(1.0, 512.0);
        for f in [
            m.scan(rows, width),
            m.filter(rows),
            m.hash_join(rows, rows, rows),
            m.hash_agg(rows, rows / 2.0),
            m.spool_write(rows, width),
            m.spool_read(rows, width),
            m.sort(rows),
        ] {
            assert!(f >= 0.0 && f.is_finite());
        }
        assert!(m.scan(rows * 2.0, width) >= m.scan(rows, width));
        assert!(m.spool_write(rows, width * 2.0) >= m.spool_write(rows, width));
    }
}
