//! Property tests: selectivities stay in [0,1], cost formulas are
//! monotone and non-negative — the invariants the search relies on.

use cse_algebra::{CmpOp, PlanContext, RelId, Scalar};
use cse_cost::{CostModel, Selectivity, StatsCatalog};
use cse_storage::{row, Catalog, DataType, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn setup(n: i64) -> (PlanContext, StatsCatalog, RelId) {
    let mut t = Table::new(
        "t",
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]),
    );
    for i in 0..n {
        t.push(row(vec![
            Value::Int(i % 50),
            Value::Float((i % 13) as f64),
        ]))
        .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register_table(t).unwrap();
    let stats = StatsCatalog::from_catalog(&cat);
    let mut ctx = PlanContext::new();
    let b = ctx.new_block();
    let schema = Arc::new(Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Float),
    ]));
    let r = ctx.add_base_rel("t", "t", schema, b);
    (ctx, stats, r)
}

fn arb_pred(rel: RelId) -> impl Strategy<Value = Scalar> {
    let leaf = ((0u16..2), -60i64..60, 0usize..6).prop_map(move |(c, v, op)| {
        let op = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][op];
        Scalar::cmp(op, Scalar::col(rel, c), Scalar::int(v))
    });
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Scalar::and),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Scalar::or),
            inner.prop_map(|p| Scalar::Not(Box::new(p))),
        ]
    })
}

proptest! {
    #[test]
    fn selectivity_in_unit_interval(p in arb_pred(RelId(0))) {
        let (ctx, stats, _) = setup(500);
        let s = Selectivity::new(&ctx, &stats).of(&p);
        prop_assert!((0.0..=1.0).contains(&s), "selectivity {s} for {p}");
    }

    #[test]
    fn conjunction_never_more_selective_than_parts(
        p in arb_pred(RelId(0)),
        q in arb_pred(RelId(0)),
    ) {
        let (ctx, stats, _) = setup(500);
        let sel = Selectivity::new(&ctx, &stats);
        let sp = sel.of(&p);
        let spq = sel.of(&Scalar::and([p, q]));
        prop_assert!(spq <= sp + 1e-9, "AND increased selectivity: {spq} > {sp}");
    }

    #[test]
    fn disjunction_never_less_selective_than_parts(
        p in arb_pred(RelId(0)),
        q in arb_pred(RelId(0)),
    ) {
        let (ctx, stats, _) = setup(500);
        let sel = Selectivity::new(&ctx, &stats);
        let sp = sel.of(&p);
        let spq = sel.of(&Scalar::or([p, q]));
        prop_assert!(spq >= sp - 1e-9, "OR decreased selectivity: {spq} < {sp}");
    }

    #[test]
    fn costs_nonnegative_and_monotone(rows in 1.0f64..1e7, width in 1.0f64..512.0) {
        let m = CostModel::default();
        for f in [
            m.scan(rows, width),
            m.filter(rows),
            m.hash_join(rows, rows, rows),
            m.hash_agg(rows, rows / 2.0),
            m.spool_write(rows, width),
            m.spool_read(rows, width),
            m.sort(rows),
        ] {
            prop_assert!(f >= 0.0 && f.is_finite());
        }
        prop_assert!(m.scan(rows * 2.0, width) >= m.scan(rows, width));
        prop_assert!(m.spool_write(rows, width * 2.0) >= m.spool_write(rows, width));
    }
}
