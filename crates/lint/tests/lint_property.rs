//! Property tests for the analyzer's semantics-preserving passes.
//!
//! The central contract of `cse_lint::fold` is that it mirrors the
//! engine's evaluation semantics **exactly**: for every row, evaluating
//! the folded expression gives the same [`Value`] as evaluating the
//! original. We check this on randomly generated expression trees and
//! randomly generated rows (including NULLs), drawn from the repo's
//! deterministic xorshift PRNG (`cse_storage::testkit::TestRng`).
//!
//! A second property covers the range pass: `prove_unsat` is
//! refutation-sound — whenever it proves a conjunction empty, no random
//! row satisfies all conjuncts under engine evaluation.

use cse_algebra::{ArithOp, CmpOp, ColRef, PlanContext, RelId, Scalar};
use cse_exec::{accepts, eval, Layout};
use cse_lint::fold::fold;
use cse_lint::ranges::prove_unsat;
use cse_storage::testkit::TestRng;
use cse_storage::{DataType, Schema, Value};
use std::sync::Arc;

/// Columns the generated expressions draw from: (int, float, date).
const N_COLS: u16 = 3;

fn context() -> (PlanContext, RelId) {
    let mut ctx = PlanContext::new();
    let b = ctx.new_block();
    let schema = Arc::new(Schema::from_pairs(&[
        ("i", DataType::Int),
        ("f", DataType::Float),
        ("d", DataType::Date),
    ]));
    let r = ctx.add_base_rel("t", "t", schema, b);
    (ctx, r)
}

/// A random row for the 3-column layout, with NULLs mixed in.
fn random_row(rng: &mut TestRng) -> Vec<Value> {
    (0..N_COLS)
        .map(|c| {
            if rng.chance(0.15) {
                Value::Null
            } else {
                match c {
                    0 => Value::Int(rng.range_i64(-50, 51)),
                    1 => Value::Float((rng.range_i64(-500, 501) as f64) / 10.0),
                    _ => Value::Date(rng.range_i64(9_000, 10_000) as i32),
                }
            }
        })
        .collect()
}

/// Generated expressions are **well-typed**: booleans where the engine
/// expects booleans, numerics inside arithmetic and comparisons. The
/// engine evaluates an ill-typed operand of `AND`/`OR`/`NOT` as NULL-ish
/// (e.g. `Or([Float, false])` is NULL), so identities like dropping the
/// OR-identity `false` — valid on booleans — would diverge under `IS
/// NULL` on junk trees the analyzer's type audit rejects anyway. The
/// folder's contract is scoped to type-checked predicates.
#[derive(Clone, Copy)]
enum NumKind {
    Int,
    Float,
    Date,
}

/// A random numeric-typed expression. Int magnitudes stay small and the
/// arithmetic depth is bounded (≤3 via the boolean generator) so that
/// nested *unchecked* engine arithmetic cannot overflow: the folder
/// declines to fold overflowing shapes precisely because the engine's
/// behavior there is target-dependent — the property would otherwise
/// compare two target-dependent values.
fn random_num(rng: &mut TestRng, r: RelId, depth: usize, kind: NumKind) -> Scalar {
    let leaf = depth == 0 || matches!(kind, NumKind::Date) || rng.chance(0.35);
    if leaf {
        if rng.chance(0.08) {
            return Scalar::Lit(Value::Null);
        }
        return match kind {
            NumKind::Int => {
                if rng.chance(0.5) {
                    Scalar::col(r, 0)
                } else {
                    Scalar::int(rng.range_i64(-50, 51))
                }
            }
            NumKind::Float => {
                if rng.chance(0.5) {
                    Scalar::col(r, 1)
                } else {
                    Scalar::Lit(Value::Float((rng.range_i64(-500, 501) as f64) / 10.0))
                }
            }
            NumKind::Date => {
                if rng.chance(0.5) {
                    Scalar::col(r, 2)
                } else {
                    Scalar::Lit(Value::Date(rng.range_i64(9_000, 10_000) as i32))
                }
            }
        };
    }
    let op = *rng.pick(&[ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div]);
    Scalar::Arith(
        op,
        Box::new(random_num(rng, r, depth - 1, kind)),
        Box::new(random_num(rng, r, depth - 1, kind)),
    )
}

/// A random boolean-typed expression tree of bounded depth.
fn random_scalar(rng: &mut TestRng, r: RelId, depth: usize) -> Scalar {
    if depth == 0 || rng.chance(0.2) {
        return if rng.chance(0.75) {
            Scalar::Lit(Value::Bool(rng.chance(0.5)))
        } else {
            Scalar::Lit(Value::Null)
        };
    }
    match rng.range_usize(0, 6) {
        0 | 1 => {
            let kind = *rng.pick(&[NumKind::Int, NumKind::Float, NumKind::Date]);
            let op = *rng.pick(&[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ]);
            Scalar::cmp(
                op,
                random_num(rng, r, depth - 1, kind),
                random_num(rng, r, depth - 1, kind),
            )
        }
        2 => {
            let n = rng.range_usize(0, 4);
            Scalar::And((0..n).map(|_| random_scalar(rng, r, depth - 1)).collect())
        }
        3 => {
            let n = rng.range_usize(0, 4);
            Scalar::Or((0..n).map(|_| random_scalar(rng, r, depth - 1)).collect())
        }
        4 => Scalar::Not(Box::new(random_scalar(rng, r, depth - 1))),
        _ => {
            // IS NULL accepts any operand type.
            let inner = if rng.chance(0.5) {
                random_scalar(rng, r, depth - 1)
            } else {
                let kind = *rng.pick(&[NumKind::Int, NumKind::Float, NumKind::Date]);
                random_num(rng, r, depth - 1, kind)
            };
            Scalar::IsNull(Box::new(inner))
        }
    }
}

/// Engine-equality between two values: NaN == NaN, otherwise `==`.
/// (Folding float arithmetic in a different association order never
/// happens — the folder is bottom-up and literal-only — but NaN needs
/// special-casing because `Value: PartialEq` is IEEE on floats.)
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x.is_nan() && y.is_nan()) || x == y,
        _ => a == b,
    }
}

#[test]
fn folding_never_changes_evaluation() {
    let (_ctx, r) = context();
    let layout = Layout::new(&[ColRef::new(r, 0), ColRef::new(r, 1), ColRef::new(r, 2)]);
    let mut rng = TestRng::new(0x000C_5E11);
    let mut folded_to_literal = 0usize;
    for case in 0..400 {
        let s = random_scalar(&mut rng, r, 4);
        let f = fold(&s);
        if matches!(f, Scalar::Lit(_)) {
            folded_to_literal += 1;
        }
        for _ in 0..8 {
            let row = random_row(&mut rng);
            let v_orig = eval(&s, &layout, &row);
            let v_fold = eval(&f, &layout, &row);
            assert!(
                same_value(&v_orig, &v_fold),
                "case {case}: folding changed evaluation\n  expr:   {s}\n  folded: {f}\n  row:    {row:?}\n  orig {v_orig} vs folded {v_fold}"
            );
        }
    }
    // The generator produces plenty of literal-only subtrees; if nothing
    // ever folds to a literal the test is vacuous.
    assert!(
        folded_to_literal > 40,
        "only {folded_to_literal}/400 cases folded to a literal — generator drifted?"
    );
}

#[test]
fn normalization_then_folding_also_preserves_evaluation() {
    // `lint_batch` folds the *normalized* conjuncts the lowerer traced;
    // check the composition too.
    let (_ctx, r) = context();
    let layout = Layout::new(&[ColRef::new(r, 0), ColRef::new(r, 1), ColRef::new(r, 2)]);
    let mut rng = TestRng::new(0xBEEF);
    for _ in 0..200 {
        let s = random_scalar(&mut rng, r, 3);
        let f = fold(&s.clone().normalize());
        for _ in 0..4 {
            let row = random_row(&mut rng);
            // Normalization preserves *acceptance* (it may rewrite NULL
            // outcomes of NOT-pushing, e.g. NOT(a<b) -> a>=b flips NULL
            // handling only for non-comparable operands — which the
            // engine treats identically for filtering).
            let a_orig = accepts(&s, &layout, &row);
            let a_fold = accepts(&f, &layout, &row);
            assert_eq!(
                a_orig, a_fold,
                "normalize+fold changed acceptance\n  expr:   {s}\n  folded: {f}\n  row:    {row:?}"
            );
        }
    }
}

#[test]
fn prove_unsat_is_refutation_sound() {
    let (ctx, r) = context();
    let layout = Layout::new(&[ColRef::new(r, 0), ColRef::new(r, 1), ColRef::new(r, 2)]);
    let mut rng = TestRng::new(0x5EED);
    let mut proven = 0usize;
    for _ in 0..600 {
        // 2-4 random col-vs-literal conjuncts over the int column, with
        // tight ranges so contradictions actually occur.
        let n = rng.range_usize(2, 5);
        let conjuncts: Vec<Scalar> = (0..n)
            .map(|_| {
                let op = *rng.pick(&[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ]);
                Scalar::cmp(op, Scalar::col(r, 0), Scalar::int(rng.range_i64(-3, 4)))
            })
            .collect();
        if prove_unsat(&ctx, &conjuncts).is_some() {
            proven += 1;
            let pred = Scalar::and(conjuncts.clone());
            for _ in 0..64 {
                let mut row = random_row(&mut rng);
                row[0] = Value::Int(rng.range_i64(-6, 7));
                assert!(
                    !accepts(&pred, &layout, &row),
                    "prove_unsat claimed empty but a row passed: {pred} on {row:?}"
                );
            }
        }
    }
    assert!(proven > 30, "only {proven}/600 cases were proven empty");
}

#[test]
fn null_bounds_are_ignored_by_ranges() {
    // `c < NULL` never accepts a row, but that is the fold pass's
    // finding; the range pass must not treat NULL as a bound (NULL is
    // not comparable, so "lo = NULL" would poison the emptiness test).
    let (ctx, r) = context();
    let c = Scalar::col(r, 0);
    let conj = vec![
        Scalar::cmp(CmpOp::Lt, c.clone(), Scalar::Lit(Value::Null)),
        Scalar::cmp(CmpOp::Gt, c, Scalar::int(0)),
    ];
    assert!(prove_unsat(&ctx, &conj).is_none());
    // And the folder catches the NULL comparison as never-accepting.
    let folded = fold(&conj[0]);
    assert!(cse_lint::fold::is_const_null(&folded));
}
