//! Column-liveness analysis (analyzer pass 3).
//!
//! Two dead-code shapes over a lowered statement:
//!
//! - **dead group-by keys**: a key of the statement's root aggregate that
//!   no operator *above* the aggregate consumes (not projected, not
//!   sorted on, not filtered on by HAVING). Grouping by it still changes
//!   row multiplicity — which is exactly why this is a lint, not a
//!   rewrite: the analyzer flags it, the constructor never drops it;
//! - **duplicate projections**: the same select-list expression delivered
//!   twice (detected on the AST, where span-insensitive equality makes
//!   `a` and `a` compare equal even at different offsets).

use cse_algebra::{ColRef, LogicalPlan};
use cse_sql::ast::{SelectItem, SelectStmt};
use cse_sql::Span;
use std::collections::BTreeSet;

/// Group-by keys of the statement's root aggregate that nothing above the
/// aggregate consumes. Returns an empty list when the statement has no
/// aggregate on its root spine.
pub fn dead_group_keys(plan: &LogicalPlan) -> Vec<ColRef> {
    let mut consumed: BTreeSet<ColRef> = BTreeSet::new();
    let mut node = plan;
    loop {
        match node {
            LogicalPlan::Project { input, exprs } => {
                for (_, e) in exprs {
                    consumed.extend(e.columns());
                }
                node = input;
            }
            LogicalPlan::Sort { input, keys } => {
                for (k, _) in keys {
                    consumed.extend(k.columns());
                }
                node = input;
            }
            LogicalPlan::Filter { input, pred } => {
                consumed.extend(pred.columns());
                node = input;
            }
            // HAVING subqueries cross-join above the aggregate; the spine
            // continues down the left side.
            LogicalPlan::Join { left, .. } => {
                node = left;
            }
            LogicalPlan::Aggregate { keys, .. } => {
                return keys
                    .iter()
                    .filter(|k| !consumed.contains(k))
                    .copied()
                    .collect();
            }
            // No aggregate on the spine: nothing to report.
            _ => return Vec::new(),
        }
    }
}

/// Select-list items that duplicate an earlier item's expression. Returns
/// `(select-list index, span of the duplicate)` pairs.
pub fn duplicate_projections(stmt: &SelectStmt) -> Vec<(usize, Span)> {
    let mut seen: Vec<&cse_sql::Expr> = Vec::new();
    let mut out = Vec::new();
    for (i, item) in stmt.select.iter().enumerate() {
        if let SelectItem::Expr { expr, .. } = item {
            // AST equality ignores spans, so re-spelled duplicates match.
            if seen.iter().any(|e| **e == *expr) {
                out.push((i, expr.span));
            } else {
                seen.push(expr);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{AggExpr, PlanContext, RelId, Scalar};
    use cse_sql::parse_one;
    use cse_sql::Statement;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn agg_plan(project_key: bool) -> (PlanContext, RelId, LogicalPlan) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let r = ctx.add_base_rel("t", "t", schema, b);
        let out = ctx.add_agg_output(&[DataType::Float], b);
        let key = ColRef::new(r, 0);
        let agg = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::get(r)),
            keys: vec![key],
            aggs: vec![AggExpr::sum(Scalar::col(r, 1))],
            out,
        };
        let mut exprs = vec![("s".to_string(), Scalar::col(out, 0))];
        if project_key {
            exprs.insert(0, ("k".to_string(), Scalar::Col(key)));
        }
        (ctx, r, agg.project(exprs))
    }

    #[test]
    fn unprojected_key_is_dead() {
        let (_, r, plan) = agg_plan(false);
        assert_eq!(dead_group_keys(&plan), vec![ColRef::new(r, 0)]);
    }

    #[test]
    fn projected_key_is_live() {
        let (_, _, plan) = agg_plan(true);
        assert!(dead_group_keys(&plan).is_empty());
    }

    #[test]
    fn having_consumption_counts() {
        let (_, r, plan) = agg_plan(false);
        // Wrap the aggregate in a HAVING-style filter on the key.
        let plan = match plan {
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(input.filter(Scalar::eq(Scalar::col(r, 0), Scalar::int(1)))),
                exprs,
            },
            other => other,
        };
        assert!(dead_group_keys(&plan).is_empty());
    }

    #[test]
    fn spj_statement_has_no_dead_keys() {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let r = ctx.add_base_rel("t", "t", schema, b);
        let plan = LogicalPlan::get(r).project(vec![("k".into(), Scalar::col(r, 0))]);
        assert!(dead_group_keys(&plan).is_empty());
    }

    #[test]
    fn duplicate_select_items_found() {
        let stmt = match parse_one("select a, b, a from t").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let dups = duplicate_projections(&stmt);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].0, 2);
        let stmt = match parse_one("select a, b from t").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(duplicate_projections(&stmt).is_empty());
    }
}
