//! Cross-statement batch analysis (analyzer pass 4).
//!
//! Computes the paper's table signatures *statically* — straight from the
//! lowered statement trees, before any memo exists — and reports pairwise
//! CSE-opportunity hints: two statements whose SPJG cores share a
//! signature are candidates for one covering subexpression, and the
//! join-compatibility test of §4.1 (connectivity of the intersected
//! equijoin graph, after aligning the second statement's table instances
//! onto the first's) decides whether construction could actually cover
//! them.
//!
//! This is the lint-time mirror of what `cse-core`'s detection phase does
//! over the memo; agreement between the two is checked by the end-to-end
//! tests (a `lint/share-hint` on statements that the pipeline then covers
//! with a spool).

use cse_algebra::{join_compatible, ColRef, LogicalPlan, PlanContext, RelId, RelKind, SpjgNormal};
use cse_memo::TableSignature;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Strip root-level `Project`/`Sort` wrappers: `SpjgNormal::from_plan`
/// deliberately refuses them, and every lowered statement keeps them at
/// the root.
pub fn strip_root(plan: &LogicalPlan) -> &LogicalPlan {
    let mut node = plan;
    loop {
        match node {
            LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => node = input,
            other => return other,
        }
    }
}

/// The table signature of an SPJG normal form, computed without a memo:
/// `grouped` from the normal form, tables as the sorted multiset of base
/// names (`Δ`-prefixed for delta rels, matching
/// `cse-memo::compute_signature`).
pub fn static_signature(ctx: &PlanContext, normal: &SpjgNormal) -> TableSignature {
    let mut tables: Vec<String> = normal
        .spj
        .rels
        .iter()
        .map(|r| {
            let info = ctx.rel(*r);
            match info.kind {
                RelKind::Delta => format!("Δ{}", info.name),
                _ => info.name.clone(),
            }
        })
        .collect();
    tables.sort();
    TableSignature {
        grouped: normal.has_group(),
        tables,
    }
}

/// One pairwise share verdict between statements `i` and `j` (batch
/// order) with a common signature.
#[derive(Debug, Clone)]
pub struct ShareVerdict {
    pub i: usize,
    pub j: usize,
    pub signature: TableSignature,
    /// §4.1 verdict: is the intersected equijoin graph connected?
    pub compatible: bool,
}

/// Map statement `j`'s rel ids onto statement `i`'s, pairing instances of
/// the same base table in sorted-name order (the same convention
/// `cse-core`'s alignment uses for self-join disambiguation).
fn align_rels(
    ctx: &PlanContext,
    rels_i: &[RelId],
    rels_j: &[RelId],
) -> Option<BTreeMap<RelId, RelId>> {
    if rels_i.len() != rels_j.len() {
        return None;
    }
    let by_name = |rels: &[RelId]| -> Vec<(String, RelId)> {
        let mut v: Vec<(String, RelId)> = rels
            .iter()
            .map(|r| (ctx.rel(*r).name.clone(), *r))
            .collect();
        v.sort();
        v
    };
    let (a, b) = (by_name(rels_i), by_name(rels_j));
    let mut map = BTreeMap::new();
    for ((na, ra), (nb, rb)) in a.iter().zip(b.iter()) {
        if na != nb {
            return None; // different table multisets
        }
        map.insert(*rb, *ra);
    }
    Some(map)
}

/// Compute pairwise share hints for the batch. `normals` holds
/// `(statement index, SPJG normal form)` for every statement that lowered
/// cleanly and has an SPJG core.
pub fn share_hints(ctx: &PlanContext, normals: &[(usize, SpjgNormal)]) -> Vec<ShareVerdict> {
    let mut out = Vec::new();
    for (a, (i, ni)) in normals.iter().enumerate() {
        let sig_i = static_signature(ctx, ni);
        for (j, nj) in normals.iter().skip(a + 1) {
            let sig_j = static_signature(ctx, nj);
            if sig_i != sig_j {
                continue;
            }
            let Some(map) = align_rels(ctx, &ni.spj.rels, &nj.spj.rels) else {
                continue;
            };
            // Rewrite j's equivalence classes into i's rel-id space.
            let classes_i = ni.spj.equiv_classes();
            let classes_j: Vec<BTreeSet<ColRef>> = nj
                .spj
                .equiv_classes()
                .into_iter()
                .map(|cl| {
                    cl.into_iter()
                        .map(|c| ColRef::new(*map.get(&c.rel).unwrap_or(&c.rel), c.col))
                        .collect()
                })
                .collect();
            let compatible =
                join_compatible(ni.spj.rel_set(), &[classes_i.clone(), classes_j]).is_some();
            out.push(ShareVerdict {
                i: *i,
                j: *j,
                signature: sig_i.clone(),
                compatible,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{CmpOp, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    /// Two two-table statements over (customer, orders): one pair joined
    /// on custkey=custkey in both (compatible), one joined on different
    /// classes (incompatible).
    fn setup() -> (PlanContext, Vec<(usize, SpjgNormal)>) {
        let mut ctx = PlanContext::new();
        let cust = Arc::new(Schema::from_pairs(&[
            ("c_custkey", DataType::Int),
            ("c_nationkey", DataType::Int),
        ]));
        let ord = Arc::new(Schema::from_pairs(&[
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
        ]));
        let mut normals = Vec::new();
        for stmt in 0..3 {
            let b = ctx.new_block();
            let c = ctx.add_base_rel("customer", "c", cust.clone(), b);
            let o = ctx.add_base_rel("orders", "o", ord.clone(), b);
            // Statements 0 and 1 join c_custkey = o_custkey; statement 2
            // joins c_nationkey = o_orderkey (disjoint classes).
            let pred = if stmt < 2 {
                Scalar::eq(Scalar::col(c, 0), Scalar::col(o, 1))
            } else {
                Scalar::eq(Scalar::col(c, 1), Scalar::col(o, 0))
            };
            let plan = LogicalPlan::get(c)
                .join(LogicalPlan::get(o), pred)
                .filter(Scalar::cmp(
                    CmpOp::Gt,
                    Scalar::col(c, 1),
                    Scalar::int(stmt as i64),
                ))
                .project(vec![("x".into(), Scalar::col(c, 0))]);
            let normal = SpjgNormal::from_plan(strip_root(&plan)).unwrap();
            normals.push((stmt, normal));
        }
        (ctx, normals)
    }

    #[test]
    fn signatures_match_across_statements() {
        let (ctx, normals) = setup();
        let s0 = static_signature(&ctx, &normals[0].1);
        let s2 = static_signature(&ctx, &normals[2].1);
        assert_eq!(s0, s2);
        assert_eq!(s0.to_string(), "[F; {customer,orders}]");
    }

    #[test]
    fn pairwise_verdicts() {
        let (ctx, normals) = setup();
        let hints = share_hints(&ctx, &normals);
        // Three statements with one signature: 3 pairs.
        assert_eq!(hints.len(), 3);
        let verdict = |i: usize, j: usize| {
            hints
                .iter()
                .find(|h| h.i == i && h.j == j)
                .expect("pair present")
                .compatible
        };
        assert!(verdict(0, 1), "same join class: compatible");
        assert!(!verdict(0, 2), "disjoint join classes: incompatible");
        assert!(!verdict(1, 2));
    }

    #[test]
    fn different_signatures_produce_no_hint() {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let s = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let t = ctx.add_base_rel("t", "t", s.clone(), b);
        let u = ctx.add_base_rel("u", "u", s, b);
        let n1 = SpjgNormal::from_plan(&LogicalPlan::get(t)).unwrap();
        let n2 = SpjgNormal::from_plan(&LogicalPlan::get(u)).unwrap();
        assert!(share_hints(&ctx, &[(0, n1), (1, n2)]).is_empty());
    }

    #[test]
    fn single_table_statements_are_trivially_compatible() {
        let mut ctx = PlanContext::new();
        let s = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let b1 = ctx.new_block();
        let t1 = ctx.add_base_rel("t", "t", s.clone(), b1);
        let b2 = ctx.new_block();
        let t2 = ctx.add_base_rel("t", "t", s, b2);
        let n1 = SpjgNormal::from_plan(&LogicalPlan::get(t1)).unwrap();
        let n2 = SpjgNormal::from_plan(&LogicalPlan::get(t2)).unwrap();
        let hints = share_hints(&ctx, &[(0, n1), (1, n2)]);
        assert_eq!(hints.len(), 1);
        assert!(hints[0].compatible);
    }
}
