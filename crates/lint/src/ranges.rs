//! Interval / range dataflow over scalar predicates (analyzer pass 2b).
//!
//! Extends the conservative interval logic of
//! `cse-algebra::implication::column_ranges` with what a *refutation*
//! pass additionally needs:
//!
//! - `<>` exclusions (so `c = 5 AND c <> 5` is refuted);
//! - emptiness testing, including **integral-domain adjacency**: on an
//!   `INT` or `DATE` column, `c > 4 AND c < 5` is unsatisfiable because
//!   no integer lies strictly between 4 and 5. Exclusive integral bounds
//!   are normalized to inclusive ones with `checked_add`/`checked_sub`,
//!   so `c > i64::MAX` is recognized as empty instead of wrapping.
//!
//! Everything here is *refutation-only*: a `None` verdict means "could
//! not prove empty", never "satisfiable".

use cse_algebra::{CmpOp, ColRef, PlanContext, Scalar};
use cse_storage::{DataType, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Per-column constraint state accumulated from conjuncts.
#[derive(Debug, Clone, Default)]
pub struct ColRange {
    /// Greatest lower bound seen: `(value, inclusive)`.
    pub lo: Option<(Value, bool)>,
    /// Least upper bound seen: `(value, inclusive)`.
    pub hi: Option<(Value, bool)>,
    /// Values excluded by `<>` conjuncts.
    pub ne: BTreeSet<Value>,
}

impl ColRange {
    fn tighten_lo(&mut self, v: Value, inclusive: bool) {
        let better = match &self.lo {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Less => false,
            },
        };
        if better {
            self.lo = Some((v, inclusive));
        }
    }

    fn tighten_hi(&mut self, v: Value, inclusive: bool) {
        let better = match &self.hi {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };
        if better {
            self.hi = Some((v, inclusive));
        }
    }

    /// The exact value this range pins the column to, if both bounds
    /// coincide inclusively.
    pub fn point(&self) -> Option<&Value> {
        match (&self.lo, &self.hi) {
            (Some((lv, true)), Some((hv, true)))
                if lv.total_cmp(hv) == std::cmp::Ordering::Equal =>
            {
                Some(lv)
            }
            _ => None,
        }
    }

    /// Can this range be *proven* empty for a column of type `ty`?
    /// Returns a human-readable reason when it can.
    pub fn prove_empty(&self, ty: DataType) -> Option<String> {
        // A pinned point excluded by a <> conjunct.
        if let Some(p) = self.point() {
            if self.ne.contains(p) {
                return Some(format!("pinned to {p} but excluded by <> {p}"));
            }
        }
        let (lo, hi) = match (&self.lo, &self.hi) {
            (Some(lo), Some(hi)) => (lo.clone(), hi.clone()),
            _ => return None,
        };
        // Integral domains: normalize exclusive bounds to inclusive ones
        // so adjacency gaps (`> 4 AND < 5`) become visible as crossings.
        let integral = matches!(ty, DataType::Int | DataType::Date);
        let (lo, hi) = if integral {
            let lo = match lo {
                (Value::Int(v), false) => match v.checked_add(1) {
                    Some(v1) => (Value::Int(v1), true),
                    // c > i64::MAX: nothing above it.
                    None => return Some(format!("> {v} exceeds the INT domain")),
                },
                (Value::Date(v), false) => match v.checked_add(1) {
                    Some(v1) => (Value::Date(v1), true),
                    None => return Some(format!("> {} exceeds the DATE domain", Value::Date(v))),
                },
                other => other,
            };
            let hi = match hi {
                (Value::Int(v), false) => match v.checked_sub(1) {
                    Some(v1) => (Value::Int(v1), true),
                    None => return Some(format!("< {v} exceeds the INT domain")),
                },
                (Value::Date(v), false) => match v.checked_sub(1) {
                    Some(v1) => (Value::Date(v1), true),
                    None => return Some(format!("< {} exceeds the DATE domain", Value::Date(v))),
                },
                other => other,
            };
            (lo, hi)
        } else {
            (lo, hi)
        };
        let (lv, li) = &lo;
        let (hv, hi_inc) = &hi;
        match lv.total_cmp(hv) {
            std::cmp::Ordering::Greater => Some(format!(
                "lower bound {} {lv} exceeds upper bound {} {hv}",
                if *li { ">=" } else { ">" },
                if *hi_inc { "<=" } else { "<" },
            )),
            std::cmp::Ordering::Equal if !(*li && *hi_inc) => Some(format!(
                "bounds meet at {lv} but at least one side is exclusive"
            )),
            _ => None,
        }
    }
}

/// Accumulate per-column ranges (including `<>` exclusions) from the
/// col-vs-literal conjuncts of a predicate list. Conjuncts that are not
/// col-vs-literal atoms are ignored (conservative).
pub fn collect_ranges(conjuncts: &[Scalar]) -> BTreeMap<ColRef, ColRange> {
    let mut out: BTreeMap<ColRef, ColRange> = BTreeMap::new();
    for conj in conjuncts {
        if let Some((col, op, v)) = conj.as_col_vs_lit() {
            if v.is_null() {
                // `c < NULL` never accepts, but that is the fold pass's
                // finding; range logic only tracks real bounds.
                continue;
            }
            let r = out.entry(col).or_default();
            match op {
                CmpOp::Eq => {
                    r.tighten_lo(v.clone(), true);
                    r.tighten_hi(v, true);
                }
                CmpOp::Lt => r.tighten_hi(v, false),
                CmpOp::Le => r.tighten_hi(v, true),
                CmpOp::Gt => r.tighten_lo(v, false),
                CmpOp::Ge => r.tighten_lo(v, true),
                CmpOp::Ne => {
                    r.ne.insert(v);
                }
            }
        }
    }
    out
}

/// Try to prove the conjunction of `conjuncts` unsatisfiable through
/// per-column range analysis. Returns `(column, reason)` for the first
/// provably-empty column; `None` means "not provably empty".
pub fn prove_unsat(ctx: &PlanContext, conjuncts: &[Scalar]) -> Option<(ColRef, String)> {
    let ranges = collect_ranges(conjuncts);
    for (col, r) in &ranges {
        if let Some(reason) = r.prove_empty(ctx.col_type(*col)) {
            return Some((*col, reason));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::RelId;
    use cse_storage::Schema;
    use std::sync::Arc;

    fn ctx_int_float() -> (PlanContext, RelId) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("d", DataType::Date),
        ]));
        let r = ctx.add_base_rel("t", "t", schema, b);
        (ctx, r)
    }

    fn cmp(op: CmpOp, col: Scalar, v: Value) -> Scalar {
        Scalar::cmp(op, col, Scalar::Lit(v))
    }

    #[test]
    fn crossing_bounds_are_empty() {
        let (ctx, r) = ctx_int_float();
        let c = Scalar::col(r, 0);
        let conj = vec![
            cmp(CmpOp::Lt, c.clone(), Value::Int(5)),
            cmp(CmpOp::Gt, c, Value::Int(10)),
        ];
        let (col, reason) = prove_unsat(&ctx, &conj).expect("a < 5 AND a > 10 is empty");
        assert_eq!(col, ColRef::new(r, 0));
        assert!(reason.contains("exceeds"), "{reason}");
    }

    #[test]
    fn integral_adjacency_gap_is_empty_but_float_is_not() {
        let (ctx, r) = ctx_int_float();
        // INT: > 4 AND < 5 has no integer solutions.
        let i = Scalar::col(r, 0);
        let conj = vec![
            cmp(CmpOp::Gt, i.clone(), Value::Int(4)),
            cmp(CmpOp::Lt, i, Value::Int(5)),
        ];
        assert!(prove_unsat(&ctx, &conj).is_some());
        // FLOAT: > 4 AND < 5 is satisfiable (e.g. 4.5).
        let f = Scalar::col(r, 1);
        let conj = vec![
            cmp(CmpOp::Gt, f.clone(), Value::Int(4)),
            cmp(CmpOp::Lt, f, Value::Int(5)),
        ];
        assert!(prove_unsat(&ctx, &conj).is_none());
    }

    #[test]
    fn equality_vs_ne_conflict() {
        let (ctx, r) = ctx_int_float();
        let c = Scalar::col(r, 0);
        let conj = vec![
            cmp(CmpOp::Eq, c.clone(), Value::Int(7)),
            cmp(CmpOp::Ne, c, Value::Int(7)),
        ];
        let (_, reason) = prove_unsat(&ctx, &conj).expect("= 7 AND <> 7 is empty");
        assert!(reason.contains("excluded"), "{reason}");
    }

    #[test]
    fn two_distinct_equalities_conflict() {
        let (ctx, r) = ctx_int_float();
        let c = Scalar::col(r, 0);
        let conj = vec![
            cmp(CmpOp::Eq, c.clone(), Value::Int(1)),
            cmp(CmpOp::Eq, c, Value::Int(2)),
        ];
        assert!(prove_unsat(&ctx, &conj).is_some());
    }

    #[test]
    fn i64_extremes_do_not_wrap() {
        let (ctx, r) = ctx_int_float();
        let c = Scalar::col(r, 0);
        // c > i64::MAX: empty, and must not wrap to i64::MIN.
        let conj = vec![cmp(CmpOp::Gt, c.clone(), Value::Int(i64::MAX))];
        // Only one bound: not provable (no hi). Add any upper bound.
        let conj2 = vec![
            cmp(CmpOp::Gt, c.clone(), Value::Int(i64::MAX)),
            cmp(CmpOp::Lt, c.clone(), Value::Int(0)),
        ];
        assert!(prove_unsat(&ctx, &conj).is_none());
        assert!(prove_unsat(&ctx, &conj2).is_some());
        // c < i64::MIN with a lower bound: empty through checked_sub.
        let conj3 = vec![
            cmp(CmpOp::Lt, c.clone(), Value::Int(i64::MIN)),
            cmp(CmpOp::Gt, c, Value::Int(0)),
        ];
        assert!(prove_unsat(&ctx, &conj3).is_some());
    }

    #[test]
    fn date_adjacency() {
        let (ctx, r) = ctx_int_float();
        let d = Scalar::col(r, 2);
        let day = |s: &str| Value::date(s).unwrap();
        // > 1996-06-30 AND < 1996-07-01: adjacent days, empty.
        let conj = vec![
            cmp(CmpOp::Gt, d.clone(), day("1996-06-30")),
            cmp(CmpOp::Lt, d.clone(), day("1996-07-01")),
        ];
        assert!(prove_unsat(&ctx, &conj).is_some());
        // >= 1996-06-30 AND < 1996-07-01 admits exactly one day.
        let conj = vec![
            cmp(CmpOp::Ge, d.clone(), day("1996-06-30")),
            cmp(CmpOp::Lt, d, day("1996-07-01")),
        ];
        assert!(prove_unsat(&ctx, &conj).is_none());
    }

    #[test]
    fn satisfiable_ranges_stay_open() {
        let (ctx, r) = ctx_int_float();
        let c = Scalar::col(r, 0);
        let conj = vec![
            cmp(CmpOp::Gt, c.clone(), Value::Int(0)),
            cmp(CmpOp::Lt, c.clone(), Value::Int(25)),
            cmp(CmpOp::Ne, c, Value::Int(10)),
        ];
        assert!(prove_unsat(&ctx, &conj).is_none());
    }
}
