//! # cse-lint
//!
//! qlint: a multi-pass static semantic analyzer and batch linter over the
//! SQL → logical frontend. It runs between lowering (`cse-sql`) and the
//! CSE pipeline (`cse-core`), and does two jobs at once:
//!
//! 1. **diagnose** — report contradictions, tautologies, redundant
//!    conjuncts, dead columns, binder failures and cross-statement
//!    sharing opportunities as [`cse_diag::Diagnostic`]s with stable rule
//!    ids and byte spans into the original SQL text;
//! 2. **feed facts forward** — everything the analyzer *proves* (not
//!    merely suspects) is packaged as [`LintFacts`] so the CSE
//!    constructor can drop redundant conjuncts from covering predicates
//!    and the pipeline can short-circuit provably-empty statements.
//!
//! ## Passes
//!
//! | pass | module | rules |
//! |------|--------|-------|
//! | 1. resolution audit     | here        | `lint/parse-error`, `lint/bind-error`, `lint/unsupported`, `lint/internal`, `lint/type-mismatch` |
//! | 2. fold + range dataflow| [`fold`], [`ranges`] | `lint/contradiction`, `lint/tautology`, `lint/redundant-pred` |
//! | 3. column liveness      | [`liveness`] | `lint/dead-column` |
//! | 4. batch share analysis | [`share`]   | `lint/share-hint` |
//!
//! Severity conventions: resolution failures are `Error` (the statement
//! cannot run); semantic findings are `Warning` (the statement runs but
//! the predicate is suspicious); share hints are `Note` (advisory facts
//! for the optimizer and the user).
//!
//! ## Soundness contract
//!
//! Facts are *proofs*, not heuristics: `redundant` holds only conjuncts
//! implied by their statement's remaining conjuncts (checked by the
//! conservative `cse-algebra::implies`), and `unsat_statements` holds
//! only statements whose WHERE clause provably accepts no row (constant
//! folding to FALSE/NULL, or an empty per-column range). Consumers that
//! cannot re-verify a fact in their own representation must treat a
//! mismatch as a no-op, never as license to rewrite.

pub mod fold;
pub mod liveness;
pub mod ranges;
pub mod share;

pub use cse_diag::{Diagnostic, Report, Severity};

use cse_algebra::{implies, PlanContext, Scalar, SpjgNormal};
use cse_sql::ast::Statement;
use cse_sql::{parse_batch_recovering, LowerTrace, Span, SqlError, SqlLowerer};
use cse_storage::{Catalog, DataType};
use std::collections::BTreeSet;

/// Stable lint rule identifiers (`lint/…` namespace; the verifier owns
/// the memo-level namespaces, see `cse-verify::rules`).
pub mod rules {
    /// The lexer or a statement-level parse failed (recovery skips to the
    /// next `;` and keeps linting).
    pub const PARSE_ERROR: &str = "lint/parse-error";
    /// A name failed to resolve against the catalog/scope.
    pub const BIND_ERROR: &str = "lint/bind-error";
    /// Valid SQL outside the supported subset.
    pub const UNSUPPORTED: &str = "lint/unsupported";
    /// The lowerer violated its own invariant (always a bug).
    pub const INTERNAL: &str = "lint/internal";
    /// A comparison between operands of incomparable types (always NULL
    /// at runtime, so the conjunct never accepts).
    pub const TYPE_MISMATCH: &str = "lint/type-mismatch";
    /// A conjunct (or the whole WHERE) provably accepts no row.
    pub const CONTRADICTION: &str = "lint/contradiction";
    /// A conjunct provably accepts every row (or every non-NULL row).
    pub const TAUTOLOGY: &str = "lint/tautology";
    /// A conjunct implied by the statement's other conjuncts.
    pub const REDUNDANT_PRED: &str = "lint/redundant-pred";
    /// A projection column or group-by key nothing consumes.
    pub const DEAD_COLUMN: &str = "lint/dead-column";
    /// Two statements share a table signature; the message carries the
    /// §4.1 join-compatibility verdict.
    pub const SHARE_HINT: &str = "lint/share-hint";

    /// Every lint rule, for exhaustiveness checks.
    pub const ALL: &[&str] = &[
        PARSE_ERROR,
        BIND_ERROR,
        UNSUPPORTED,
        INTERNAL,
        TYPE_MISMATCH,
        CONTRADICTION,
        TAUTOLOGY,
        REDUNDANT_PRED,
        DEAD_COLUMN,
        SHARE_HINT,
    ];
}

/// How lint findings gate execution (CLI `--lint[=deny]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// Don't run the analyzer.
    #[default]
    Off,
    /// Run it, report diagnostics, feed facts forward, never fail.
    Warn,
    /// Like `Warn`, but any `Warning`-or-worse diagnostic fails the batch
    /// (the CI gate mode).
    Deny,
}

impl LintMode {
    pub fn enabled(&self) -> bool {
        !matches!(self, LintMode::Off)
    }
}

impl std::str::FromStr for LintMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LintMode::Off),
            "warn" => Ok(LintMode::Warn),
            "deny" => Ok(LintMode::Deny),
            other => Err(format!("unknown lint mode '{other}' (off|warn|deny)")),
        }
    }
}

/// Analyzer-proven facts handed to the CSE pipeline. See the soundness
/// contract in the crate docs.
#[derive(Debug, Clone, Default)]
pub struct LintFacts {
    /// Normalized conjuncts proven implied by their statement's sibling
    /// conjuncts. The constructor re-verifies the implication in its own
    /// branch before dropping anything.
    pub redundant: BTreeSet<Scalar>,
    /// Batch-order statement indices whose WHERE clause provably accepts
    /// no row. The pipeline replaces their inputs with a FALSE filter.
    pub unsat_statements: BTreeSet<usize>,
}

impl LintFacts {
    pub fn is_empty(&self) -> bool {
        self.redundant.is_empty() && self.unsat_statements.is_empty()
    }
}

/// Everything one lint run produces.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    pub report: Report,
    pub facts: LintFacts,
    /// Number of statements that parsed (including ones that then failed
    /// to bind).
    pub statements: usize,
}

impl LintOutcome {
    /// Should the batch be rejected under the given mode?
    pub fn denies(&self, mode: LintMode) -> bool {
        mode == LintMode::Deny
            && self
                .report
                .diagnostics
                .iter()
                .any(|d| d.severity >= Severity::Warning)
    }
}

fn stmt_path(i: usize) -> String {
    format!("stmt[{i}]")
}

/// Run all analyzer passes over a SQL batch.
///
/// Lowering uses a single [`SqlLowerer`] over the statements in source
/// order — the same convention as `cse_sql::lower_batch_sql` — so when
/// the whole batch is clean, every fact's [`Scalar`] is expressed over
/// exactly the rel ids the pipeline will see.
pub fn lint_batch(catalog: &Catalog, sql: &str) -> LintOutcome {
    let mut report = Report::new();
    let mut facts = LintFacts::default();

    // ---- Pass 1a: parse with recovery. -------------------------------
    let parsed = parse_batch_recovering(sql);
    for e in &parsed.errors {
        report.error_at(rules::PARSE_ERROR, "batch", &e.message, e.span.to_pair());
    }

    // ---- Pass 1b: lower statements in order with one shared context. --
    let mut lowerer = SqlLowerer::new(catalog);
    // (index, statement span, plan, trace, ast)
    let mut lowered = Vec::new();
    for ps in &parsed.statements {
        let select = match &ps.stmt {
            Statement::Select(s) => s,
            Statement::CreateMaterializedView { name, .. } => {
                report.warn_at(
                    rules::UNSUPPORTED,
                    stmt_path(ps.index),
                    format!("CREATE MATERIALIZED VIEW {name} is handled by the maintenance API, not the query path"),
                    ps.span.to_pair(),
                );
                continue;
            }
        };
        match lowerer.lower_select(select) {
            Ok(plan) => {
                lowered.push((ps.index, ps.span, plan, lowerer.trace.clone(), select));
            }
            Err(e) => {
                let rule = match &e {
                    SqlError::Parse(_) => rules::PARSE_ERROR,
                    SqlError::Bind(_) => rules::BIND_ERROR,
                    SqlError::Unsupported(_) => rules::UNSUPPORTED,
                    SqlError::Internal(_) => rules::INTERNAL,
                };
                report.error_at(rule, stmt_path(ps.index), e.to_string(), ps.span.to_pair());
            }
        }
    }

    // ---- Passes 1c/2/3: per-statement analyses. -----------------------
    let ctx = &lowerer.ctx;
    for (index, span, plan, trace, select) in &lowered {
        analyze_statement(
            ctx,
            *index,
            *span,
            plan,
            trace,
            select,
            &mut report,
            &mut facts,
        );
    }

    // ---- Pass 4: cross-statement share hints. -------------------------
    let normals: Vec<(usize, SpjgNormal)> = lowered
        .iter()
        .filter_map(|(index, _, plan, _, _)| {
            SpjgNormal::from_plan(share::strip_root(plan)).map(|n| (*index, n))
        })
        .collect();
    for v in share::share_hints(ctx, &normals) {
        let span = lowered
            .iter()
            .find(|(i, ..)| *i == v.i)
            .map(|(_, s, ..)| s.to_pair());
        let msg = if v.compatible {
            format!(
                "statements {} and {} share signature {} and are join compatible: candidates for one covering subexpression",
                v.i, v.j, v.signature
            )
        } else {
            format!(
                "statements {} and {} share signature {} but are not join compatible (intersected equijoin graph disconnected)",
                v.i, v.j, v.signature
            )
        };
        match span {
            Some(sp) => report.note_at(
                rules::SHARE_HINT,
                format!("stmt[{}]+stmt[{}]", v.i, v.j),
                msg,
                sp,
            ),
            None => report.note(
                rules::SHARE_HINT,
                format!("stmt[{}]+stmt[{}]", v.i, v.j),
                msg,
            ),
        }
    }

    LintOutcome {
        report,
        facts,
        statements: parsed.statements.len(),
    }
}

/// Type classes that `Value::sql_cmp` can actually order against each
/// other. Numeric types (INT/FLOAT/DATE) cross-compare; STRING and BOOL
/// only compare within their own class.
fn comparable(a: DataType, b: DataType) -> bool {
    let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Float | DataType::Date);
    a == b || (numeric(a) && numeric(b))
}

#[allow(clippy::too_many_arguments)]
fn analyze_statement(
    ctx: &PlanContext,
    index: usize,
    stmt_span: Span,
    plan: &cse_algebra::LogicalPlan,
    trace: &LowerTrace,
    select: &cse_sql::ast::SelectStmt,
    report: &mut Report,
    facts: &mut LintFacts,
) {
    let path = stmt_path(index);

    // -- Pass 1c: type audit over the traced conjuncts. -----------------
    for (conj, span) in &trace.pred_spans {
        conj.visit(&mut |s| {
            if let Scalar::Cmp(_, a, b) = s {
                let (ta, tb) = (ctx.scalar_type(a), ctx.scalar_type(b));
                if !comparable(ta, tb) {
                    report.warn_at(
                        rules::TYPE_MISMATCH,
                        path.clone(),
                        format!("comparison between {ta} and {tb} is always NULL and never accepts a row"),
                        span.to_pair(),
                    );
                }
            }
        });
    }

    // -- Pass 2a: constant folding per conjunct. ------------------------
    let mut stmt_unsat = false;
    for (conj, span) in &trace.pred_spans {
        let folded = fold::fold(conj);
        if fold::is_const_false(&folded) {
            report.warn_at(
                rules::CONTRADICTION,
                path.clone(),
                format!("conjunct folds to FALSE: {conj}"),
                span.to_pair(),
            );
            stmt_unsat = true;
        } else if fold::is_const_null(&folded) {
            report.warn_at(
                rules::CONTRADICTION,
                path.clone(),
                format!("conjunct folds to NULL (never accepts a row): {conj}"),
                span.to_pair(),
            );
            stmt_unsat = true;
        } else if fold::is_const_true(&folded) {
            report.warn_at(
                rules::TAUTOLOGY,
                path.clone(),
                format!("conjunct folds to TRUE and filters nothing: {conj}"),
                span.to_pair(),
            );
        } else if let Scalar::Cmp(op, a, b) = &folded {
            // Reflexive comparisons: `c = c` / `c <= c` accept every row
            // whose operand is non-NULL — suspicious, but not a fact (it
            // still filters NULLs), so it is reported and not recorded.
            if a == b
                && matches!(
                    op,
                    cse_algebra::CmpOp::Eq | cse_algebra::CmpOp::Le | cse_algebra::CmpOp::Ge
                )
            {
                report.warn_at(
                    rules::TAUTOLOGY,
                    path.clone(),
                    format!("reflexive comparison is TRUE for every non-NULL operand: {conj}"),
                    span.to_pair(),
                );
            }
        }
    }

    // -- Pass 2b: per-column range dataflow. -----------------------------
    let conjuncts: Vec<Scalar> = trace.pred_spans.iter().map(|(c, _)| c.clone()).collect();
    if !stmt_unsat {
        if let Some((col, reason)) = ranges::prove_unsat(ctx, &conjuncts) {
            // Point the diagnostic at the conjuncts that constrain the
            // offending column.
            let mut span = Span::ZERO;
            for (c, s) in &trace.pred_spans {
                if c.columns().contains(&col) {
                    span = span.merge(*s);
                }
            }
            let span = if span == Span::ZERO { stmt_span } else { span };
            report.warn_at(
                rules::CONTRADICTION,
                path.clone(),
                format!(
                    "WHERE is unsatisfiable: column {} {reason}",
                    ctx.col_name(col)
                ),
                span.to_pair(),
            );
            stmt_unsat = true;
        }
    }
    if stmt_unsat {
        facts.unsat_statements.insert(index);
    }

    // -- Pass 2c: implication-redundant conjuncts. -----------------------
    // Skipped for unsat statements: under an empty WHERE every conjunct is
    // vacuously redundant and reporting them all would be noise.
    if !stmt_unsat && trace.pred_spans.len() > 1 {
        for (i, (conj, span)) in trace.pred_spans.iter().enumerate() {
            // Support: every other conjunct, except *later* duplicates of
            // this one (so exactly one of a duplicate pair is reported —
            // the later occurrence).
            let support: Vec<Scalar> = trace
                .pred_spans
                .iter()
                .enumerate()
                .filter(|(j, (c, _))| *j != i && (*j < i || c != conj))
                .map(|(_, (c, _))| c.clone())
                .collect();
            if !support.is_empty() {
                let p = Scalar::and(support).normalize();
                if implies(&p, conj) {
                    report.warn_at(
                        rules::REDUNDANT_PRED,
                        path.clone(),
                        format!("conjunct is implied by the statement's other conjuncts: {conj}"),
                        span.to_pair(),
                    );
                    facts.redundant.insert(conj.clone().normalize());
                }
            }
        }
    }

    // -- Pass 3: liveness. ------------------------------------------------
    for key in liveness::dead_group_keys(plan) {
        let span = trace
            .key_spans
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| *s)
            .unwrap_or(stmt_span);
        report.warn_at(
            rules::DEAD_COLUMN,
            path.clone(),
            format!(
                "group-by key {} is never consumed above the aggregate",
                ctx.col_name(key)
            ),
            span.to_pair(),
        );
    }
    for (item_idx, span) in liveness::duplicate_projections(select) {
        report.warn_at(
            rules::DEAD_COLUMN,
            path.clone(),
            format!("select item #{item_idx} duplicates an earlier expression"),
            span.to_pair(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{Catalog, DataType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("s", DataType::Str),
            ("d", DataType::Date),
        ]);
        let mut t = Table::new("t", schema.clone());
        for i in 0..8i64 {
            t.push(
                vec![
                    Value::Int(i),
                    Value::Int(i * 2),
                    Value::str(format!("r{i}")),
                    Value::Date(9000 + i as i32),
                ]
                .into(),
            )
            .unwrap();
        }
        cat.register_table(t).unwrap();
        let mut u = Table::new("u", Schema::from_pairs(&[("k", DataType::Int)]));
        u.push(vec![Value::Int(1)].into()).unwrap();
        cat.register_table(u).unwrap();
        cat
    }

    fn rule_spans(out: &LintOutcome, rule: &str) -> Vec<(u32, u32)> {
        out.report
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == rule)
            .map(|d| d.span.expect("lint diagnostics carry spans"))
            .collect()
    }

    #[test]
    fn contradiction_via_ranges_with_span() {
        let sql = "select a from t where a < 5 and a > 10";
        let out = lint_batch(&catalog(), sql);
        let spans = rule_spans(&out, rules::CONTRADICTION);
        assert_eq!(spans.len(), 1, "{}", out.report.render());
        // The span must cover both offending conjuncts.
        let (s, e) = spans[0];
        let text = &sql[s as usize..e as usize];
        assert!(text.contains("a < 5") && text.contains("a > 10"), "{text}");
        assert_eq!(
            out.facts
                .unsat_statements
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn contradiction_via_folding() {
        let out = lint_batch(&catalog(), "select a from t where 1 > 2");
        assert!(out.report.fired_rules().contains(rules::CONTRADICTION));
        assert!(out.facts.unsat_statements.contains(&0));
    }

    #[test]
    fn tautology_folding_and_reflexive() {
        let out = lint_batch(&catalog(), "select a from t where 1 < 2 and a = a");
        let spans = rule_spans(&out, rules::TAUTOLOGY);
        assert_eq!(spans.len(), 2, "{}", out.report.render());
        // Tautologies are advisory: no unsat fact, no redundancy fact.
        assert!(out.facts.unsat_statements.is_empty());
    }

    #[test]
    fn redundant_conjunct_reported_and_fact_recorded() {
        let sql = "select a from t where a < 5 and a < 10";
        let out = lint_batch(&catalog(), sql);
        let spans = rule_spans(&out, rules::REDUNDANT_PRED);
        assert_eq!(spans.len(), 1, "{}", out.report.render());
        let (s, e) = spans[0];
        assert_eq!(&sql[s as usize..e as usize], "a < 10");
        assert_eq!(out.facts.redundant.len(), 1);
        let fact = out.facts.redundant.iter().next().unwrap();
        assert!(fact.to_string().contains("10"), "{fact}");
    }

    #[test]
    fn duplicate_conjunct_reported_once() {
        let out = lint_batch(&catalog(), "select a from t where a < 5 and a < 5");
        assert_eq!(rule_spans(&out, rules::REDUNDANT_PRED).len(), 1);
    }

    #[test]
    fn dead_group_key_detected() {
        let sql = "select sum(b) from t group by a";
        let out = lint_batch(&catalog(), sql);
        let spans = rule_spans(&out, rules::DEAD_COLUMN);
        assert_eq!(spans.len(), 1, "{}", out.report.render());
        let (s, e) = spans[0];
        assert_eq!(&sql[s as usize..e as usize], "a");
        // Projecting the key makes it live.
        let out = lint_batch(&catalog(), "select a, sum(b) from t group by a");
        assert!(rule_spans(&out, rules::DEAD_COLUMN).is_empty());
    }

    #[test]
    fn duplicate_projection_detected() {
        let out = lint_batch(&catalog(), "select a, b, a from t");
        assert_eq!(rule_spans(&out, rules::DEAD_COLUMN).len(), 1);
    }

    #[test]
    fn type_mismatch_detected() {
        let out = lint_batch(&catalog(), "select a from t where a = 'x'");
        assert!(out.report.fired_rules().contains(rules::TYPE_MISMATCH));
        // Date columns coerce their string literals: no mismatch.
        let out = lint_batch(&catalog(), "select a from t where d = '1996-07-01'");
        assert!(!out.report.fired_rules().contains(rules::TYPE_MISMATCH));
    }

    #[test]
    fn bind_error_with_statement_span() {
        let sql = "select a from t;\nselect nosuch from t";
        let out = lint_batch(&catalog(), sql);
        let spans = rule_spans(&out, rules::BIND_ERROR);
        assert_eq!(spans.len(), 1);
        let (s, e) = spans[0];
        assert_eq!(&sql[s as usize..e as usize], "select nosuch from t");
        assert_eq!(out.statements, 2);
    }

    #[test]
    fn parse_error_recovery_keeps_linting() {
        let sql = "select from where;\nselect a from t where a < 5 and a > 10";
        let out = lint_batch(&catalog(), sql);
        assert!(out.report.fired_rules().contains(rules::PARSE_ERROR));
        assert!(out.report.fired_rules().contains(rules::CONTRADICTION));
        // The contradiction fact carries the *source-order* index.
        assert!(out.facts.unsat_statements.contains(&1));
    }

    #[test]
    fn share_hint_on_same_signature_statements() {
        let sql = "select a from t where a < 5;\nselect b from t where b > 3";
        let out = lint_batch(&catalog(), sql);
        let hints: Vec<_> = out
            .report
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == rules::SHARE_HINT)
            .collect();
        assert_eq!(hints.len(), 1, "{}", out.report.render());
        assert_eq!(hints[0].severity, Severity::Note);
        assert!(hints[0].message.contains("join compatible"));
        assert_eq!(hints[0].path, "stmt[0]+stmt[1]");
        // Different tables: no hint.
        let out = lint_batch(&catalog(), "select a from t;\nselect k from u");
        assert!(!out.report.fired_rules().contains(rules::SHARE_HINT));
    }

    #[test]
    fn clean_batch_is_clean() {
        let out = lint_batch(&catalog(), "select a, b from t where a < 5 order by b");
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(out.facts.is_empty());
    }

    #[test]
    fn deny_mode_gates_on_warnings() {
        let warn = lint_batch(&catalog(), "select a from t where a < 5 and a < 10");
        assert!(warn.denies(LintMode::Deny));
        assert!(!warn.denies(LintMode::Warn));
        let clean = lint_batch(&catalog(), "select a from t");
        assert!(!clean.denies(LintMode::Deny));
        // Notes alone never deny.
        let notes = lint_batch(&catalog(), "select a from t;\nselect b from t");
        assert!(notes
            .report
            .diagnostics
            .iter()
            .all(|d| d.severity == Severity::Note));
        assert!(!notes.denies(LintMode::Deny));
    }

    #[test]
    fn lint_mode_parses() {
        assert_eq!("warn".parse::<LintMode>().unwrap(), LintMode::Warn);
        assert_eq!("deny".parse::<LintMode>().unwrap(), LintMode::Deny);
        assert_eq!("off".parse::<LintMode>().unwrap(), LintMode::Off);
        assert!("nope".parse::<LintMode>().is_err());
    }
}
