//! Constant folding over [`Scalar`] expressions (analyzer pass 2a).
//!
//! The folder mirrors the executor's evaluation semantics
//! (`cse-exec::eval`) exactly, under SQL three-valued logic:
//!
//! - comparisons between literals fold through [`Value::sql_cmp`], so a
//!   NULL operand folds to `Lit(Null)` — *not* FALSE (a NULL conjunct
//!   still rejects every row, but `NOT NULL` is NULL, not TRUE). A NULL
//!   literal on *either* side absorbs the comparison (and likewise
//!   arithmetic) even when the other side is a column: `sql_cmp` is
//!   `None` for any NULL operand, so the result is NULL on every row;
//! - `AND`/`OR` fold with dominance (`FALSE` / `TRUE`) and keep residual
//!   NULL literals in place, because `NULL AND p` is only reducible when
//!   `p` is known;
//! - integer arithmetic folds with **checked** operations and declines to
//!   fold on overflow. The executor uses native `i64` arithmetic there, so
//!   folding an overflowing expression would silently change behavior
//!   (wrap in release, panic in debug). Declining keeps runtime behavior
//!   bit-identical;
//! - division matches the engine: `x/0` is NULL, `Int/Int` divides as
//!   float.
//!
//! The result is semantics-preserving row-by-row: for every row,
//! evaluating `fold(s)` gives the same [`Value`] as evaluating `s` (the
//! property test in `tests/lint_property.rs` checks this on random rows).

use cse_algebra::{ArithOp, Scalar};
use cse_storage::Value;

/// Is this scalar the constant FALSE (either spelling)?
pub fn is_const_false(s: &Scalar) -> bool {
    matches!(s, Scalar::Lit(Value::Bool(false))) || matches!(s, Scalar::Or(v) if v.is_empty())
}

/// Is this scalar the constant NULL?
pub fn is_const_null(s: &Scalar) -> bool {
    matches!(s, Scalar::Lit(Value::Null))
}

/// Is this scalar the constant TRUE (either spelling)?
pub fn is_const_true(s: &Scalar) -> bool {
    s.is_true()
}

/// Fold every literal-only subexpression bottom-up. See the module docs
/// for the exact semantics contract.
pub fn fold(s: &Scalar) -> Scalar {
    match s {
        Scalar::Col(_) | Scalar::Lit(_) => s.clone(),
        Scalar::Cmp(op, a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            // A NULL literal absorbs the whole comparison: `sql_cmp`
            // returns `None` whenever *either* side is NULL, so the
            // result is NULL on every row even though the other side is
            // not a literal.
            if is_const_null(&fa) || is_const_null(&fb) {
                return Scalar::Lit(Value::Null);
            }
            if let (Scalar::Lit(va), Scalar::Lit(vb)) = (&fa, &fb) {
                return match va.sql_cmp(vb) {
                    None => Scalar::Lit(Value::Null),
                    Some(ord) => Scalar::Lit(Value::Bool(match op {
                        cse_algebra::CmpOp::Eq => ord.is_eq(),
                        cse_algebra::CmpOp::Ne => ord.is_ne(),
                        cse_algebra::CmpOp::Lt => ord.is_lt(),
                        cse_algebra::CmpOp::Le => ord.is_le(),
                        cse_algebra::CmpOp::Gt => ord.is_gt(),
                        cse_algebra::CmpOp::Ge => ord.is_ge(),
                    })),
                };
            }
            Scalar::Cmp(*op, Box::new(fa), Box::new(fb))
        }
        Scalar::And(parts) => {
            let mut out: Vec<Scalar> = Vec::with_capacity(parts.len());
            for p in parts {
                let fp = fold(p);
                if is_const_false(&fp) {
                    return Scalar::Lit(Value::Bool(false));
                }
                if is_const_true(&fp) {
                    continue; // TRUE is the AND identity
                }
                out.push(fp);
            }
            match out.len() {
                0 => Scalar::true_(),
                1 if !is_const_null(&out[0]) => out.pop().expect("len checked"),
                _ => Scalar::And(out),
            }
        }
        Scalar::Or(parts) => {
            let mut out: Vec<Scalar> = Vec::with_capacity(parts.len());
            for p in parts {
                let fp = fold(p);
                if is_const_true(&fp) {
                    return Scalar::Lit(Value::Bool(true));
                }
                if is_const_false(&fp) {
                    continue; // FALSE is the OR identity
                }
                out.push(fp);
            }
            match out.len() {
                0 => Scalar::Lit(Value::Bool(false)),
                1 if !is_const_null(&out[0]) => out.pop().expect("len checked"),
                _ => Scalar::Or(out),
            }
        }
        Scalar::Not(a) => {
            let fa = fold(a);
            match &fa {
                Scalar::Lit(Value::Bool(b)) => Scalar::Lit(Value::Bool(!b)),
                Scalar::Lit(Value::Null) => Scalar::Lit(Value::Null),
                _ => Scalar::Not(Box::new(fa)),
            }
        }
        Scalar::Arith(op, a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            // NULL absorbs arithmetic the same way it absorbs
            // comparisons (the engine checks for NULL operands before
            // computing anything).
            if is_const_null(&fa) || is_const_null(&fb) {
                return Scalar::Lit(Value::Null);
            }
            if let (Scalar::Lit(va), Scalar::Lit(vb)) = (&fa, &fb) {
                if let Some(v) = fold_arith(*op, va, vb) {
                    return Scalar::Lit(v);
                }
            }
            Scalar::Arith(*op, Box::new(fa), Box::new(fb))
        }
        Scalar::IsNull(a) => {
            let fa = fold(a);
            match &fa {
                Scalar::Lit(v) => Scalar::Lit(Value::Bool(v.is_null())),
                _ => Scalar::IsNull(Box::new(fa)),
            }
        }
    }
}

/// Literal arithmetic, mirroring `cse-exec::eval::arith` — except that an
/// overflowing `Int ∘ Int` returns `None` ("decline to fold") instead of
/// wrapping, because the engine's behavior there is target-dependent.
fn fold_arith(op: ArithOp, a: &Value, b: &Value) -> Option<Value> {
    if a.is_null() || b.is_null() {
        return Some(Value::Null);
    }
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return match op {
            ArithOp::Add => x.checked_add(*y).map(Value::Int),
            ArithOp::Sub => x.checked_sub(*y).map(Value::Int),
            ArithOp::Mul => x.checked_mul(*y).map(Value::Int),
            ArithOp::Div => Some(if *y == 0 {
                Value::Null
            } else {
                Value::Float(*x as f64 / *y as f64)
            }),
        };
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Some(match op {
            ArithOp::Add => Value::Float(x + y),
            ArithOp::Sub => Value::Float(x - y),
            ArithOp::Mul => Value::Float(x * y),
            ArithOp::Div => {
                if y == 0.0 {
                    Value::Null
                } else {
                    Value::Float(x / y)
                }
            }
        }),
        // Non-numeric operand: the engine yields NULL.
        _ => Some(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{CmpOp, RelId};

    fn c(i: u16) -> Scalar {
        Scalar::col(RelId(0), i)
    }

    #[test]
    fn literal_comparison_folds() {
        let t = Scalar::cmp(CmpOp::Lt, Scalar::int(3), Scalar::int(5));
        assert!(is_const_true(&fold(&t)));
        let f = Scalar::cmp(CmpOp::Ge, Scalar::int(3), Scalar::int(5));
        assert!(is_const_false(&fold(&f)));
    }

    #[test]
    fn null_comparison_folds_to_null_not_false() {
        let n = Scalar::cmp(CmpOp::Eq, Scalar::lit(Value::Null), Scalar::int(5));
        assert!(is_const_null(&fold(&n)));
        // NOT NULL is still NULL.
        assert!(is_const_null(&fold(&Scalar::Not(Box::new(n)))));
    }

    #[test]
    fn and_or_dominance() {
        let f = Scalar::cmp(CmpOp::Gt, Scalar::int(1), Scalar::int(2));
        let open = Scalar::cmp(CmpOp::Lt, c(0), Scalar::int(5));
        assert!(is_const_false(&fold(&Scalar::and([
            open.clone(),
            f.clone()
        ]))));
        let t = Scalar::cmp(CmpOp::Lt, Scalar::int(1), Scalar::int(2));
        assert!(is_const_true(&fold(&Scalar::or([open.clone(), t]))));
        // Identities drop out, leaving the open conjunct.
        assert_eq!(
            fold(&Scalar::and([
                open.clone(),
                Scalar::cmp(CmpOp::Lt, Scalar::int(1), Scalar::int(2)),
            ])),
            open
        );
    }

    #[test]
    fn overflow_declines_to_fold() {
        let e = Scalar::Arith(
            ArithOp::Add,
            Box::new(Scalar::int(i64::MAX)),
            Box::new(Scalar::int(1)),
        );
        // Stays an Arith node: the folder refuses to commit to a value.
        assert!(matches!(fold(&e), Scalar::Arith(..)));
        // Saturating shapes that don't overflow still fold.
        let ok = Scalar::Arith(
            ArithOp::Add,
            Box::new(Scalar::int(i64::MAX - 1)),
            Box::new(Scalar::int(1)),
        );
        assert_eq!(fold(&ok), Scalar::Lit(Value::Int(i64::MAX)));
    }

    #[test]
    fn division_matches_engine() {
        let div0 = Scalar::Arith(
            ArithOp::Div,
            Box::new(Scalar::int(7)),
            Box::new(Scalar::int(0)),
        );
        assert!(is_const_null(&fold(&div0)));
        let div = Scalar::Arith(
            ArithOp::Div,
            Box::new(Scalar::int(7)),
            Box::new(Scalar::int(2)),
        );
        assert_eq!(fold(&div), Scalar::Lit(Value::Float(3.5)));
    }

    #[test]
    fn is_null_on_literals() {
        assert!(is_const_true(&fold(&Scalar::IsNull(Box::new(
            Scalar::lit(Value::Null)
        )))));
        assert!(is_const_false(&fold(&Scalar::IsNull(Box::new(
            Scalar::int(3)
        )))));
        // Open over a column: unchanged shape.
        assert!(matches!(
            fold(&Scalar::IsNull(Box::new(c(0)))),
            Scalar::IsNull(_)
        ));
    }

    #[test]
    fn folds_inside_open_expressions() {
        // c0 < (2 + 3) folds the arithmetic but keeps the comparison open.
        let e = Scalar::cmp(
            CmpOp::Lt,
            c(0),
            Scalar::Arith(
                ArithOp::Add,
                Box::new(Scalar::int(2)),
                Box::new(Scalar::int(3)),
            ),
        );
        assert_eq!(fold(&e), Scalar::cmp(CmpOp::Lt, c(0), Scalar::int(5)));
    }
}
