//! Adversarial corruption-injection suite: each test breaks exactly one
//! invariant the optimizer pipeline relies on and asserts that exactly the
//! intended rule fires — no more, no less. Together the tests cover all
//! five pass families (provenance, signature, compatibility, covering,
//! costing).

use cse_algebra::{AggExpr, CmpOp, ColRef, LogicalPlan, PlanContext, RelId, RelSet, Scalar};
use cse_memo::{GroupExpr, GroupId, Memo, Op, TableSignature};
use cse_storage::{DataType, Schema};
use cse_verify::{
    rules, verify_candidates, verify_costs, verify_memo, CandidateAudit, CostAudit, MemberAudit,
};
use std::collections::BTreeSet;
use std::sync::Arc;

fn fired(report: &cse_verify::Report) -> Vec<&'static str> {
    report.fired_rules().into_iter().collect()
}

// ---------------------------------------------------------------------------
// Shared plan fixture: r ⋈ s on r.0 = s.0 in one block.
// ---------------------------------------------------------------------------

fn two_rel_ctx() -> (PlanContext, RelId, RelId) {
    let mut ctx = PlanContext::new();
    let b = ctx.new_block();
    let schema = Arc::new(Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
    ]));
    let r = ctx.add_base_rel("r", "r", schema.clone(), b);
    let s = ctx.add_base_rel("s", "s", schema, b);
    (ctx, r, s)
}

fn join_memo() -> (Memo, GroupId, RelId, RelId) {
    let (ctx, r, s) = two_rel_ctx();
    let plan = LogicalPlan::get(r).join(
        LogicalPlan::get(s),
        Scalar::eq(Scalar::col(r, 0), Scalar::col(s, 0)),
    );
    let mut memo = Memo::new(ctx);
    let root = memo.insert_plan(&plan);
    (memo, root, r, s)
}

// ---------------------------------------------------------------------------
// Pass 1: provenance.
// ---------------------------------------------------------------------------

#[test]
fn injected_filter_on_foreign_column_fires_unavailable_column() {
    let (mut memo, root, r, _) = join_memo();
    // A rel from a different statement block that nothing below produces.
    let b2 = memo.ctx.new_block();
    let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
    let t = memo.ctx.add_base_rel("t", "t", schema, b2);
    let get_r = memo
        .groups()
        .find(|g| g.props.rels == RelSet::single(r))
        .expect("get(r) group")
        .id;
    // Corrupt: a Filter over Get(r) whose predicate references t.x.
    memo.add_gexpr(
        GroupExpr::new(
            Op::Filter {
                pred: Scalar::eq(Scalar::col(t, 0), Scalar::int(1)).normalize(),
            },
            vec![get_r],
        ),
        Some(root),
    );
    let report = verify_memo(&memo, &[root]);
    assert_eq!(fired(&report), vec![rules::PROVENANCE_UNAVAILABLE_COLUMN]);
}

#[test]
fn interior_project_fires_root_only_op() {
    let (ctx, r, _) = two_rel_ctx();
    // Filter *above* Project: a delivery operator in an interior position
    // (its ∅ signature would hide sharable subexpressions below it). The
    // `.filter()` builder elides TRUE predicates, so build the node by
    // hand — a TRUE filter keeps the column-provenance pass quiet, making
    // the placement rule the only one that can fire.
    let plan = LogicalPlan::Filter {
        input: Box::new(LogicalPlan::get(r).project(vec![("a".into(), Scalar::col(r, 0))])),
        pred: Scalar::true_(),
    };
    let mut memo = Memo::new(ctx);
    let root = memo.insert_plan(&plan);
    let report = verify_memo(&memo, &[root]);
    assert_eq!(fired(&report), vec![rules::PROVENANCE_ROOT_ONLY_OP]);
}

#[test]
fn agg_output_column_below_aggregate_fires_leak() {
    let (mut ctx, r, _) = two_rel_ctx();
    let b = ctx.rel(r).block;
    let out = ctx.add_agg_output(&[DataType::Int], b);
    // Filter over Get(r) referencing the aggregate output column: the
    // aggregate's result is not in scope below the aggregate.
    let plan = LogicalPlan::get(r).filter(Scalar::eq(Scalar::col(out, 0), Scalar::int(1)));
    let mut memo = Memo::new(ctx);
    let root = memo.insert_plan(&plan);
    let report = verify_memo(&memo, &[root]);
    assert_eq!(fired(&report), vec![rules::PROVENANCE_AGG_OUT_LEAK]);
}

// ---------------------------------------------------------------------------
// Pass 2: signature audit.
// ---------------------------------------------------------------------------

#[test]
fn overridden_signature_fires_mismatch() {
    let (mut memo, root, _, _) = join_memo();
    memo.override_signature(
        root,
        Some(TableSignature {
            grouped: true,
            tables: vec!["bogus".into()],
        }),
    );
    let report = verify_memo(&memo, &[root]);
    assert_eq!(fired(&report), vec![rules::SIGNATURE_MISMATCH]);
}

#[test]
fn cleared_signature_fires_mismatch() {
    let (mut memo, root, _, _) = join_memo();
    memo.override_signature(root, None);
    let report = verify_memo(&memo, &[root]);
    assert_eq!(fired(&report), vec![rules::SIGNATURE_MISMATCH]);
}

// ---------------------------------------------------------------------------
// Passes 3–5 operate on audit records; fixture in anchor space over
// RelId(0) = R and RelId(1) = S, joined on R.0 = S.0.
// ---------------------------------------------------------------------------

fn cr(r: u32, c: u16) -> ColRef {
    ColRef::new(RelId(r), c)
}

fn join_class() -> BTreeSet<ColRef> {
    [cr(0, 0), cr(1, 0)].into_iter().collect()
}

fn join_conjunct() -> Scalar {
    Scalar::eq(Scalar::Col(cr(0, 0)), Scalar::Col(cr(1, 0))).normalize()
}

fn member(g: u32) -> MemberAudit {
    MemberAudit {
        group: GroupId(g),
        classes: vec![join_class()],
        simplified: Scalar::true_(),
        keys: vec![],
        aggs: vec![],
        required: [cr(0, 1)].into_iter().collect(),
        matched: true,
    }
}

fn healthy() -> CandidateAudit {
    CandidateAudit {
        id: 7,
        rel_set: RelSet::from_iter([RelId(0), RelId(1)]),
        output: vec![cr(0, 1)],
        covering: Scalar::true_(),
        join_conjuncts: vec![join_conjunct()],
        keys: None,
        aggs: None,
        est_rows: 100.0,
        est_width: 8.0,
        cw: 10.0,
        cr: 5.0,
        ce_lower: 50.0,
        members: vec![member(10), member(11)],
    }
}

#[test]
fn healthy_fixture_is_clean() {
    let report = verify_candidates(&[healthy()]);
    assert!(report.is_clean(), "{}", report.render());
}

// ---------------------------------------------------------------------------
// Pass 3: compatibility.
// ---------------------------------------------------------------------------

#[test]
fn disconnected_intersection_fires_compat_disconnected() {
    let mut a = healthy();
    // Members' classes share no cross-rel equality: R.0~S.0 vs R.0~S.1
    // intersect to nothing connecting R and S.
    a.members[1].classes = vec![[cr(0, 0), cr(1, 1)].into_iter().collect()];
    // With no claimed join conjuncts the compositional fast path agrees
    // ("unknown") and there is nothing to overclaim.
    a.join_conjuncts = vec![];
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COMPAT_DISCONNECTED]);
}

#[test]
fn dropped_join_evidence_fires_fastpath_divergence() {
    let mut a = healthy();
    // Members genuinely compatible, but the recorded join conjuncts were
    // lost: the compositional derivation (Example 3) can no longer prove
    // connectivity while the direct method still can.
    a.join_conjuncts = vec![];
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COMPAT_FASTPATH_DIVERGENCE]);
}

#[test]
fn extra_join_conjunct_fires_overclaimed_join() {
    let mut a = healthy();
    // R.1 = S.1 was never agreed on by the members: a spool applying it
    // would drop rows some consumer needs.
    a.join_conjuncts
        .push(Scalar::eq(Scalar::Col(cr(0, 1)), Scalar::Col(cr(1, 1))).normalize());
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COMPAT_OVERCLAIMED_JOIN]);
}

// ---------------------------------------------------------------------------
// Pass 4: covering.
// ---------------------------------------------------------------------------

#[test]
fn weak_covering_predicate_fires_pred_not_implied() {
    let mut a = healthy();
    let lt = |v: i64| Scalar::cmp(CmpOp::Lt, Scalar::Col(cr(0, 1)), Scalar::int(v)).normalize();
    a.covering = lt(5);
    // Member 0 selects r.b < 10 — rows with 5 ≤ r.b < 10 are missing from
    // the spool. Member 1 (r.b < 3) is properly covered.
    a.members[0].simplified = lt(10);
    a.members[1].simplified = lt(3);
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COVERING_PRED_NOT_IMPLIED]);
}

#[test]
fn member_key_outside_union_fires_keys_not_subset() {
    let mut a = healthy();
    a.keys = Some(vec![cr(0, 0)]);
    a.aggs = Some(vec![AggExpr::count_star()]);
    for m in &mut a.members {
        m.keys = vec![cr(0, 0)];
        m.aggs = vec![AggExpr::count_star()];
    }
    // Member 1 additionally groups by r.b, which the union keys lost.
    a.members[1].keys.push(cr(0, 1));
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COVERING_KEYS_NOT_SUBSET]);
}

#[test]
fn member_aggregate_outside_union_fires_aggs_not_subset() {
    let mut a = healthy();
    a.keys = Some(vec![cr(0, 0)]);
    a.aggs = Some(vec![AggExpr::count_star()]);
    for m in &mut a.members {
        m.keys = vec![cr(0, 0)];
        m.aggs = vec![AggExpr::count_star()];
    }
    // Member 0 needs SUM(s.b), which the union aggregates dropped.
    a.members[0]
        .aggs
        .push(AggExpr::sum(Scalar::Col(cr(1, 1))).normalize());
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COVERING_AGGS_NOT_SUBSET]);
}

#[test]
fn missing_required_column_fires_missing_output() {
    let mut a = healthy();
    // Member 0's ancestors also need s.b, which the work table dropped.
    a.members[0].required.insert(cr(1, 1));
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COVERING_MISSING_OUTPUT]);
}

#[test]
fn missing_compensation_column_fires_missing_output() {
    let mut a = healthy();
    // Member 0 needs a compensation filter r.a < 10 (covering is TRUE, so
    // the spool does not guarantee it), but the work table only carries
    // r.b — the filter cannot be applied on top of the spool.
    a.members[0].simplified =
        Scalar::cmp(CmpOp::Lt, Scalar::Col(cr(0, 0)), Scalar::int(10)).normalize();
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COVERING_MISSING_OUTPUT]);
}

#[test]
fn unmatched_member_skips_projection_checks() {
    let mut a = healthy();
    // Same corruptions as the two tests above, but the member was never
    // matched by view rewriting — the pipeline drops it, so no rule fires.
    a.members[0].required.insert(cr(1, 1));
    a.members[0].simplified =
        Scalar::cmp(CmpOp::Lt, Scalar::Col(cr(0, 0)), Scalar::int(10)).normalize();
    a.members[0].matched = false;
    let report = verify_candidates(&[a]);
    assert!(report.is_clean(), "{}", report.render());
}

// ---------------------------------------------------------------------------
// Pass 5: costing.
// ---------------------------------------------------------------------------

#[test]
fn nan_bound_fires_nonfinite() {
    let audit = CostAudit {
        bounds: vec![(GroupId(3), f64::NAN)],
        winners: [(GroupId(3), 10.0)].into_iter().collect(),
        baseline_cost: 100.0,
        final_cost: 90.0,
    };
    let report = verify_costs(&audit);
    assert_eq!(fired(&report), vec![rules::COSTING_NONFINITE]);
}

#[test]
fn negative_candidate_cost_fires_negative() {
    let mut a = healthy();
    a.ce_lower = -3.0;
    let report = verify_candidates(&[a]);
    assert_eq!(fired(&report), vec![rules::COSTING_NEGATIVE]);
}

#[test]
fn bound_above_winner_fires_bound_exceeds_winner() {
    let audit = CostAudit {
        bounds: vec![(GroupId(3), 50.0)],
        winners: [(GroupId(3), 10.0)].into_iter().collect(),
        baseline_cost: 100.0,
        final_cost: 100.0,
    };
    let report = verify_costs(&audit);
    assert_eq!(fired(&report), vec![rules::COSTING_BOUND_EXCEEDS_WINNER]);
}

#[test]
fn final_cost_above_baseline_fires_bound_exceeds_winner() {
    let audit = CostAudit {
        bounds: vec![],
        winners: Default::default(),
        baseline_cost: 100.0,
        final_cost: 120.0,
    };
    let report = verify_costs(&audit);
    assert_eq!(fired(&report), vec![rules::COSTING_BOUND_EXCEEDS_WINNER]);
}
