//! Pass 1: well-formedness / column provenance over the memo.
//!
//! Audits three structural invariants every later phase (normalization,
//! signature computation, view matching, execution) silently assumes:
//!
//! - **Column availability**: every `ColRef` an operator references (filter
//!   and join predicates, aggregate keys/arguments, projection and sort
//!   expressions) is produced by one of its children.
//! - **Aggregate-output scoping**: a column of a synthetic aggregate output
//!   rel may only be referenced where that aggregate's result is in scope —
//!   never below the aggregate that defines it.
//! - **Delivery-operator placement**: `Batch` appears only as a statement
//!   root; `Project` only at a root or directly under `Batch`; `Sort` only
//!   at a root or directly under `Batch`/`Project`. These operators erase
//!   table signatures (paper §3, Fig. 2: `S_e = ∅`), so any interior
//!   occurrence would silently hide sharable subexpressions.

use crate::diag::{rules, Report};
use cse_algebra::{ColRef, RelKind, Scalar};
use cse_memo::{GroupId, Memo, Op};
use std::collections::BTreeSet;

/// Run the provenance pass. `roots` are the legal delivery positions.
pub fn verify_provenance(memo: &Memo, roots: &[GroupId]) -> Report {
    let mut report = Report::new();
    let root_set: BTreeSet<GroupId> = roots.iter().copied().collect();
    for g in memo.groups() {
        for (ei, &eid) in g.exprs.iter().enumerate() {
            let e = memo.gexpr(eid);
            let path = format!("{}#{}", g.id, ei);
            check_columns(memo, &e.op, &e.children, &path, &mut report);
            check_placement(memo, g.id, &e.op, &root_set, &path, &mut report);
        }
    }
    report
}

/// Columns an operator references in its own scalars.
fn local_refs(op: &Op) -> BTreeSet<ColRef> {
    let mut local: BTreeSet<ColRef> = BTreeSet::new();
    let mut add = |s: &Scalar| local.extend(s.columns());
    match op {
        Op::Get { .. } | Op::Batch => {}
        Op::Filter { pred } | Op::Join { pred } => add(pred),
        Op::Aggregate { keys, aggs, .. } => {
            local.extend(keys.iter().copied());
            for a in aggs {
                if let Some(arg) = &a.arg {
                    local.extend(arg.columns());
                }
            }
        }
        Op::Project { exprs } => {
            for (_, s) in exprs {
                local.extend(s.columns());
            }
        }
        Op::Sort { keys } => {
            for (s, _) in keys {
                local.extend(s.columns());
            }
        }
    }
    local
}

fn check_columns(memo: &Memo, op: &Op, children: &[GroupId], path: &str, report: &mut Report) {
    let available: BTreeSet<ColRef> = children
        .iter()
        .flat_map(|c| memo.group(*c).props.output_cols.iter().copied())
        .collect();
    for col in local_refs(op) {
        if available.contains(&col) {
            continue;
        }
        let kind = memo.ctx.rel(col.rel).kind;
        if kind == RelKind::AggOutput {
            report.error(
                rules::PROVENANCE_AGG_OUT_LEAK,
                path,
                format!(
                    "{} references aggregate output column {col} outside the \
                     scope of its defining aggregate",
                    op.name()
                ),
            );
        } else {
            report.error(
                rules::PROVENANCE_UNAVAILABLE_COLUMN,
                path,
                format!(
                    "{} references column {col}, which no child produces",
                    op.name()
                ),
            );
        }
    }
}

fn check_placement(
    memo: &Memo,
    group: GroupId,
    op: &Op,
    roots: &BTreeSet<GroupId>,
    path: &str,
    report: &mut Report,
) {
    let parent_ops = || -> Vec<&'static str> {
        memo.group(group)
            .parents
            .iter()
            .map(|&pid| memo.gexpr(pid).op.name())
            .collect()
    };
    match op {
        // The batch root ties statements together; nothing sits above it.
        Op::Batch if !roots.contains(&group) || !memo.group(group).parents.is_empty() => {
            report.error(
                rules::PROVENANCE_ROOT_ONLY_OP,
                path,
                format!(
                    "Batch must be a statement root with no parents \
                     (parents: [{}])",
                    parent_ops().join(",")
                ),
            );
        }
        Op::Batch => {}
        Op::Project { .. } => {
            let ok = roots.contains(&group)
                || memo
                    .group(group)
                    .parents
                    .iter()
                    .all(|&pid| matches!(memo.gexpr(pid).op, Op::Batch));
            if !ok {
                report.error(
                    rules::PROVENANCE_ROOT_ONLY_OP,
                    path,
                    format!(
                        "Project may appear only at a root or under Batch \
                         (parents: [{}])",
                        parent_ops().join(",")
                    ),
                );
            }
        }
        Op::Sort { .. } => {
            let ok = roots.contains(&group)
                || memo
                    .group(group)
                    .parents
                    .iter()
                    .all(|&pid| matches!(memo.gexpr(pid).op, Op::Batch | Op::Project { .. }));
            if !ok {
                report.error(
                    rules::PROVENANCE_ROOT_ONLY_OP,
                    path,
                    format!(
                        "Sort may appear only at a root or under Batch/Project \
                         (parents: [{}])",
                        parent_ops().join(",")
                    ),
                );
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn ctx_one() -> (PlanContext, cse_algebra::RelId) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        let r = ctx.add_base_rel("r", "r", schema, b);
        (ctx, r)
    }

    #[test]
    fn healthy_plan_is_clean() {
        let (ctx, r) = ctx_one();
        let plan = LogicalPlan::get(r)
            .filter(Scalar::eq(Scalar::col(r, 0), Scalar::int(1)))
            .project(vec![("a".into(), Scalar::col(r, 0))]);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&plan);
        let report = verify_provenance(&memo, &[root]);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn foreign_column_fires_unavailable() {
        let (mut ctx, r) = ctx_one();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        let s = ctx.add_base_rel("s", "s", schema, b);
        // Filter over r referencing s.x: nothing below produces it.
        let plan = LogicalPlan::get(r).filter(Scalar::eq(Scalar::col(s, 0), Scalar::int(1)));
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&plan);
        let report = verify_provenance(&memo, &[root]);
        assert_eq!(
            report.fired_rules().into_iter().collect::<Vec<_>>(),
            vec![rules::PROVENANCE_UNAVAILABLE_COLUMN]
        );
    }
}
