//! Pass 5: costing sanity.
//!
//! The CSE phase reuses the normal optimization phase's per-group winner
//! costs as *lower bounds* (paper §4.3.3: the H1 worthwhileness test and
//! the C_E lower bound of each candidate both trust them). This pass
//! checks the claimed bounds against freshly recomputed winner costs —
//! every bound must be finite, nonnegative, and no greater than the true
//! winner cost of its group — plus end-to-end monotonicity: the final plan
//! never costs more than the baseline (the pipeline takes the min).
//!
//! Candidate-level cost fields (C_W, C_R, C_E lower bound, cardinality and
//! width estimates) are validated by [`crate::verify_candidates`] with the
//! same `costing/*` rules.

use crate::diag::{rules, Report};
use cse_memo::GroupId;
use std::collections::HashMap;

/// Relative + absolute slack for float comparisons: re-deriving a cost on
/// a (possibly further explored) memo may differ in the last ulps.
const EPS: f64 = 1e-6;

/// Inputs of the costing audit.
#[derive(Debug, Clone, Default)]
pub struct CostAudit {
    /// Per-group lower bounds recorded during candidate generation.
    pub bounds: Vec<(GroupId, f64)>,
    /// Freshly recomputed baseline (no-CSE) winner cost per group.
    pub winners: HashMap<GroupId, f64>,
    /// Baseline plan cost (no CSEs).
    pub baseline_cost: f64,
    /// Final chosen plan cost.
    pub final_cost: f64,
}

/// Run the costing audit.
pub fn verify_costs(a: &CostAudit) -> Report {
    let mut report = Report::new();
    for &(g, bound) in &a.bounds {
        let path = g.to_string();
        if !bound.is_finite() {
            report.error(
                rules::COSTING_NONFINITE,
                &path,
                format!("lower bound {bound} is not finite"),
            );
            continue;
        }
        if bound < 0.0 {
            report.error(
                rules::COSTING_NEGATIVE,
                &path,
                format!("lower bound {bound} is negative"),
            );
        }
        if let Some(&winner) = a.winners.get(&g) {
            if winner.is_finite() && bound > winner * (1.0 + EPS) + EPS {
                report.error(
                    rules::COSTING_BOUND_EXCEEDS_WINNER,
                    &path,
                    format!("lower bound {bound} exceeds recomputed winner cost {winner}"),
                );
            }
        }
    }
    for (name, v) in [
        ("baseline_cost", a.baseline_cost),
        ("final_cost", a.final_cost),
    ] {
        if !v.is_finite() {
            report.error(
                rules::COSTING_NONFINITE,
                "plan",
                format!("{name} = {v} is not finite"),
            );
        } else if v < 0.0 {
            report.error(
                rules::COSTING_NEGATIVE,
                "plan",
                format!("{name} = {v} is negative"),
            );
        }
    }
    if a.final_cost.is_finite()
        && a.baseline_cost.is_finite()
        && a.final_cost > a.baseline_cost * (1.0 + EPS) + EPS
    {
        report.error(
            rules::COSTING_BOUND_EXCEEDS_WINNER,
            "plan",
            format!(
                "final cost {} exceeds baseline cost {}",
                a.final_cost, a.baseline_cost
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_costs_are_clean() {
        let audit = CostAudit {
            bounds: vec![(GroupId(0), 10.0), (GroupId(1), 20.0)],
            winners: [(GroupId(0), 10.0), (GroupId(1), 25.0)]
                .into_iter()
                .collect(),
            baseline_cost: 100.0,
            final_cost: 80.0,
        };
        let report = verify_costs(&audit);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn bound_above_winner_fires() {
        let audit = CostAudit {
            bounds: vec![(GroupId(0), 50.0)],
            winners: [(GroupId(0), 10.0)].into_iter().collect(),
            baseline_cost: 100.0,
            final_cost: 100.0,
        };
        let report = verify_costs(&audit);
        assert_eq!(
            report.fired_rules().into_iter().collect::<Vec<_>>(),
            vec![rules::COSTING_BOUND_EXCEEDS_WINNER]
        );
    }
}
