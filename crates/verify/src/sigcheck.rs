//! Pass 2: signature audit.
//!
//! Table signatures are maintained *incrementally* while the memo is built
//! (paper §3: each group's `[G; {tables}]` is derived from its children's
//! signatures by the rules of Fig. 2, at group-creation time). The whole
//! detection phase — the signature table, sharable sets, containment
//! heuristics — trusts those stored values. This pass recomputes every
//! group's signature *from scratch*, bottom-up over the originally
//! inserted expression tree, and diffs the two.
//!
//! The recomputation deliberately follows each group's **first**
//! expression: exploration rewrites (e.g. eager aggregation) add
//! alternative expressions whose shapes legitimately yield no signature
//! under Fig. 2 even though the group has one — the signature belongs to
//! the logical class, and the first expression mirrors the inserted plan.

use crate::diag::{rules, Report};
use cse_memo::{compute_signature, GroupId, Memo, TableSignature};
use std::collections::HashMap;

/// Recompute every group's signature from scratch and diff against the
/// incrementally maintained one.
pub fn verify_signatures(memo: &Memo) -> Report {
    let mut report = Report::new();
    let mut cache: HashMap<GroupId, Option<TableSignature>> = HashMap::new();
    for g in memo.groups() {
        let scratch = scratch_signature(memo, g.id, &mut cache);
        let stored = g.props.signature.as_ref();
        if stored != scratch.as_ref() {
            let show =
                |s: Option<&TableSignature>| s.map(|x| x.to_string()).unwrap_or_else(|| "∅".into());
            report.error(
                rules::SIGNATURE_MISMATCH,
                g.id.to_string(),
                format!(
                    "stored signature {} != recomputed {}",
                    show(stored),
                    show(scratch.as_ref())
                ),
            );
        }
    }
    report
}

/// Bottom-up from-scratch signature of a group's first expression tree
/// (acyclic by construction), memoized per group.
fn scratch_signature(
    memo: &Memo,
    g: GroupId,
    cache: &mut HashMap<GroupId, Option<TableSignature>>,
) -> Option<TableSignature> {
    if let Some(s) = cache.get(&g) {
        return s.clone();
    }
    let first = memo.group(g).exprs.first().copied();
    let sig = match first {
        None => None,
        Some(eid) => {
            let e = memo.gexpr(eid);
            let children: Vec<Option<TableSignature>> = e
                .children
                .iter()
                .map(|&c| scratch_signature(memo, c, cache))
                .collect();
            let child_refs: Vec<Option<&TableSignature>> =
                children.iter().map(|c| c.as_ref()).collect();
            compute_signature(&memo.ctx, &e.op, &child_refs)
        }
    };
    cache.insert(g, sig.clone());
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext, Scalar};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    #[test]
    fn healthy_memo_is_clean() {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let r = ctx.add_base_rel("r", "r", schema.clone(), b);
        let s = ctx.add_base_rel("s", "s", schema, b);
        let plan = LogicalPlan::get(r).join(
            LogicalPlan::get(s),
            Scalar::eq(Scalar::col(r, 0), Scalar::col(s, 0)),
        );
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&plan);
        let report = verify_signatures(&memo);
        assert!(report.is_clean(), "{}", report.render());
    }
}
