//! Passes 3 & 4: compatibility and covering audits of constructed CSEs.
//!
//! The pipeline adapts each `CostedCandidate` (cse-core) into a
//! [`CandidateAudit`] — a self-contained record in anchor space built from
//! algebra/memo types only — so this crate stays below `cse-core` in the
//! dependency graph and adversarial tests can corrupt audits directly.
//!
//! **Compatibility (paper §4.1, Thm. 1):** the members of a CSE must have a
//! *connected* intersected equijoin graph. The pass re-derives the
//! intersection from the members' equivalence classes, checks connectivity
//! directly, checks the compositional fast path (Example 3) applied to the
//! recorded join conjuncts agrees with the direct derivation, and checks
//! every recorded join conjunct is actually entailed by the intersection
//! (an overclaimed join would make the spool drop rows some consumer
//! needs).
//!
//! **Covering (paper §4.2):** under the covering joins, each member's
//! simplified predicate must imply the covering predicate (checked with the
//! conservative prover in `cse_algebra::implication`); a member's group-by
//! keys/aggregates must be subsumed by the union group-by (steps 4); and
//! every column a matched member requires — plus the columns of its
//! compensation predicate — must be served by the covering projection
//! (step 5).

use crate::diag::{rules, Report};
use cse_algebra::{
    classes_to_conjuncts, derive_compatibility_compositional, implies, intersect_all, is_connected,
    AggExpr, ColRef, EquivClasses, RelSet, Scalar,
};
use cse_memo::GroupId;
use std::collections::BTreeSet;

/// One consumer of a candidate, in anchor space.
#[derive(Debug, Clone)]
pub struct MemberAudit {
    /// The consumer's memo group (for diagnostics).
    pub group: GroupId,
    /// Equivalence classes of the member's predicate (anchor space).
    pub classes: Vec<BTreeSet<ColRef>>,
    /// Simplified predicate: conjuncts beyond the covering joins (§4.2
    /// step 2), anchor space.
    pub simplified: Scalar,
    /// Group-by keys (anchor space; empty when the member is ungrouped).
    pub keys: Vec<ColRef>,
    /// Aggregates (anchor space; empty when ungrouped).
    pub aggs: Vec<AggExpr>,
    /// Columns the member's ancestors require, restricted to the CSE's base
    /// rels and mapped into anchor space.
    pub required: BTreeSet<ColRef>,
    /// Did view matching actually produce a substitute for this member?
    /// Projection coverage is only enforced for matched members — unmatched
    /// ones are dropped by the pipeline and never rewritten.
    pub matched: bool,
}

/// A constructed CSE prepared for auditing.
#[derive(Debug, Clone)]
pub struct CandidateAudit {
    /// Candidate index (for diagnostics paths: `cse#id`).
    pub id: u32,
    /// The anchor-space rel set the CSE joins.
    pub rel_set: RelSet,
    /// Work-table column layout (the covering projection).
    pub output: Vec<ColRef>,
    /// Covering selection predicate (§4.2 step 3).
    pub covering: Scalar,
    /// Recorded equijoin conjuncts from the intersected classes (step 1).
    pub join_conjuncts: Vec<Scalar>,
    /// Union group-by keys/aggregates (step 4); `None` when ungrouped.
    pub keys: Option<Vec<ColRef>>,
    pub aggs: Option<Vec<AggExpr>>,
    /// Cardinality/width estimates and the three §5.2 cost components.
    pub est_rows: f64,
    pub est_width: f64,
    pub cw: f64,
    pub cr: f64,
    pub ce_lower: f64,
    pub members: Vec<MemberAudit>,
}

/// Run the compatibility + covering audits (and candidate-level costing
/// sanity) over a batch of candidates.
pub fn verify_candidates(audits: &[CandidateAudit]) -> Report {
    let mut report = Report::new();
    for a in audits {
        verify_compatibility(a, &mut report);
        verify_covering(a, &mut report);
        verify_candidate_costs(a, &mut report);
    }
    report
}

fn verify_compatibility(a: &CandidateAudit, report: &mut Report) {
    if a.members.is_empty() {
        return;
    }
    let path = format!("cse#{}", a.id);
    // Direct re-derivation: intersect the members' classes, check the
    // equijoin graph over the CSE's rels is connected (Thm. 1).
    let collections: Vec<Vec<BTreeSet<ColRef>>> =
        a.members.iter().map(|m| m.classes.clone()).collect();
    let inter = intersect_all(&collections);
    let direct = is_connected(a.rel_set, &inter);
    if !direct {
        report.error(
            rules::COMPAT_DISCONNECTED,
            &path,
            format!(
                "intersected equijoin graph over {} rel(s) is not connected \
                 ({} shared class(es))",
                a.rel_set.len(),
                inter.len()
            ),
        );
    }
    // Compositional fast path (Example 3) applied to the *recorded* join
    // conjuncts: each conjunct class contributes its connected rel set; the
    // derivation must agree with the direct method.
    let claimed_classes = EquivClasses::from_conjuncts(&a.join_conjuncts).classes();
    let evidence: Vec<RelSet> = claimed_classes
        .iter()
        .map(|cl| RelSet::from_iter(cl.iter().map(|c| c.rel)))
        .collect();
    let fast = derive_compatibility_compositional(a.rel_set, &evidence);
    if fast != direct {
        report.error(
            rules::COMPAT_FASTPATH_DIVERGENCE,
            &path,
            format!(
                "compositional fast path over recorded join conjuncts says \
                 {} but direct re-derivation says {}",
                if fast { "compatible" } else { "unknown" },
                if direct { "connected" } else { "disconnected" },
            ),
        );
    }
    // Every recorded join conjunct must be entailed by the intersection —
    // the spool applies these joins for *all* consumers.
    let inter_ec = EquivClasses::from_conjuncts(&classes_to_conjuncts(&inter));
    for j in &a.join_conjuncts {
        match j.as_col_eq_col() {
            Some((x, y)) if inter_ec.are_equal(x, y) => {}
            Some((x, y)) => report.error(
                rules::COMPAT_OVERCLAIMED_JOIN,
                &path,
                format!(
                    "join conjunct {x} = {y} is not entailed by the members' \
                     intersected equivalence classes"
                ),
            ),
            None => report.error(
                rules::COMPAT_OVERCLAIMED_JOIN,
                &path,
                format!("recorded join conjunct `{j}` is not an equijoin"),
            ),
        }
    }
}

fn verify_covering(a: &CandidateAudit, report: &mut Report) {
    let out: BTreeSet<ColRef> = a.output.iter().copied().collect();
    for (mi, m) in a.members.iter().enumerate() {
        let path = format!("cse#{}/member[{mi}]", a.id);
        // Effective member predicate in spool space: the covering joins are
        // applied by the spool, so the implication to check is
        // joins ∧ simplified ⇒ covering (§4.2 step 3).
        let effective = Scalar::and(
            a.join_conjuncts
                .iter()
                .cloned()
                .chain(std::iter::once(m.simplified.clone())),
        )
        .normalize();
        if !implies(&effective, &a.covering) {
            report.error(
                rules::COVERING_PRED_NOT_IMPLIED,
                &path,
                format!(
                    "member predicate `{}` (with covering joins) does not \
                     imply covering predicate `{}`",
                    m.simplified, a.covering
                ),
            );
        }
        // Group-by subsumption (§4.2 step 4).
        match (&a.keys, &a.aggs) {
            (Some(keys), aggs) => {
                for k in &m.keys {
                    if !keys.contains(k) {
                        report.error(
                            rules::COVERING_KEYS_NOT_SUBSET,
                            &path,
                            format!("member group-by key {k} missing from union keys"),
                        );
                    }
                }
                let union_aggs = aggs.as_deref().unwrap_or(&[]);
                for agg in &m.aggs {
                    if !union_aggs.contains(agg) {
                        report.error(
                            rules::COVERING_AGGS_NOT_SUBSET,
                            &path,
                            format!("member aggregate `{agg}` missing from union aggregates"),
                        );
                    }
                }
            }
            (None, _) => {
                if !m.keys.is_empty() || !m.aggs.is_empty() {
                    report.error(
                        rules::COVERING_KEYS_NOT_SUBSET,
                        &path,
                        "grouped member covered by an ungrouped candidate",
                    );
                }
            }
        }
        if !m.matched {
            continue;
        }
        // Projection coverage (§4.2 step 5): required columns of ungrouped
        // members, and compensation-predicate columns of every matched
        // member, must be in the work-table layout.
        if a.keys.is_none() {
            for c in &m.required {
                if a.rel_set.contains(c.rel) && !out.contains(c) {
                    report.error(
                        rules::COVERING_MISSING_OUTPUT,
                        &path,
                        format!("required column {c} missing from covering projection"),
                    );
                }
            }
        }
        for conj in m.simplified.conjuncts() {
            if implies(&a.covering, &conj) {
                // Guaranteed by the spool contents: no compensation needed.
                continue;
            }
            for c in conj.columns() {
                if !out.contains(&c) {
                    report.error(
                        rules::COVERING_MISSING_OUTPUT,
                        &path,
                        format!(
                            "compensation predicate `{conj}` references {c}, \
                             which the covering projection does not provide"
                        ),
                    );
                }
            }
        }
    }
}

fn verify_candidate_costs(a: &CandidateAudit, report: &mut Report) {
    let path = format!("cse#{}", a.id);
    for (name, v) in [
        ("est_rows", a.est_rows),
        ("est_width", a.est_width),
        ("cw", a.cw),
        ("cr", a.cr),
        ("ce_lower", a.ce_lower),
    ] {
        if !v.is_finite() {
            report.error(
                rules::COSTING_NONFINITE,
                &path,
                format!("{name} = {v} is not finite"),
            );
        } else if v < 0.0 {
            report.error(
                rules::COSTING_NEGATIVE,
                &path,
                format!("{name} = {v} is negative"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::RelId;

    fn cr(r: u32, c: u16) -> ColRef {
        ColRef::new(RelId(r), c)
    }

    fn base_audit() -> CandidateAudit {
        // Two members over {R,S}, both joining on R.0 = S.0.
        let class: BTreeSet<ColRef> = [cr(0, 0), cr(1, 0)].into_iter().collect();
        let join = Scalar::eq(Scalar::Col(cr(0, 0)), Scalar::Col(cr(1, 0))).normalize();
        let member = |g: u32| MemberAudit {
            group: GroupId(g),
            classes: vec![class.clone()],
            simplified: Scalar::true_(),
            keys: vec![],
            aggs: vec![],
            required: [cr(0, 1)].into_iter().collect(),
            matched: true,
        };
        CandidateAudit {
            id: 0,
            rel_set: RelSet::from_iter([RelId(0), RelId(1)]),
            output: vec![cr(0, 1)],
            covering: Scalar::true_(),
            join_conjuncts: vec![join],
            keys: None,
            aggs: None,
            est_rows: 100.0,
            est_width: 8.0,
            cw: 10.0,
            cr: 5.0,
            ce_lower: 50.0,
            members: vec![member(10), member(11)],
        }
    }

    #[test]
    fn healthy_candidate_is_clean() {
        let report = verify_candidates(&[base_audit()]);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn negative_cost_fires() {
        let mut a = base_audit();
        a.cw = -1.0;
        let report = verify_candidates(&[a]);
        assert_eq!(
            report.fired_rules().into_iter().collect::<Vec<_>>(),
            vec![rules::COSTING_NEGATIVE]
        );
    }
}
