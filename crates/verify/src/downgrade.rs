//! Pass 6: downgrade audit. When the optimization budget trips (or the
//! operator forces the baseline rung), the pipeline promises a *genuine*
//! baseline plan: no covering-subexpression operators anywhere. This pass
//! mechanically checks that promise on the final physical plan — a
//! half-degraded hybrid (a `CseRead` with no spool, or a spool nobody
//! reads after the consumers were rewritten away) would silently return
//! wrong answers or leak work.

use crate::diag::{rules, Report};
use cse_optimizer::{FullPlan, PhysicalPlan};

/// Verify that `plan` is a valid baseline plan: no `CseRead` operators in
/// any statement and no retained spool definitions. Run by the pipeline
/// whenever the degradation ladder bottomed out at the baseline rung.
pub fn verify_downgrade(plan: &FullPlan) -> Report {
    let mut report = Report::new();
    let mut reads = 0usize;
    plan.root.visit(&mut |p| {
        if let PhysicalPlan::CseRead { cse, .. } = p {
            reads += 1;
            report.error(
                rules::DOWNGRADE_COVERING_OP_IN_BASELINE,
                format!("plan/{cse}"),
                format!("baseline plan contains CseRead {cse}"),
            );
        }
    });
    for id in plan.spools.keys() {
        report.error(
            rules::DOWNGRADE_SPOOL_RETAINED,
            format!("spool/{id}"),
            format!("baseline plan retains spool definition {id}"),
        );
    }
    // The retained-baseline pointer is only meaningful on a shared plan;
    // on a baseline plan it would double memory for nothing.
    if plan.baseline.is_some() {
        report.warn(
            rules::DOWNGRADE_SPOOL_RETAINED,
            "plan/baseline",
            "baseline plan carries a redundant retained baseline copy",
        );
    }
    let _ = reads;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{ColRef, RelId};
    use cse_optimizer::{CseId, SpoolDef};
    use std::collections::BTreeMap;

    fn scan() -> PhysicalPlan {
        PhysicalPlan::TableScan {
            rel: RelId(0),
            filter: None,
            layout: vec![ColRef::new(RelId(0), 0)],
        }
    }

    #[test]
    fn clean_baseline_plan_passes() {
        let plan = FullPlan {
            root: scan(),
            spools: BTreeMap::new(),
            cost: 1.0,
            baseline: None,
        };
        assert!(verify_downgrade(&plan).is_clean());
    }

    #[test]
    fn covering_operators_are_flagged() {
        let read = PhysicalPlan::CseRead {
            cse: CseId(0),
            filter: None,
            reagg: None,
            output_map: vec![],
            layout: vec![],
        };
        let plan = FullPlan {
            root: read,
            spools: BTreeMap::from([(
                CseId(0),
                SpoolDef {
                    plan: scan(),
                    layout: vec![ColRef::new(RelId(0), 0)],
                    est_rows: 1.0,
                },
            )]),
            cost: 1.0,
            baseline: None,
        };
        let report = verify_downgrade(&plan);
        assert_eq!(report.error_count(), 2);
        assert!(report
            .fired_rules()
            .contains(rules::DOWNGRADE_COVERING_OP_IN_BASELINE));
        assert!(report
            .fired_rules()
            .contains(rules::DOWNGRADE_SPOOL_RETAINED));
    }

    #[test]
    fn redundant_baseline_copy_is_a_warning() {
        let plan = FullPlan {
            root: scan(),
            spools: BTreeMap::new(),
            cost: 1.0,
            baseline: Some(Box::new(scan())),
        };
        let report = verify_downgrade(&plan);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.diagnostics.len(), 1);
    }
}
