//! Structured diagnostics: every verifier pass reports violations through
//! these types so callers (pipeline, CLI, bench report, tests) can filter
//! by rule and severity instead of parsing strings.
//!
//! The carrier types ([`Severity`], [`Diagnostic`], [`Report`]) live in the
//! shared `cse-diag` crate so the frontend linter (`cse-lint`) can emit the
//! same shape; this module re-exports them and keeps the verifier's own
//! rule-id catalogue (the `lint/…` namespace belongs to `cse-lint`).

pub use cse_diag::{Diagnostic, Report, Severity};

/// Stable rule identifiers, one per invariant. Grouped by pass family.
pub mod rules {
    /// A referenced column is not produced by any child of the expression.
    pub const PROVENANCE_UNAVAILABLE_COLUMN: &str = "provenance/unavailable-column";
    /// `Project`/`Sort`/`Batch` found somewhere other than a statement root.
    pub const PROVENANCE_ROOT_ONLY_OP: &str = "provenance/root-only-op";
    /// An aggregate output column referenced where the aggregate's result
    /// is not in scope (e.g. below the aggregate that defines it).
    pub const PROVENANCE_AGG_OUT_LEAK: &str = "provenance/agg-out-leak";
    /// Incrementally maintained table signature differs from the signature
    /// recomputed bottom-up from scratch (paper §3, Fig. 2).
    pub const SIGNATURE_MISMATCH: &str = "signature/mismatch";
    /// The intersected equijoin graph of a CSE's members is not connected
    /// (paper §4.1, Thm. 1).
    pub const COMPAT_DISCONNECTED: &str = "compat/disconnected";
    /// The compositional fast path (paper §4.1, Example 3) applied to the
    /// recorded join conjuncts disagrees with the direct re-derivation.
    pub const COMPAT_FASTPATH_DIVERGENCE: &str = "compat/fastpath-divergence";
    /// A recorded join conjunct is not entailed by the intersection of the
    /// members' equivalence classes (the spool would join more than every
    /// consumer allows).
    pub const COMPAT_OVERCLAIMED_JOIN: &str = "compat/overclaimed-join";
    /// A member's predicate (under the covering joins) does not imply the
    /// covering predicate (paper §4.2, step 3).
    pub const COVERING_PRED_NOT_IMPLIED: &str = "covering/pred-not-implied";
    /// A member's group-by keys are not a subset of the union group-by.
    pub const COVERING_KEYS_NOT_SUBSET: &str = "covering/keys-not-subset";
    /// A member's aggregates are not a subset of the union aggregates.
    pub const COVERING_AGGS_NOT_SUBSET: &str = "covering/aggs-not-subset";
    /// A column a consumer requires is missing from the covering projection.
    pub const COVERING_MISSING_OUTPUT: &str = "covering/missing-output";
    /// A cost, estimate or bound is NaN or infinite.
    pub const COSTING_NONFINITE: &str = "costing/nonfinite";
    /// A cost, estimate or bound is negative.
    pub const COSTING_NEGATIVE: &str = "costing/negative";
    /// A normal-phase lower bound exceeds the freshly recomputed winner
    /// cost of its group (or the final cost exceeds the baseline).
    pub const COSTING_BOUND_EXCEEDS_WINNER: &str = "costing/bound-exceeds-winner";
    /// A plan produced under a tripped (or forced) optimization budget
    /// still contains a covering operator (`CseRead`).
    pub const DOWNGRADE_COVERING_OP_IN_BASELINE: &str = "downgrade/covering-op-in-baseline";
    /// A plan produced under a tripped budget retains spool definitions
    /// (or a redundant baseline copy) it can never use.
    pub const DOWNGRADE_SPOOL_RETAINED: &str = "downgrade/spool-retained";
    /// A materialized view is registered with no backing table in the
    /// catalog (e.g. left behind by a partial mutation sequence).
    pub const CATALOG_VIEW_MISSING_TABLE: &str = "catalog/view-missing-table";
    /// Table statistics disagree with the table they describe (row count
    /// or column coverage), so the cost model would reason from fiction.
    pub const CATALOG_STATS_DRIFT: &str = "catalog/stats-drift";
    /// An index references columns outside the schema or fails to cover a
    /// row of its table — reads through it would silently miss data.
    pub const CATALOG_INDEX_STALE: &str = "catalog/index-stale";

    /// Every rule the verifier can emit, for documentation and tooling.
    pub const ALL: &[&str] = &[
        PROVENANCE_UNAVAILABLE_COLUMN,
        PROVENANCE_ROOT_ONLY_OP,
        PROVENANCE_AGG_OUT_LEAK,
        SIGNATURE_MISMATCH,
        COMPAT_DISCONNECTED,
        COMPAT_FASTPATH_DIVERGENCE,
        COMPAT_OVERCLAIMED_JOIN,
        COVERING_PRED_NOT_IMPLIED,
        COVERING_KEYS_NOT_SUBSET,
        COVERING_AGGS_NOT_SUBSET,
        COVERING_MISSING_OUTPUT,
        COSTING_NONFINITE,
        COSTING_NEGATIVE,
        COSTING_BOUND_EXCEEDS_WINNER,
        DOWNGRADE_COVERING_OP_IN_BASELINE,
        DOWNGRADE_SPOOL_RETAINED,
        CATALOG_VIEW_MISSING_TABLE,
        CATALOG_STATS_DRIFT,
        CATALOG_INDEX_STALE,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn report_accumulates_and_renders() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.error(rules::SIGNATURE_MISMATCH, "G3", "stored != recomputed");
        r.warn(rules::COSTING_NEGATIVE, "cse#0", "cw = -1");
        let mut other = Report::new();
        other.error(rules::COMPAT_DISCONNECTED, "cse#1", "graph split");
        r.merge(other);
        assert_eq!(r.diagnostics.len(), 3);
        assert_eq!(r.error_count(), 2);
        assert!(r.fired_rules().contains(rules::COMPAT_DISCONNECTED));
        let text = r.render();
        assert!(text.contains("signature/mismatch"));
        assert!(text.contains("G3"));
    }

    #[test]
    fn all_rules_are_unique() {
        let set: BTreeSet<_> = rules::ALL.iter().collect();
        assert_eq!(set.len(), rules::ALL.len());
    }
}
