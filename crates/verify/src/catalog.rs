//! Catalog invariant pass: structural consistency of a [`Catalog`] as a
//! whole — views backed by storage, statistics that match their table,
//! indexes that actually point at the rows they claim.
//!
//! The other passes audit what the *optimizer* derived; this one audits
//! what the optimizer is *given*. Its main consumer is crash recovery
//! (`cse-durable`), which refuses to resume serving on a rebuilt catalog
//! that fails this pass, but it is equally applicable to a live catalog
//! after a mutation storm.

use crate::diag::{rules, Report};
use cse_storage::{Catalog, CatalogEntry};

fn check_entry(report: &mut Report, name: &str, entry: &CatalogEntry) {
    let table = entry.table.as_ref();
    let n_rows = table.rows().len();
    let n_cols = table.schema().len();

    if entry.stats.row_count as usize != n_rows {
        report.error(
            rules::CATALOG_STATS_DRIFT,
            name,
            format!(
                "stats claim {} row(s) but the table holds {n_rows}",
                entry.stats.row_count
            ),
        );
    }
    if entry.stats.columns.len() != n_cols {
        report.error(
            rules::CATALOG_STATS_DRIFT,
            name,
            format!(
                "stats cover {} column(s) but the schema has {n_cols}",
                entry.stats.columns.len()
            ),
        );
    }

    let hash_cols = entry.hash_indexes.iter().map(|i| ("hash", i.column));
    let btree_cols = entry.btree_indexes.iter().map(|i| ("btree", i.column));
    for (kind, column) in hash_cols.chain(btree_cols) {
        if column >= n_cols {
            report.error(
                rules::CATALOG_INDEX_STALE,
                name,
                format!("{kind} index on column #{column} is out of schema bounds ({n_cols})"),
            );
        }
    }

    // Containment: every row must be reachable through every index on its
    // own key. A stale index (built before a replace_table) fails here.
    for (row_id, row) in table.rows().iter().enumerate() {
        for idx in &entry.hash_indexes {
            let Some(key) = row.get(idx.column) else {
                continue;
            };
            if !idx.lookup(key).contains(&(row_id as u32)) {
                report.error(
                    rules::CATALOG_INDEX_STALE,
                    name,
                    format!(
                        "hash index on column #{} does not cover row {row_id}",
                        idx.column
                    ),
                );
                return; // one stale index drowns the report; stop early
            }
        }
        for idx in &entry.btree_indexes {
            let Some(key) = row.get(idx.column) else {
                continue;
            };
            if !idx.lookup(key).contains(&(row_id as u32)) {
                report.error(
                    rules::CATALOG_INDEX_STALE,
                    name,
                    format!(
                        "btree index on column #{} does not cover row {row_id}",
                        idx.column
                    ),
                );
                return;
            }
        }
    }
}

/// Audit a catalog's structural invariants. Errors mean the catalog must
/// not be served; recovery treats a non-clean report as fatal.
pub fn verify_catalog(catalog: &Catalog) -> Report {
    let mut report = Report::new();
    for name in catalog.table_names() {
        if let Ok(entry) = catalog.get(name) {
            check_entry(&mut report, name, entry);
        }
    }
    for view in catalog.views() {
        if !catalog.contains(&view.name) {
            report.error(
                rules::CATALOG_VIEW_MISSING_TABLE,
                view.name.as_str(),
                "materialized view has no backing table in the catalog",
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::schema::Schema;
    use cse_storage::table::{row, Table};
    use cse_storage::value::{DataType, Value};
    use cse_storage::MaterializedView;

    fn table_named(name: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(name, Schema::from_pairs(&[("a", DataType::Int)]));
        for v in vals {
            t.push(row(vec![Value::Int(*v)])).unwrap();
        }
        t
    }

    #[test]
    fn healthy_catalog_is_clean() {
        let mut c = Catalog::new();
        c.register_table(table_named("t", &[1, 2, 3])).unwrap();
        c.create_hash_index("t", "a").unwrap();
        c.create_btree_index("t", "a").unwrap();
        let report = verify_catalog(&c);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn view_without_backing_table_fires() {
        let mut c = Catalog::new();
        c.register_view(MaterializedView {
            name: "ghost".into(),
            definition_sql: "select 1".into(),
        });
        let report = verify_catalog(&c);
        assert!(report
            .fired_rules()
            .contains(&rules::CATALOG_VIEW_MISSING_TABLE));
    }

    #[test]
    fn stats_drift_fires_on_handcrafted_entry() {
        // Build a catalog whose stats lie about the row count by going
        // through replace_table with different data, then re-attaching
        // the old stats. There is no public API that produces this state,
        // so synthesize it the way corruption would: via a raw entry.
        let mut c = Catalog::new();
        c.register_table(table_named("t", &[1, 2, 3])).unwrap();
        let stale_stats = c.get("t").unwrap().stats.clone();
        c.replace_table(table_named("t", &[1]));
        let mut broken = c.get("t").unwrap().clone();
        broken.stats = stale_stats;
        c.put_entry_for_test("t", broken);
        let report = verify_catalog(&c);
        assert!(report.fired_rules().contains(&rules::CATALOG_STATS_DRIFT));
    }

    #[test]
    fn stale_index_fires() {
        let mut c = Catalog::new();
        c.register_table(table_named("t", &[1, 2, 3])).unwrap();
        c.create_hash_index("t", "a").unwrap();
        let with_index = c.get("t").unwrap().clone();
        c.replace_table(table_named("t", &[7, 8]));
        let mut broken = c.get("t").unwrap().clone();
        broken.hash_indexes = with_index.hash_indexes;
        c.put_entry_for_test("t", broken);
        let report = verify_catalog(&c);
        assert!(report.fired_rules().contains(&rules::CATALOG_INDEX_STALE));
    }
}
