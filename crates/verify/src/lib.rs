//! # cse-verify
//!
//! A multi-pass static analyzer that mechanically audits the invariants the
//! optimizer pipeline *assumes* but (before this crate) never checked:
//!
//! 1. **Well-formedness / column provenance** ([`provenance`]): every
//!    column referenced by a memo expression is produced by its children;
//!    delivery operators (`Project`/`Sort`/`Batch`) appear only at
//!    statement roots; aggregate output columns never leak below the
//!    aggregate that defines them.
//! 2. **Signature audit** ([`sigcheck`]): table signatures maintained
//!    incrementally during memo construction (paper §3, Fig. 2) must equal
//!    signatures recomputed bottom-up from scratch.
//! 3. **Compatibility audit** ([`candidate`]): join compatibility of a
//!    CSE's members re-derived directly from intersected equivalence
//!    classes (paper §4.1, Thm. 1 — connectivity of the intersected
//!    equijoin graph), cross-checked against the compositional fast path
//!    and the recorded join conjuncts.
//! 4. **Covering audit** ([`candidate`]): every consumer's (simplified)
//!    predicate, under the covering joins, implies the covering predicate
//!    (paper §4.2); consumer group-by keys/aggregates are subsumed by the
//!    union group-by; required columns are served by the covering
//!    projection.
//! 5. **Costing sanity** ([`costing`]): candidate costs are finite and
//!    nonnegative; per-group lower bounds from the normal phase never
//!    exceed freshly recomputed winner costs (paper §4.3.3/§5.4).
//! 6. **Downgrade audit** ([`downgrade`]): a plan produced under a tripped
//!    (or forced) optimization budget is a genuine baseline plan — no
//!    `CseRead` operators, no retained spool definitions.
//!
//! Each pass emits structured [`Diagnostic`]s collected into a [`Report`].
//! The pipeline (`cse-core`) runs the verifier behind `CseConfig::verify`
//! (on by default in debug/test builds); `qsql --verify` and the
//! `cse-bench` `verify` report expose it on demand.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod candidate;
pub mod catalog;
pub mod costing;
pub mod diag;
pub mod downgrade;
pub mod provenance;
pub mod sigcheck;

pub use candidate::{verify_candidates, CandidateAudit, MemberAudit};
pub use catalog::verify_catalog;
pub use costing::{verify_costs, CostAudit};
pub use diag::{rules, Diagnostic, Report, Severity};
pub use downgrade::verify_downgrade;
pub use provenance::verify_provenance;
pub use sigcheck::verify_signatures;

use cse_memo::{GroupId, Memo};

/// Run the memo-level passes (provenance + signature audit) and merge the
/// reports. `roots` are the statement roots (batch root plus any CSE
/// definition roots) — the only positions where delivery operators may
/// legally appear.
pub fn verify_memo(memo: &Memo, roots: &[GroupId]) -> Report {
    let mut report = verify_provenance(memo, roots);
    report.merge(verify_signatures(memo));
    report
}
