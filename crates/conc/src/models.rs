//! Step-function models of the serving layer's concurrent structures.
//!
//! Each model mirrors one real component — [`QueueModel`] for
//! `cse_serve::queue::BoundedQueue`, [`BreakerModel`] for
//! `cse_serve::breaker::Breaker`, [`CancelModel`] for the server's
//! cancel/deadline race (request token + per-attempt token + watchdog),
//! [`GovernorModel`] for `cse_govern::MemoryGovernor`'s reserve / grow /
//! release accounting — at the granularity the `conc/` discipline rules
//! guarantee is sound:
//! one mutex-protected operation of the real code is one atomic model
//! step. Time is a logical tick advanced by a dedicated clock thread, so
//! "deadline expires mid-attempt" is just another interleaving.
//!
//! The invariants here are the ISSUE-level properties the stress tests
//! only sample: every admitted item is delivered exactly once in FIFO
//! order, the half-open breaker admits exactly one probe, every
//! request reaches exactly one terminal outcome with the
//! explicit-cancel-wins classification the reason codes promise, and
//! memory reservations never over-commit the governor's budget while a
//! release always unblocks a fitting waiter.

use crate::explore::Model;
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// QueueModel — BoundedQueue admission / shed / close / drain
// ---------------------------------------------------------------------------

/// How a modeled producer pushes: `Try` mirrors `try_push` (sheds when
/// full), `Blocking` mirrors `push_blocking` (waits on the not-full
/// condvar — modeled as the thread being disabled while the queue is
/// full and open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushMode {
    Try,
    Blocking,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Producer {
    mode: PushMode,
    /// Item ids still to push (globally unique across producers).
    remaining: VecDeque<u32>,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Consumer {
    popped: Vec<u32>,
    /// Observed `None` (queue closed and drained) — the consumer's exit.
    got_none: bool,
}

/// Model of `BoundedQueue`: N producers, M consumers, one closer thread.
///
/// Thread layout: producers are tids `0..P`, consumers `P..P+M`, the
/// closer is the last tid.
#[derive(Debug, Clone)]
pub struct QueueModel {
    cap: usize,
    items: VecDeque<u32>,
    closed: bool,
    producers: Vec<Producer>,
    consumers: Vec<Consumer>,
    closer_done: bool,
    /// Global admission order (for the FIFO invariant).
    admitted: Vec<u32>,
    /// Global pop order across all consumers.
    popped: Vec<u32>,
    pub shed: Vec<u32>,
    pub closed_rejects: Vec<u32>,
}

impl QueueModel {
    /// `producer_items[i]` is the number of items producer `i` pushes with
    /// the given mode. Item ids are assigned in producer order.
    pub fn new(cap: usize, producer_items: &[(PushMode, u32)], consumers: usize) -> Self {
        let mut next_id = 0u32;
        let producers = producer_items
            .iter()
            .map(|&(mode, count)| {
                let remaining: VecDeque<u32> = (next_id..next_id + count).collect();
                next_id += count;
                Producer { mode, remaining }
            })
            .collect();
        QueueModel {
            cap,
            items: VecDeque::new(),
            closed: false,
            producers,
            consumers: vec![Consumer::default(); consumers],
            closer_done: false,
            admitted: Vec::new(),
            popped: Vec::new(),
            shed: Vec::new(),
            closed_rejects: Vec::new(),
        }
    }

    fn closer_tid(&self) -> usize {
        self.producers.len() + self.consumers.len()
    }

    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }
}

impl Model for QueueModel {
    fn threads(&self) -> usize {
        self.producers.len() + self.consumers.len() + 1
    }

    fn enabled(&self, tid: usize) -> bool {
        let p = self.producers.len();
        if tid < p {
            let prod = &self.producers[tid];
            if prod.remaining.is_empty() {
                return false;
            }
            match prod.mode {
                PushMode::Try => true,
                // push_blocking waits on not_full while open; a closed
                // queue wakes it with PushError::Closed.
                PushMode::Blocking => self.closed || self.items.len() < self.cap,
            }
        } else if tid < p + self.consumers.len() {
            let cons = &self.consumers[tid - p];
            // pop blocks on not_empty until an item arrives or close.
            !cons.got_none && (!self.items.is_empty() || self.closed)
        } else {
            !self.closer_done
        }
    }

    fn done(&self, tid: usize) -> bool {
        let p = self.producers.len();
        if tid < p {
            self.producers[tid].remaining.is_empty()
        } else if tid < p + self.consumers.len() {
            self.consumers[tid - p].got_none
        } else {
            self.closer_done
        }
    }

    fn step(&mut self, tid: usize) {
        let p = self.producers.len();
        if tid < p {
            let mode = self.producers[tid].mode;
            let item = self.producers[tid].remaining.pop_front().expect("enabled");
            if self.closed {
                self.closed_rejects.push(item);
            } else if self.items.len() >= self.cap {
                debug_assert_eq!(mode, PushMode::Try, "blocking producer was not enabled");
                self.shed.push(item);
            } else {
                self.items.push_back(item);
                self.admitted.push(item);
            }
        } else if tid < p + self.consumers.len() {
            let idx = tid - p;
            match self.items.pop_front() {
                Some(item) => {
                    self.consumers[idx].popped.push(item);
                    self.popped.push(item);
                }
                None => {
                    debug_assert!(self.closed, "consumer was not enabled");
                    self.consumers[idx].got_none = true;
                }
            }
        } else {
            self.closed = true;
            self.closer_done = true;
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.items.len() > self.cap {
            return Err(format!(
                "queue holds {} items, capacity {}",
                self.items.len(),
                self.cap
            ));
        }
        // Global FIFO: the pop order is exactly the admission order.
        if self.popped.as_slice() != &self.admitted[..self.popped.len()] {
            return Err(format!(
                "pop order {:?} diverged from admission order {:?}",
                self.popped, self.admitted
            ));
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if !self.items.is_empty() {
            return Err(format!(
                "{} admitted items never delivered",
                self.items.len()
            ));
        }
        // Exactly-once delivery: every admitted item popped exactly once.
        if self.popped != self.admitted {
            return Err("admitted items and delivered items diverge".to_string());
        }
        // Accounting: every produced item has exactly one fate.
        let total: usize = self.admitted.len() + self.shed.len() + self.closed_rejects.len();
        let produced: usize = self
            .producers
            .iter()
            .map(|p| p.remaining.len())
            .sum::<usize>()
            + total;
        if total != produced {
            return Err(format!("{total} outcomes for {produced} produced items"));
        }
        let _ = self.closer_tid();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// BreakerModel — Closed -> Open -> HalfOpen probe protocol
// ---------------------------------------------------------------------------

/// Mirror of `cse_serve::breaker::Admission`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    Full,
    BaselineOnly,
    Probe,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BreakerSt {
    Closed,
    Open { until: u32 },
    HalfOpen { probe_inflight: bool },
}

#[derive(Debug, Clone)]
struct BreakerWorker {
    /// Per-request outcome program: `true` = degraded result.
    outcomes: Vec<bool>,
    /// Two steps per request: even = admit, odd = record.
    pc: usize,
    pending: Option<Admission>,
}

/// Model of the CSE circuit breaker with a logical-tick clock thread.
///
/// Each worker runs `outcomes.len()` requests; a request is the same
/// two-phase protocol the real server uses — `admit()` under the breaker
/// lock, then the optimizer runs unlocked, then `record`/`record_probe`
/// under the lock again. The gap between the two steps is where the
/// interesting interleavings live (e.g. two workers both seeing HalfOpen).
///
/// Thread layout: workers are tids `0..W`, the clock is the last tid.
#[derive(Debug, Clone)]
pub struct BreakerModel {
    window_cap: usize,
    min_samples: usize,
    /// Trip when `bad * trip_den >= trip_num * len` (integer form of the
    /// real breaker's f64 ratio, exact for the small models used here).
    trip_num: u32,
    trip_den: u32,
    cooldown: u32,
    now: u32,
    st: BreakerSt,
    window: VecDeque<bool>,
    pub trips: u32,
    pub probes: u32,
    pub baseline_served: u32,
    pub closes: u32,
    workers: Vec<BreakerWorker>,
    clock_left: u32,
    probe_outstanding: u32,
}

impl BreakerModel {
    pub fn new(
        window_cap: usize,
        min_samples: usize,
        trip_ratio: (u32, u32),
        cooldown: u32,
        worker_outcomes: &[&[bool]],
        clock_ticks: u32,
    ) -> Self {
        BreakerModel {
            window_cap,
            min_samples,
            trip_num: trip_ratio.0,
            trip_den: trip_ratio.1,
            cooldown,
            now: 0,
            st: BreakerSt::Closed,
            window: VecDeque::new(),
            trips: 0,
            probes: 0,
            baseline_served: 0,
            closes: 0,
            workers: worker_outcomes
                .iter()
                .map(|o| BreakerWorker {
                    outcomes: o.to_vec(),
                    pc: 0,
                    pending: None,
                })
                .collect(),
            clock_left: clock_ticks,
            probe_outstanding: 0,
        }
    }

    fn admit(&mut self) -> Admission {
        match self.st {
            BreakerSt::Closed => Admission::Full,
            BreakerSt::Open { until } => {
                if self.now < until {
                    self.baseline_served += 1;
                    Admission::BaselineOnly
                } else {
                    self.st = BreakerSt::HalfOpen {
                        probe_inflight: true,
                    };
                    self.probes += 1;
                    Admission::Probe
                }
            }
            BreakerSt::HalfOpen { probe_inflight } => {
                if probe_inflight {
                    self.baseline_served += 1;
                    Admission::BaselineOnly
                } else {
                    self.st = BreakerSt::HalfOpen {
                        probe_inflight: true,
                    };
                    self.probes += 1;
                    Admission::Probe
                }
            }
        }
    }

    fn record(&mut self, degraded: bool) {
        if self.st != BreakerSt::Closed {
            return;
        }
        self.window.push_back(degraded);
        while self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        let len = self.window.len() as u32;
        let bad = self.window.iter().filter(|&&d| d).count() as u32;
        if self.window.len() >= self.min_samples && bad * self.trip_den >= self.trip_num * len {
            self.st = BreakerSt::Open {
                until: self.now + self.cooldown,
            };
            self.window.clear();
            self.trips += 1;
        }
    }

    fn record_probe(&mut self, ok: bool) {
        if ok {
            self.st = BreakerSt::Closed;
            self.window.clear();
            self.closes += 1;
        } else {
            self.st = BreakerSt::Open {
                until: self.now + self.cooldown,
            };
            self.trips += 1;
        }
    }
}

impl Model for BreakerModel {
    fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    fn enabled(&self, tid: usize) -> bool {
        // Neither workers nor the clock ever block.
        !self.done(tid)
    }

    fn done(&self, tid: usize) -> bool {
        if tid < self.workers.len() {
            let w = &self.workers[tid];
            w.pc == 2 * w.outcomes.len()
        } else {
            self.clock_left == 0
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == self.workers.len() {
            self.now += 1;
            self.clock_left -= 1;
            return;
        }
        let pc = self.workers[tid].pc;
        if pc.is_multiple_of(2) {
            // Phase 1: admit() under the breaker lock.
            let adm = self.admit();
            if adm == Admission::Probe {
                self.probe_outstanding += 1;
            }
            let w = &mut self.workers[tid];
            w.pending = Some(adm);
            w.pc += 1;
        } else {
            // Phase 2: the request ran (unlocked gap already happened in
            // whatever interleaving brought us here); report the outcome.
            let degraded = self.workers[tid].outcomes[pc / 2];
            let adm = self.workers[tid].pending.take().expect("admit ran");
            match adm {
                Admission::Full => self.record(degraded),
                Admission::Probe => {
                    self.record_probe(!degraded);
                    self.probe_outstanding -= 1;
                }
                Admission::BaselineOnly => {}
            }
            self.workers[tid].pc += 1;
        }
    }

    fn invariant(&self) -> Result<(), String> {
        // The ISSUE invariant: half-open admits exactly one probe.
        if self.probe_outstanding > 1 {
            return Err(format!(
                "{} probes in flight simultaneously",
                self.probe_outstanding
            ));
        }
        if self.probe_outstanding == 1
            && self.st
                != (BreakerSt::HalfOpen {
                    probe_inflight: true,
                })
        {
            return Err(format!(
                "probe in flight but breaker state is {:?}",
                self.st
            ));
        }
        if self.st == BreakerSt::Closed && self.probe_outstanding != 0 {
            return Err("breaker Closed while a probe is outstanding".to_string());
        }
        if self.window.len() > self.window_cap {
            return Err("outcome window exceeded its capacity".to_string());
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.probe_outstanding != 0 {
            return Err("probe still outstanding at end of schedule".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// CancelModel — request token / attempt token / watchdog / deadline races
// ---------------------------------------------------------------------------

/// Terminal outcome classification, mirroring the server's reason codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Request completed (`REQ_OK`-class outcomes).
    Done,
    /// `REQ_CANCELED`: explicit client cancel wins classification.
    Canceled,
    /// `REQ_DEADLINE`: attempts exhausted with no explicit cancel.
    DeadlineExpired,
}

/// Model of one request's lifecycle through the server's cancellation
/// machinery: a worker running bounded attempts, a client that may cancel,
/// the watchdog that propagates request-level cancellation into the
/// current attempt token, and a logical clock.
///
/// Thread layout: 0 = worker, 1 = client, 2 = watchdog, 3 = clock.
#[derive(Debug, Clone)]
pub struct CancelModel {
    // Configuration.
    max_attempts: u32,
    work_steps: u32,
    deadline_ticks: u32,
    client_cancels: bool,
    // Shared state.
    now: u32,
    /// Request-token explicit-cancel flag (client-owned).
    explicit: bool,
    /// Current attempt's token flag (watchdog propagates into this).
    attempt_canceled: bool,
    attempt_deadline: u32,
    attempt_active: bool,
    pub attempts_started: u32,
    pub outcome: Option<Terminal>,
    /// Value of `explicit` at the moment the outcome was classified —
    /// lets the invariant check the classification rule itself.
    outcome_explicit_at_set: bool,
    // Thread programs.
    worker_progress: u32,
    client_done: bool,
    watchdog_checks_left: u32,
    clock_left: u32,
}

impl CancelModel {
    pub fn new(
        max_attempts: u32,
        work_steps: u32,
        deadline_ticks: u32,
        client_cancels: bool,
        watchdog_checks: u32,
        clock_ticks: u32,
    ) -> Self {
        CancelModel {
            max_attempts,
            work_steps,
            deadline_ticks,
            client_cancels,
            now: 0,
            explicit: false,
            attempt_canceled: false,
            attempt_deadline: 0,
            attempt_active: false,
            attempts_started: 0,
            outcome: None,
            outcome_explicit_at_set: false,
            worker_progress: 0,
            client_done: false,
            watchdog_checks_left: watchdog_checks,
            clock_left: clock_ticks,
        }
    }

    fn set_outcome(&mut self, t: Terminal) {
        assert!(
            self.outcome.is_none(),
            "second terminal outcome {t:?} after {:?}",
            self.outcome
        );
        self.outcome = Some(t);
        self.outcome_explicit_at_set = self.explicit;
    }

    /// The attempt token's view: canceled if its flag is set *or* its own
    /// deadline passed (CancelToken::check examines both).
    fn attempt_interrupted(&self) -> bool {
        self.attempt_canceled || self.now >= self.attempt_deadline
    }
}

impl Model for CancelModel {
    fn threads(&self) -> usize {
        4
    }

    fn enabled(&self, tid: usize) -> bool {
        !self.done(tid)
    }

    fn done(&self, tid: usize) -> bool {
        match tid {
            0 => self.outcome.is_some(),
            1 => !self.client_cancels || self.client_done,
            2 => self.outcome.is_some() || self.watchdog_checks_left == 0,
            _ => self.clock_left == 0,
        }
    }

    fn step(&mut self, tid: usize) {
        match tid {
            0 => {
                if !self.attempt_active {
                    // Attempt boundary: the server re-checks the request
                    // token before starting a retry.
                    if self.explicit {
                        self.set_outcome(Terminal::Canceled);
                        return;
                    }
                    self.attempt_active = true;
                    self.attempt_canceled = false;
                    self.attempt_deadline = self.now + self.deadline_ticks;
                    self.attempts_started += 1;
                    self.worker_progress = 0;
                } else if self.attempt_interrupted() {
                    // The engine observed the attempt token; classify via
                    // the *request* token: explicit cancel wins.
                    self.attempt_active = false;
                    if self.explicit {
                        self.set_outcome(Terminal::Canceled);
                    } else if self.attempts_started >= self.max_attempts {
                        self.set_outcome(Terminal::DeadlineExpired);
                    }
                    // else: retry — next worker step starts a new attempt.
                } else if self.worker_progress + 1 >= self.work_steps {
                    self.set_outcome(Terminal::Done);
                } else {
                    self.worker_progress += 1;
                }
            }
            1 => {
                self.explicit = true;
                self.client_done = true;
            }
            2 => {
                // One watchdog tick: propagate request-level cancellation
                // and deadline expiry into the current attempt's token.
                self.watchdog_checks_left -= 1;
                if self.attempt_active && (self.explicit || self.now >= self.attempt_deadline) {
                    self.attempt_canceled = true;
                }
            }
            _ => {
                self.now += 1;
                self.clock_left -= 1;
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        match self.outcome {
            Some(Terminal::Canceled) if !self.outcome_explicit_at_set => {
                Err("classified REQ_CANCELED without the explicit flag set".to_string())
            }
            Some(Terminal::DeadlineExpired) if self.outcome_explicit_at_set => Err(
                "classified REQ_DEADLINE although explicit cancel was set first \
                 (explicit cancel must win)"
                    .to_string(),
            ),
            _ => {
                if self.attempts_started > self.max_attempts {
                    Err(format!(
                        "{} attempts started, budget {}",
                        self.attempts_started, self.max_attempts
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn final_check(&self) -> Result<(), String> {
        // The ISSUE invariant: every admitted request reaches exactly one
        // terminal outcome (exactly-once is enforced by set_outcome).
        if self.outcome.is_none() {
            return Err("request never reached a terminal outcome".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// GovernorModel — MemoryGovernor reserve / grow / release accounting
// ---------------------------------------------------------------------------

/// How a modeled requester takes its initial reservation: `Try` mirrors
/// `MemoryGovernor::try_reserve` (sheds when the grant does not fit),
/// `Blocking` mirrors `reserve_blocking` (waits on the release condvar —
/// modeled as the thread being *disabled* while its grant does not fit,
/// so a release path that failed to wake a fitting waiter would surface
/// as an explored deadlock, not a missed assertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveMode {
    Try,
    Blocking,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Requester {
    mode: ReserveMode,
    /// Initial grant it asks for.
    reserve: u32,
    /// Mid-flight growth (`MemReservation::charge` crossing its grant);
    /// zero means the requester never grows.
    grow: u32,
    /// 0 = about to reserve, 1 = about to grow, 2 = about to release,
    /// 3 = terminal.
    pc: u8,
    /// Bytes this requester currently holds out of the pool.
    held: u32,
    /// Terminal fate: reservation refused (request shed).
    shed: bool,
    /// The grow step was refused (the recoverable `EXEC_MEM_RESERVATION`
    /// fault): the requester degrades but still releases what it holds.
    grow_refused: bool,
}

/// Model of `cse_govern::MemoryGovernor`: N requesters, each running
/// reserve → grow → release against one shared byte budget. One
/// pool-lock operation of the real code is one atomic step here.
///
/// Thread layout: requester `i` is tid `i`; there is no clock (the
/// governor has no time-dependent state — `reserve_blocking`'s deadline
/// polling is covered by [`CancelModel`]).
///
/// Invariants: the pool never over-commits (`reserved <= budget`),
/// accounting is exact (`reserved` equals the sum of held bytes, so
/// release-on-drop leaks nothing and double-releases nothing), and a
/// shed requester holds zero bytes. Final check: the pool drains to
/// zero and every requester reaches exactly one terminal fate.
#[derive(Debug, Clone)]
pub struct GovernorModel {
    budget: u32,
    /// Pool state: bytes currently granted.
    reserved: u32,
    requesters: Vec<Requester>,
}

impl GovernorModel {
    /// `spec` is `(mode, reserve_bytes, grow_bytes)` per requester.
    pub fn new(budget: u32, spec: &[(ReserveMode, u32, u32)]) -> Self {
        GovernorModel {
            budget,
            reserved: 0,
            requesters: spec
                .iter()
                .map(|&(mode, reserve, grow)| Requester {
                    mode,
                    reserve,
                    grow,
                    pc: 0,
                    held: 0,
                    shed: false,
                    grow_refused: false,
                })
                .collect(),
        }
    }

    fn fits(&self, extra: u32) -> bool {
        self.reserved + extra <= self.budget
    }

    pub fn shed_count(&self) -> usize {
        self.requesters.iter().filter(|r| r.shed).count()
    }

    pub fn completed_count(&self) -> usize {
        self.requesters
            .iter()
            .filter(|r| r.pc == 3 && !r.shed)
            .count()
    }

    pub fn grow_refusals(&self) -> usize {
        self.requesters.iter().filter(|r| r.grow_refused).count()
    }

    pub fn reserved(&self) -> u32 {
        self.reserved
    }
}

impl Model for GovernorModel {
    fn threads(&self) -> usize {
        self.requesters.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        let r = &self.requesters[tid];
        if r.pc == 3 {
            return false;
        }
        if r.pc == 0 && r.mode == ReserveMode::Blocking {
            // A blocked reserver is runnable only once its grant fits —
            // except an over-budget request, which `reserve_blocking`
            // fails fast on (no release could ever satisfy it).
            return self.fits(r.reserve) || r.reserve > self.budget;
        }
        true
    }

    fn done(&self, tid: usize) -> bool {
        self.requesters[tid].pc == 3
    }

    fn step(&mut self, tid: usize) {
        let r = self.requesters[tid].clone();
        match r.pc {
            0 => {
                let admit = match r.mode {
                    ReserveMode::Try => self.fits(r.reserve),
                    // enabled() already held this thread until it fits;
                    // an over-budget blocking request fails fast instead.
                    ReserveMode::Blocking => r.reserve <= self.budget,
                };
                let me = &mut self.requesters[tid];
                if admit {
                    me.held = r.reserve;
                    me.pc = 1;
                    self.reserved += r.reserve;
                } else {
                    me.shed = true;
                    me.pc = 3;
                }
            }
            1 => {
                // Growth is always try-style: `MemReservation::charge`
                // never blocks, a refusal is the recoverable fault the
                // engine turns into a baseline retry.
                let granted = r.grow > 0 && self.fits(r.grow);
                let me = &mut self.requesters[tid];
                if granted {
                    me.held += r.grow;
                    self.reserved += r.grow;
                } else if r.grow > 0 {
                    me.grow_refused = true;
                }
                me.pc = 2;
            }
            2 => {
                // Release-on-drop: the whole held amount goes back in one
                // step and (in the real code) notifies the condvar.
                let me = &mut self.requesters[tid];
                let held = me.held;
                me.held = 0;
                me.pc = 3;
                self.reserved -= held;
            }
            _ => unreachable!("stepped a terminal requester"),
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.reserved > self.budget {
            return Err(format!(
                "pool over-committed: {} reserved > {} budget",
                self.reserved, self.budget
            ));
        }
        let held_sum: u32 = self.requesters.iter().map(|r| r.held).sum();
        if held_sum != self.reserved {
            return Err(format!(
                "accounting drift: requesters hold {held_sum} but the pool says {}",
                self.reserved
            ));
        }
        for (i, r) in self.requesters.iter().enumerate() {
            if r.shed && r.held != 0 {
                return Err(format!("shed requester {i} still holds {} bytes", r.held));
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.reserved != 0 {
            return Err(format!(
                "pool did not drain: {} bytes still reserved",
                self.reserved
            ));
        }
        if self.shed_count() + self.completed_count() != self.requesters.len() {
            return Err("a requester reached neither shed nor completed".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, explore_with, replay, sample};

    // -- QueueModel ---------------------------------------------------------

    #[test]
    fn queue_exhaustive_admit_shed_close_drain() {
        // Capacity 1, one try-push producer with 2 items, one blocking
        // producer with 1 item, one consumer, one closer: covers shed
        // (try_push into a full queue), blocking hand-off, close-time
        // rejection, and drain-after-close.
        let init = QueueModel::new(1, &[(PushMode::Try, 2), (PushMode::Blocking, 1)], 1);
        let mut saw_shed = false;
        let mut saw_closed_reject = false;
        let mut saw_all_admitted = false;
        let stats = explore_with(&init, 200_000, |m| {
            saw_shed |= !m.shed.is_empty();
            saw_closed_reject |= !m.closed_rejects.is_empty();
            saw_all_admitted |= m.admitted_count() == 3;
        })
        .expect("no schedule violates the queue invariants");
        assert!(
            stats.schedules >= 50,
            "exhaustive bound is non-trivial: {stats:?}"
        );
        assert!(saw_shed, "some schedule sheds on a full queue");
        assert!(saw_closed_reject, "some schedule rejects after close");
        assert!(saw_all_admitted, "some schedule admits every item");
    }

    #[test]
    fn queue_two_consumers_preserve_global_fifo() {
        let init = QueueModel::new(2, &[(PushMode::Try, 3)], 2);
        let stats = explore(&init, 200_000).expect("FIFO holds across competing consumers");
        assert!(stats.schedules > 10);
    }

    #[test]
    fn queue_blocking_producer_wakes_on_close_not_deadlocks() {
        // Blocking producer against a full queue with no consumer: only the
        // closer can unblock it (PushError::Closed). If close() failed to
        // wake blocked pushers this would be reported as a deadlock.
        let init = QueueModel::new(0, &[(PushMode::Blocking, 1)], 0);
        let stats = explore(&init, 1_000).expect("close wakes the blocked producer");
        assert!(stats.schedules >= 1);
        let final_state = replay(&init, &[1, 0]).expect("closer then producer");
        assert_eq!(final_state.closed_rejects, vec![0]);
    }

    #[test]
    fn queue_sampling_arm_agrees_with_exhaustive() {
        let init = QueueModel::new(1, &[(PushMode::Try, 2), (PushMode::Blocking, 1)], 1);
        let stats = sample(&init, 42, 500).expect("sampled schedules hold the invariants too");
        assert_eq!(stats.schedules, 500);
    }

    // -- BreakerModel -------------------------------------------------------

    #[test]
    fn breaker_trip_probe_close_cycle_is_exhaustively_safe() {
        // Window 2 / min 2 / trip at >=1/2 bad, cooldown 1 tick. Worker 0
        // degrades twice then succeeds twice; worker 1 succeeds twice.
        // Schedules exist where the breaker trips, serves baseline during
        // cooldown, half-opens, probes, and closes again.
        let init = BreakerModel::new(2, 2, (1, 2), 1, &[&[true, true, false], &[false, false]], 2);
        let mut saw_trip = false;
        let mut saw_probe = false;
        let mut saw_baseline = false;
        let mut saw_close = false;
        let stats = explore_with(&init, 2_000_000, |m| {
            saw_trip |= m.trips > 0;
            saw_probe |= m.probes > 0;
            saw_baseline |= m.baseline_served > 0;
            saw_close |= m.closes > 0;
        })
        .expect("at most one probe in flight in every interleaving");
        assert!(stats.schedules > 1_000, "{stats:?}");
        assert!(saw_trip, "some schedule trips the breaker");
        assert!(saw_probe, "some schedule admits a half-open probe");
        assert!(
            saw_baseline,
            "some schedule serves baseline during cooldown"
        );
        assert!(saw_close, "some schedule closes via a successful probe");
    }

    #[test]
    fn breaker_concurrent_workers_never_double_probe() {
        // Three workers all racing one request each against a breaker that
        // is one bad sample from tripping: the dangerous interleaving is
        // two workers observing HalfOpen{probe_inflight: false} "at once" —
        // impossible when admit() is one atomic step, which is what the
        // model (and the lock discipline in the real code) guarantees.
        let init = BreakerModel::new(1, 1, (1, 1), 1, &[&[true], &[false], &[false]], 3);
        let stats = explore(&init, 2_000_000).expect("probe_outstanding <= 1 everywhere");
        assert!(stats.schedules > 100);
    }

    #[test]
    fn breaker_sampling_extends_coverage() {
        let init = BreakerModel::new(2, 2, (1, 2), 1, &[&[true, true, false], &[false, false]], 2);
        let stats = sample(&init, 7, 300).expect("sampled interleavings safe");
        assert_eq!(stats.schedules, 300);
    }

    // -- CancelModel --------------------------------------------------------

    #[test]
    fn cancel_model_every_request_reaches_one_terminal_outcome() {
        // 2 attempts x 2 work steps, 1-tick deadlines, a canceling client,
        // 2 watchdog ticks, 3 clock ticks: covers clean completion, retry
        // after deadline, deadline exhaustion, cancel-then-deadline and
        // deadline-then-cancel orderings.
        let init = CancelModel::new(2, 2, 1, true, 2, 3);
        let mut outcomes = [false; 3]; // Done, Canceled, DeadlineExpired
        let stats = explore_with(&init, 2_000_000, |m| match m.outcome {
            Some(Terminal::Done) => outcomes[0] = true,
            Some(Terminal::Canceled) => outcomes[1] = true,
            Some(Terminal::DeadlineExpired) => outcomes[2] = true,
            None => {}
        })
        .expect("classification and exactly-once hold in every interleaving");
        assert!(stats.schedules > 1_000, "{stats:?}");
        assert!(outcomes[0], "some schedule completes");
        assert!(outcomes[1], "some schedule is canceled");
        assert!(outcomes[2], "some schedule exhausts its deadline budget");
    }

    #[test]
    fn cancel_without_client_never_classifies_canceled() {
        let init = CancelModel::new(2, 2, 1, false, 2, 3);
        let mut saw_canceled = false;
        explore_with(&init, 2_000_000, |m| {
            saw_canceled |= m.outcome == Some(Terminal::Canceled);
        })
        .expect("invariants hold");
        assert!(
            !saw_canceled,
            "REQ_CANCELED requires an explicit client cancel"
        );
    }

    #[test]
    fn cancel_then_deadline_replays_as_canceled() {
        let init = CancelModel::new(1, 3, 1, true, 1, 2);
        // Worker starts attempt; client cancels; watchdog propagates; the
        // worker's next poll observes the attempt token and classifies
        // against the request token: explicit cancel wins even though the
        // deadline would also have expired after the clock ticks.
        let s = replay(&init, &[0, 1, 2, 3, 3, 0]).expect("valid schedule");
        assert_eq!(s.outcome, Some(Terminal::Canceled));
        // Deadline-first ordering on the same model: clock exhausts the
        // deadline before any client cancel; classification is REQ_DEADLINE.
        let s = replay(&init, &[0, 3, 3, 0]).expect("valid schedule");
        assert_eq!(s.outcome, Some(Terminal::DeadlineExpired));
    }

    #[test]
    fn cancel_sampling_arm_is_deterministic() {
        let init = CancelModel::new(2, 2, 1, true, 2, 3);
        let a = sample(&init, 11, 400).expect("clean");
        let b = sample(&init, 11, 400).expect("clean");
        assert_eq!(a, b);
    }

    // -- GovernorModel ------------------------------------------------------

    #[test]
    fn governor_exhaustive_never_overcommits() {
        // Budget 3 against try(2)+grow(1), blocking(2), try(1)+grow(2):
        // schedules exist where everything fits serially, where the try
        // reservers shed, and where a grow is refused mid-flight — the
        // invariant (reserved <= budget, exact accounting) must hold in
        // every interleaving of pool operations.
        let init = GovernorModel::new(
            3,
            &[
                (ReserveMode::Try, 2, 1),
                (ReserveMode::Blocking, 2, 0),
                (ReserveMode::Try, 1, 2),
            ],
        );
        let mut saw_shed = false;
        let mut saw_grow_refusal = false;
        let mut saw_all_completed = false;
        let stats = explore_with(&init, 2_000_000, |m| {
            saw_shed |= m.shed_count() > 0;
            saw_grow_refusal |= m.grow_refusals() > 0;
            saw_all_completed |= m.completed_count() == 3;
        })
        .expect("no interleaving over-commits the budget or drifts accounting");
        assert!(stats.schedules > 100, "{stats:?}");
        assert!(saw_shed, "some schedule sheds a try-reserver");
        assert!(saw_grow_refusal, "some schedule refuses a mid-flight grow");
        assert!(saw_all_completed, "some schedule completes every requester");
    }

    #[test]
    fn governor_release_always_unblocks_a_fitting_waiter() {
        // Two blocking reservers that each want the whole budget: they
        // can only run serially, and the second is disabled until the
        // first releases. If release failed to make the waiter runnable
        // the explorer would report this as a deadlock.
        let init = GovernorModel::new(
            2,
            &[(ReserveMode::Blocking, 2, 0), (ReserveMode::Blocking, 2, 0)],
        );
        let stats = explore(&init, 100_000).expect("release wakes the blocked reserver");
        assert!(stats.schedules >= 2);
        // Deterministic witness: t0 reserves/grows/releases, then t1 can.
        let s = replay(&init, &[0, 0, 0, 1, 1, 1]).expect("serial hand-off schedule");
        assert_eq!(s.completed_count(), 2);
        assert_eq!(s.reserved(), 0);
    }

    #[test]
    fn governor_oversized_blocking_request_fails_fast_not_deadlocks() {
        // A blocking request larger than the whole budget can never be
        // satisfied; reserve_blocking fails it fast (modeled as a shed)
        // instead of waiting forever.
        let init = GovernorModel::new(
            2,
            &[(ReserveMode::Blocking, 3, 0), (ReserveMode::Try, 1, 0)],
        );
        let mut saw_oversized_shed = false;
        let stats = explore_with(&init, 100_000, |m| {
            saw_oversized_shed |= m.shed_count() >= 1 && m.completed_count() == 1;
        })
        .expect("over-budget request sheds instead of deadlocking");
        assert!(stats.schedules >= 2);
        assert!(saw_oversized_shed);
    }

    #[test]
    fn governor_sampling_arm_is_deterministic() {
        let init = GovernorModel::new(
            3,
            &[
                (ReserveMode::Try, 2, 1),
                (ReserveMode::Blocking, 2, 0),
                (ReserveMode::Try, 1, 2),
            ],
        );
        let a = sample(&init, 13, 400).expect("clean");
        let b = sample(&init, 13, 400).expect("clean");
        assert_eq!(a, b);
    }

    /// The deep seeded-sampling arm, gated on `QCONC_SAMPLE=seed[:n]`
    /// (e.g. `QCONC_SAMPLE=7:20000`). The gated configurations are too
    /// big for exhaustive exploration in every test run; CI invokes this
    /// arm explicitly so nightly-style runs can vary the seed.
    #[test]
    fn env_gated_deep_sampling_arm() {
        let Ok(spec) = std::env::var("QCONC_SAMPLE") else {
            return;
        };
        let (seed, n) = match spec.split_once(':') {
            Some((s, n)) => (
                s.parse::<u64>().expect("QCONC_SAMPLE seed must be u64"),
                n.parse::<u64>().expect("QCONC_SAMPLE count must be u64"),
            ),
            None => (
                spec.parse::<u64>().expect("QCONC_SAMPLE seed must be u64"),
                10_000,
            ),
        };
        let queue = QueueModel::new(
            2,
            &[
                (PushMode::Try, 3),
                (PushMode::Blocking, 2),
                (PushMode::Try, 2),
            ],
            2,
        );
        let s = sample(&queue, seed, n).expect("queue invariants hold under deep sampling");
        assert_eq!(s.schedules, n);
        let breaker = BreakerModel::new(
            3,
            2,
            (1, 2),
            2,
            &[
                &[true, false, true, false],
                &[false, true, false],
                &[true, true],
            ],
            4,
        );
        let s = sample(&breaker, seed ^ 1, n).expect("breaker invariants hold under deep sampling");
        assert_eq!(s.schedules, n);
        let cancel = CancelModel::new(3, 3, 2, true, 3, 5);
        let s = sample(&cancel, seed ^ 2, n).expect("cancel invariants hold under deep sampling");
        assert_eq!(s.schedules, n);
        let governor = GovernorModel::new(
            4,
            &[
                (ReserveMode::Try, 2, 1),
                (ReserveMode::Blocking, 3, 1),
                (ReserveMode::Try, 1, 0),
                (ReserveMode::Blocking, 2, 2),
            ],
        );
        let s =
            sample(&governor, seed ^ 3, n).expect("governor invariants hold under deep sampling");
        assert_eq!(s.schedules, n);
    }
}
