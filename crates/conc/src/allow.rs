//! The `qconc` allowlist: checked-in, justified exceptions.
//!
//! Format (one entry per line, `#` comments, blank lines ignored):
//!
//! ```text
//! rule-id  file-suffix  function  justification text...
//! ```
//!
//! The first three whitespace-separated fields key the entry; everything
//! after the third field is the mandatory justification. `function` may be
//! `*` to cover a whole file. An entry matches a finding when the rule id
//! is equal, the finding's file path ends with `file-suffix`, and the
//! enclosing function matches.
//!
//! Keying on `(rule, file, function)` instead of byte spans keeps entries
//! stable across unrelated edits: reformatting a file must not invalidate
//! its exceptions, while renaming or deleting the excepted function makes
//! the entry *stale* — and stale entries are themselves findings
//! (`conc/stale-allow`), so the list can only shrink back to truth, never
//! silently rot.

use crate::discipline::{rules, Finding};
use cse_diag::Severity;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file_suffix: String,
    pub func: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for stale-entry reporting).
    pub line: usize,
}

impl AllowEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && f.file.ends_with(&self.file_suffix)
            && (self.func == "*" || self.func == f.func)
    }
}

/// Parse the allowlist text. Errors name the offending line; an entry
/// without a justification is an error — undocumented exceptions are the
/// failure mode this file exists to prevent.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split the three key fields on whitespace *runs* (columns may be
        // space-aligned); the remainder is the justification.
        let mut rest = line;
        let mut field = || {
            rest = rest.trim_start();
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let f = &rest[..end];
            rest = &rest[end..];
            f.to_string()
        };
        let rule = field();
        let file_suffix = field();
        let func = field();
        let justification = rest.trim().to_string();
        if rule.is_empty() || file_suffix.is_empty() || func.is_empty() {
            return Err(format!(
                "allowlist line {}: expected `rule file-suffix function justification`, got: {raw}",
                idx + 1
            ));
        }
        if !rules::ALL.contains(&rule.as_str()) {
            return Err(format!(
                "allowlist line {}: unknown rule `{rule}`; known rules: {}",
                idx + 1,
                rules::ALL.join(", ")
            ));
        }
        if justification.is_empty() {
            return Err(format!(
                "allowlist line {}: entry for {rule} at {file_suffix}::{func} has no \
                 justification — every exception must say why it is sound",
                idx + 1
            ));
        }
        entries.push(AllowEntry {
            rule,
            file_suffix,
            func,
            justification,
            line: idx + 1,
        });
    }
    Ok(entries)
}

/// The result of filtering findings through the allowlist.
#[derive(Debug, Default)]
pub struct Filtered {
    /// Findings no entry covered: these gate `--deny`.
    pub denied: Vec<Finding>,
    /// Covered findings, with the entry's justification attached.
    pub allowed: Vec<(Finding, String)>,
    /// Entries that covered nothing: stale, reported as findings.
    pub stale: Vec<AllowEntry>,
}

/// Split `findings` by the allowlist, and convert unused entries into
/// `conc/stale-allow` findings so the list cannot rot.
pub fn apply_allowlist(findings: Vec<Finding>, entries: &[AllowEntry]) -> Filtered {
    let mut used = vec![false; entries.len()];
    let mut out = Filtered::default();
    for f in findings {
        match entries.iter().position(|e| e.matches(&f)) {
            Some(idx) => {
                used[idx] = true;
                let justification = entries[idx].justification.clone();
                out.allowed.push((f, justification));
            }
            None => out.denied.push(f),
        }
    }
    for (idx, e) in entries.iter().enumerate() {
        if !used[idx] {
            out.stale.push(e.clone());
        }
    }
    out
}

/// A stale entry rendered as a deniable finding.
pub fn stale_finding(e: &AllowEntry) -> Finding {
    Finding {
        rule: rules::STALE_ALLOW,
        file: "qconc.allow".to_string(),
        func: format!("line {}", e.line),
        message: format!(
            "allowlist entry `{} {} {}` matched no finding; remove it (the excepted \
             code was fixed, moved, or renamed)",
            e.rule, e.file_suffix, e.func
        ),
        span: (0, 0),
        severity: Severity::Warning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::rules;

    fn finding(rule: &'static str, file: &str, func: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            func: func.to_string(),
            message: "m".to_string(),
            span: (0, 1),
            severity: Severity::Warning,
        }
    }

    #[test]
    fn parse_and_match() {
        let text = "\
# serve-layer counters
conc/relaxed-ordering crates/serve/src/server.rs bump monotonic counter, no ordering needed
conc/hot-path-lock    crates/serve/src/server.rs *    bounded O(1) sections
";
        let entries = parse_allowlist(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches(&finding(
            rules::RELAXED_ORDERING,
            "/root/repo/crates/serve/src/server.rs",
            "bump"
        )));
        assert!(!entries[0].matches(&finding(
            rules::RELAXED_ORDERING,
            "/root/repo/crates/serve/src/server.rs",
            "other_fn"
        )));
        assert!(entries[1].matches(&finding(
            rules::HOT_PATH_LOCK,
            "crates/serve/src/server.rs",
            "anything"
        )));
    }

    #[test]
    fn justification_is_mandatory() {
        let err = parse_allowlist("conc/lock-order a.rs f").unwrap_err();
        assert!(err.contains("no justification"), "{err}");
    }

    #[test]
    fn unknown_rules_are_rejected() {
        let err = parse_allowlist("conc/not-a-rule a.rs f because reasons").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn stale_entries_surface() {
        let entries =
            parse_allowlist("conc/lock-order gone.rs vanished_fn refactored away").expect("parses");
        let filtered = apply_allowlist(vec![finding(rules::LOCK_ORDER, "live.rs", "f")], &entries);
        assert_eq!(filtered.denied.len(), 1);
        assert_eq!(filtered.stale.len(), 1);
        let s = stale_finding(&filtered.stale[0]);
        assert_eq!(s.rule, rules::STALE_ALLOW);
        assert!(s.message.contains("vanished_fn"), "{}", s.message);
    }

    #[test]
    fn first_matching_entry_wins_and_is_marked_used() {
        let text = "\
conc/lock-order a.rs f justified once
conc/lock-order a.rs * justified broadly
";
        let entries = parse_allowlist(text).expect("parses");
        let filtered = apply_allowlist(
            vec![
                finding(rules::LOCK_ORDER, "a.rs", "f"),
                finding(rules::LOCK_ORDER, "a.rs", "g"),
            ],
            &entries,
        );
        assert_eq!(filtered.allowed.len(), 2);
        assert!(filtered.stale.is_empty());
        assert!(filtered.denied.is_empty());
    }
}
