//! The `qconc` allowlist: checked-in, justified exceptions.
//!
//! The format and mechanics (entry keys, mandatory justifications,
//! stale-entry detection) live in [`cse_source::allow`], shared with
//! `qaudit`; this module binds them to the `conc/*` rule vocabulary and
//! the `qconc.allow` list name.

use crate::discipline::{rules, Finding};

pub use cse_source::allow::{apply_allowlist, AllowEntry, Filtered};

/// Parse the allowlist text against the `conc/*` rule set. Errors name
/// the offending line; an entry without a justification is an error —
/// undocumented exceptions are the failure mode this file exists to
/// prevent.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    cse_source::allow::parse_allowlist(text, rules::ALL)
}

/// A stale entry rendered as a deniable `conc/stale-allow` finding.
pub fn stale_finding(e: &AllowEntry) -> Finding {
    cse_source::allow::stale_finding(e, "qconc.allow", rules::STALE_ALLOW)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::rules;
    use cse_diag::Severity;

    fn finding(rule: &'static str, file: &str, func: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            func: func.to_string(),
            message: "m".to_string(),
            span: (0, 1),
            severity: Severity::Warning,
        }
    }

    #[test]
    fn conc_rules_parse_and_match() {
        let text = "\
# serve-layer counters
conc/relaxed-ordering crates/serve/src/server.rs bump monotonic counter, no ordering needed
conc/hot-path-lock    crates/serve/src/server.rs *    bounded O(1) sections
";
        let entries = parse_allowlist(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches(&finding(
            rules::RELAXED_ORDERING,
            "/root/repo/crates/serve/src/server.rs",
            "bump"
        )));
        assert!(entries[1].matches(&finding(
            rules::HOT_PATH_LOCK,
            "crates/serve/src/server.rs",
            "anything"
        )));
    }

    #[test]
    fn foreign_rule_families_are_rejected() {
        let err = parse_allowlist("audit/hot-panic a.rs f justified elsewhere").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn stale_entries_name_the_qconc_list() {
        let entries =
            parse_allowlist("conc/lock-order gone.rs vanished_fn refactored away").expect("parses");
        let filtered = apply_allowlist(vec![finding(rules::LOCK_ORDER, "live.rs", "f")], &entries);
        assert_eq!(filtered.denied.len(), 1);
        assert_eq!(filtered.stale.len(), 1);
        let s = stale_finding(&filtered.stale[0]);
        assert_eq!(s.rule, rules::STALE_ALLOW);
        assert_eq!(s.file, "qconc.allow");
        assert!(s.message.contains("vanished_fn"), "{}", s.message);
    }
}
