//! Feature-gated lock instrumentation: [`TrackedMutex`].
//!
//! The static rules in [`crate::discipline`] say where locks are *taken*;
//! this module measures what they *cost*. A `TrackedMutex` wraps
//! `std::sync::Mutex` and — when the `lock-stats` feature is on — records
//! per-site acquisition counts, contention counts (a `lock()` whose
//! initial `try_lock` would have blocked), and total hold time. With the
//! feature off every recording site compiles to nothing and the wrapper
//! is a plain poison-recovering mutex, so production builds pay nothing.
//!
//! The serve bench arm builds with `--features lock-stats` and emits these
//! counters into `BENCH_serve.json`, which is how the ROADMAP's
//! multi-worker contention claim stops being a guess: the report names
//! the exact lock site and its would-block count at each worker level.
//!
//! Condvar compatibility: `std::sync::Condvar::wait` consumes the real
//! `MutexGuard`, so [`TrackedGuard::wait_on`] hands the inner guard to the
//! condvar and accounts the wait as a hold-time *pause* — time parked on a
//! condvar is not time holding the lock.

#[cfg(feature = "lock-stats")]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
#[cfg(feature = "lock-stats")]
use std::time::Instant;

/// Point-in-time counters for one lock site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockSiteStats {
    /// Site label (static, e.g. `"serve.queue"`).
    pub site: &'static str,
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that would have blocked (another holder was inside).
    pub contended: u64,
    /// Total nanoseconds the lock was held (condvar waits excluded).
    pub hold_nanos: u64,
}

impl LockSiteStats {
    #[cfg(not(feature = "lock-stats"))]
    fn named(site: &'static str) -> Self {
        LockSiteStats {
            site,
            ..Default::default()
        }
    }
}

#[cfg(feature = "lock-stats")]
#[derive(Debug, Default)]
struct SiteCounters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    hold_nanos: AtomicU64,
}

/// A mutex that knows its name and (with `lock-stats`) counts its use.
///
/// Poison-recovering by construction — every caller in this repo uses the
/// `unwrap_or_else(|p| p.into_inner())` pattern, so the wrapper bakes it
/// in rather than re-spelling it at each site.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    site: &'static str,
    inner: Mutex<T>,
    #[cfg(feature = "lock-stats")]
    counters: SiteCounters,
}

impl<T> TrackedMutex<T> {
    pub fn new(site: &'static str, value: T) -> Self {
        TrackedMutex {
            site,
            inner: Mutex::new(value),
            #[cfg(feature = "lock-stats")]
            counters: SiteCounters::default(),
        }
    }

    pub fn site(&self) -> &'static str {
        self.site
    }

    /// Acquire, recovering from poisoning, recording contention and hold
    /// time when `lock-stats` is enabled.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        #[cfg(feature = "lock-stats")]
        {
            // A failed try_lock is the contention signal: somebody else
            // was inside. TryLockError::Poisoned counts as acquirable.
            let guard = match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    self.counters.contended.fetch_add(1, Ordering::Relaxed);
                    self.inner.lock().unwrap_or_else(|p| p.into_inner())
                }
            };
            self.counters.acquisitions.fetch_add(1, Ordering::Relaxed);
            TrackedGuard {
                owner: self,
                guard: Some(guard),
                held_since: Some(Instant::now()),
                accrued_nanos: 0,
            }
        }
        #[cfg(not(feature = "lock-stats"))]
        {
            TrackedGuard {
                guard: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
            }
        }
    }

    /// Current counters. With `lock-stats` off this is all zeros — callers
    /// (the bench emitter) can still compile against it unconditionally.
    pub fn stats(&self) -> LockSiteStats {
        #[cfg(feature = "lock-stats")]
        {
            LockSiteStats {
                site: self.site,
                acquisitions: self.counters.acquisitions.load(Ordering::Relaxed),
                contended: self.counters.contended.load(Ordering::Relaxed),
                hold_nanos: self.counters.hold_nanos.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "lock-stats"))]
        {
            LockSiteStats::named(self.site)
        }
    }

    /// Whether the build is actually recording (lets report emitters label
    /// zero counters as "not measured" instead of "uncontended").
    pub const fn recording() -> bool {
        cfg!(feature = "lock-stats")
    }
}

/// Free-function form of [`TrackedMutex::recording`] for callers with no
/// `T` at hand (report emitters, benches).
pub const fn lock_stats_recording() -> bool {
    cfg!(feature = "lock-stats")
}

/// Guard returned by [`TrackedMutex::lock`]. Derefs to the protected
/// value; dropping it releases the lock and banks the hold time.
pub struct TrackedGuard<'a, T> {
    #[cfg(feature = "lock-stats")]
    owner: &'a TrackedMutex<T>,
    #[cfg(feature = "lock-stats")]
    held_since: Option<Instant>,
    #[cfg(feature = "lock-stats")]
    accrued_nanos: u64,
    guard: Option<MutexGuard<'a, T>>,
}

impl<'a, T> TrackedGuard<'a, T> {
    /// Park on `cv`, releasing the lock; hold-time accounting pauses for
    /// the duration of the wait and resumes on wakeup.
    pub fn wait_on(mut self, cv: &Condvar) -> Self {
        #[cfg(feature = "lock-stats")]
        {
            if let Some(t) = self.held_since.take() {
                self.accrued_nanos += t.elapsed().as_nanos() as u64;
            }
        }
        let inner = self.guard.take().expect("guard present until drop");
        let inner = cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        self.guard = Some(inner);
        #[cfg(feature = "lock-stats")]
        {
            self.held_since = Some(Instant::now());
        }
        self
    }

    /// Timed variant of [`Self::wait_on`]; the bool is the condvar's
    /// timed-out flag.
    pub fn wait_timeout_on(mut self, cv: &Condvar, dur: std::time::Duration) -> (Self, bool) {
        #[cfg(feature = "lock-stats")]
        {
            if let Some(t) = self.held_since.take() {
                self.accrued_nanos += t.elapsed().as_nanos() as u64;
            }
        }
        let inner = self.guard.take().expect("guard present until drop");
        let (inner, timeout) = match cv.wait_timeout(inner, dur) {
            Ok((g, to)) => (g, to.timed_out()),
            Err(p) => {
                let (g, to) = p.into_inner();
                (g, to.timed_out())
            }
        };
        self.guard = Some(inner);
        #[cfg(feature = "lock-stats")]
        {
            self.held_since = Some(Instant::now());
        }
        (self, timeout)
    }
}

impl<'a, T> std::ops::Deref for TrackedGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<'a, T> std::ops::DerefMut for TrackedGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<'a, T> Drop for TrackedGuard<'a, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-stats")]
        {
            let mut nanos = self.accrued_nanos;
            if let Some(t) = self.held_since.take() {
                nanos += t.elapsed().as_nanos() as u64;
            }
            self.owner
                .counters
                .hold_nanos
                .fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_acquisitions_when_recording() {
        let m = TrackedMutex::new("test.site", 0u32);
        for _ in 0..5 {
            *m.lock() += 1;
        }
        assert_eq!(*m.lock(), 5);
        let s = m.stats();
        assert_eq!(s.site, "test.site");
        if TrackedMutex::<u32>::recording() {
            assert_eq!(s.acquisitions, 6);
        } else {
            assert_eq!(
                s,
                LockSiteStats {
                    site: "test.site",
                    ..Default::default()
                }
            );
        }
    }

    #[test]
    fn contention_is_observed_across_threads() {
        let m = Arc::new(TrackedMutex::new("test.contended", 0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut g = m.lock();
                    *g += 1;
                    // Stretch the critical section so try_lock collisions
                    // actually happen.
                    std::hint::black_box(&mut *g);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(*m.lock(), 800);
        if TrackedMutex::<u64>::recording() {
            let s = m.stats();
            assert_eq!(s.acquisitions, 801);
        }
    }

    #[test]
    fn condvar_wait_roundtrips_the_guard() {
        let m = Arc::new(TrackedMutex::new("test.cv", false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = g.wait_on(&cv2);
            }
            *g
        });
        // Let the waiter park, then flip the flag.
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().expect("waiter exits"));
    }

    #[test]
    fn poisoned_tracked_mutex_recovers() {
        let m = Arc::new(TrackedMutex::new("test.poison", 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock() recovers from poisoning");
    }

    #[test]
    fn timed_wait_reports_timeout() {
        let m = TrackedMutex::new("test.timeout", ());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, timed_out) = g.wait_timeout_on(&cv, std::time::Duration::from_millis(1));
        assert!(timed_out);
    }
}
