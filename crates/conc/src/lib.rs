//! # cse-conc — concurrency analysis for the serving layer
//!
//! Three coupled parts, one theme: make the serving layer's concurrency
//! *checkable* instead of vibes-based.
//!
//! 1. [`discipline`] + [`allow`] (on the shared [`cse_source`] lexer and
//!    scope tracker): a dependency-free static
//!    analyzer over the workspace's own source, enforcing the lock
//!    discipline the server relies on (no guard across an optimizer or
//!    engine call, global lock order, no locks in declared hot paths, no
//!    guards across `catch_unwind`, no unbounded channels, no unjustified
//!    `Ordering::Relaxed`). Findings are `cse_diag` diagnostics with
//!    stable rule ids; intentional exceptions live in a checked-in,
//!    justified allowlist whose stale entries are themselves findings.
//!    The `qconc` binary drives this as a CI gate (`qconc --deny`).
//!
//! 2. [`explore`] + [`models`]: a deterministic interleaving explorer
//!    ("shuttle-lite") plus step-function models of the bounded queue,
//!    the CSE circuit breaker and the cancel/deadline machinery. The
//!    exhaustive suites prove the ISSUE-level invariants — exactly-once
//!    delivery, single half-open probe, exactly one terminal outcome per
//!    request — over *every* interleaving up to a bound; the seeded
//!    sampling arm extends coverage beyond it.
//!
//! 3. [`track`]: `TrackedMutex`, feature-gated (`lock-stats`) lock
//!    instrumentation recording per-site acquisitions, contention and
//!    hold time, surfaced by the serve bench arm so `BENCH_serve.json`
//!    carries contention evidence instead of anecdotes.
//!
//! The three parts reinforce each other: the discipline rules guarantee
//! critical sections stay small and single-lock, which is the soundness
//! condition for modeling each locked operation as one atomic explorer
//! step, and the tracker measures that the sections stay cheap in practice.

pub mod allow;
pub mod discipline;
pub mod explore;
pub mod models;
pub mod track;

/// The Rust token scanner now lives in the shared source-analysis
/// foundation (`cse-source`), where `cse-audit` reuses it; this re-export
/// keeps the original `cse_conc::lexer` paths working.
pub use cse_source::lexer;

pub use allow::{apply_allowlist, parse_allowlist, stale_finding, AllowEntry, Filtered};
pub use discipline::{rules, scan_file, DisciplineConfig, Finding};
pub use explore::{explore, explore_with, replay, sample, Explored, Model, Violation};
pub use track::{lock_stats_recording, LockSiteStats, TrackedGuard, TrackedMutex};
