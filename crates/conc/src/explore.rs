//! The deterministic interleaving explorer ("shuttle-lite").
//!
//! The serving layer's stress tests throw seeded fault storms at the real
//! server and assert outcomes — probabilistic coverage of schedules. This
//! module turns that into *systematic* coverage: a concurrent structure is
//! modeled as a step-function state machine over a fixed set of logical
//! threads, and every interleaving of their atomic steps (up to a bound)
//! is enumerated by depth-first search. Each mutex-protected operation of
//! the real code is one atomic step in the model — sound for code whose
//! critical sections are single lock acquire/release pairs, which is
//! exactly the discipline `conc/` rules enforce.
//!
//! Invariants are checked in **every** reachable state, a final check runs
//! at the end of every complete schedule, and a state where some thread is
//! unfinished but nothing can step is reported as a deadlock (this is how
//! lost-wakeup bugs surface in a condvar model). Violations carry the
//! exact schedule (thread-id sequence) that produced them, so a failure
//! replays deterministically with [`replay`].
//!
//! Beyond the exhaustive bound, [`sample`] draws random schedules from the
//! testkit PRNG — the same seeded xorshift the fault-injection registry
//! uses — for cheap depth beyond what exhaustive enumeration can afford.

use cse_storage::testkit::TestRng;

/// A concurrent system modeled as logical threads over shared state.
///
/// `step(tid)` must only be called when `enabled(tid)` is true and
/// `done(tid)` is false; it performs one atomic transition. A thread that
/// is not done and not enabled is *blocked* (modeling a condvar wait or a
/// full/empty bounded queue).
pub trait Model: Clone {
    fn threads(&self) -> usize;
    fn enabled(&self, tid: usize) -> bool;
    fn done(&self, tid: usize) -> bool;
    fn step(&mut self, tid: usize);
    /// Checked in every reachable state.
    fn invariant(&self) -> Result<(), String>;
    /// Checked once per complete schedule (all threads done).
    fn final_check(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A failed exploration: what broke and the schedule that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub message: String,
    /// Thread ids in step order; replaying them from the initial state
    /// reproduces the violation deterministically.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [schedule: {:?}]", self.message, self.schedule)
    }
}

/// Exploration statistics (also the proof-of-coverage numbers the tests
/// assert on, so a refactor that silently shrinks the state space fails).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Explored {
    /// Complete schedules enumerated.
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
    /// Longest schedule seen.
    pub max_depth: usize,
}

/// Exhaustively enumerate every interleaving of `initial`'s threads.
///
/// `max_schedules` bounds the search: exceeding it is an error (the
/// exhaustive suites must remain exhaustive — if a model grows past its
/// budget, shrink the model, don't silently truncate coverage).
pub fn explore<M: Model>(initial: &M, max_schedules: u64) -> Result<Explored, Box<Violation>> {
    explore_with(initial, max_schedules, |_| {})
}

/// [`explore`] with an observer invoked on every *final* state (after its
/// `final_check` passed). Tests use this to assert reachability — e.g.
/// "some schedule sheds and some schedule admits everything" — on top of
/// the universally-checked invariants.
pub fn explore_with<M: Model>(
    initial: &M,
    max_schedules: u64,
    mut on_final: impl FnMut(&M),
) -> Result<Explored, Box<Violation>> {
    let mut stats = Explored::default();
    let mut schedule = Vec::new();
    dfs(
        initial,
        &mut schedule,
        &mut stats,
        max_schedules,
        &mut on_final,
    )?;
    Ok(stats)
}

fn dfs<M: Model>(
    state: &M,
    schedule: &mut Vec<usize>,
    stats: &mut Explored,
    max_schedules: u64,
    on_final: &mut impl FnMut(&M),
) -> Result<(), Box<Violation>> {
    if let Err(msg) = state.invariant() {
        return Err(Box::new(Violation {
            message: format!("invariant violated: {msg}"),
            schedule: schedule.clone(),
        }));
    }
    let runnable: Vec<usize> = (0..state.threads())
        .filter(|&t| !state.done(t) && state.enabled(t))
        .collect();
    if runnable.is_empty() {
        let all_done = (0..state.threads()).all(|t| state.done(t));
        if !all_done {
            let blocked: Vec<usize> = (0..state.threads()).filter(|&t| !state.done(t)).collect();
            return Err(Box::new(Violation {
                message: format!("deadlock: threads {blocked:?} blocked with nothing runnable"),
                schedule: schedule.clone(),
            }));
        }
        if let Err(msg) = state.final_check() {
            return Err(Box::new(Violation {
                message: format!("final check failed: {msg}"),
                schedule: schedule.clone(),
            }));
        }
        on_final(state);
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(schedule.len());
        if stats.schedules > max_schedules {
            return Err(Box::new(Violation {
                message: format!(
                    "schedule budget exceeded ({max_schedules}); shrink the model so the \
                     exhaustive bound stays exhaustive"
                ),
                schedule: schedule.clone(),
            }));
        }
        return Ok(());
    }
    for tid in runnable {
        let mut next = state.clone();
        next.step(tid);
        stats.steps += 1;
        schedule.push(tid);
        dfs(&next, schedule, stats, max_schedules, on_final)?;
        schedule.pop();
    }
    Ok(())
}

/// Replay one specific schedule (e.g. from a [`Violation`]) against a
/// fresh copy of the model, returning the final state. Panics only via
/// the model's own `step` preconditions if the schedule is not valid for
/// this model.
pub fn replay<M: Model>(initial: &M, schedule: &[usize]) -> Result<M, Box<Violation>> {
    let mut state = initial.clone();
    for (i, &tid) in schedule.iter().enumerate() {
        if let Err(msg) = state.invariant() {
            return Err(Box::new(Violation {
                message: format!("invariant violated during replay: {msg}"),
                schedule: schedule[..i].to_vec(),
            }));
        }
        if state.done(tid) || !state.enabled(tid) {
            return Err(Box::new(Violation {
                message: format!("schedule step {i}: thread {tid} is not runnable"),
                schedule: schedule[..=i].to_vec(),
            }));
        }
        state.step(tid);
    }
    Ok(state)
}

/// Randomly sample `n` schedules using the seeded testkit PRNG: the
/// probabilistic arm for models whose exhaustive bound is too small to be
/// interesting. Checks the same invariants, deadlock condition and final
/// checks as [`explore`].
pub fn sample<M: Model>(initial: &M, seed: u64, n: u64) -> Result<Explored, Box<Violation>> {
    let mut rng = TestRng::new(seed);
    let mut stats = Explored::default();
    for _ in 0..n {
        let mut state = initial.clone();
        let mut schedule = Vec::new();
        loop {
            if let Err(msg) = state.invariant() {
                return Err(Box::new(Violation {
                    message: format!("invariant violated: {msg}"),
                    schedule,
                }));
            }
            let runnable: Vec<usize> = (0..state.threads())
                .filter(|&t| !state.done(t) && state.enabled(t))
                .collect();
            if runnable.is_empty() {
                let all_done = (0..state.threads()).all(|t| state.done(t));
                if !all_done {
                    let blocked: Vec<usize> =
                        (0..state.threads()).filter(|&t| !state.done(t)).collect();
                    return Err(Box::new(Violation {
                        message: format!("deadlock: threads {blocked:?} blocked"),
                        schedule,
                    }));
                }
                if let Err(msg) = state.final_check() {
                    return Err(Box::new(Violation {
                        message: format!("final check failed: {msg}"),
                        schedule,
                    }));
                }
                break;
            }
            let tid = *rng.pick(&runnable);
            state.step(tid);
            stats.steps += 1;
            schedule.push(tid);
        }
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(schedule.len());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared "register" twice via a
    /// read-modify-write split into two steps — the textbook lost-update
    /// race. The explorer must find schedules where updates are lost, so
    /// the *final* assertion here is on the set of reachable outcomes.
    #[derive(Clone)]
    struct RmwRace {
        value: u32,
        /// Per thread: (loads done, stores done, stashed read).
        pc: [(u8, u8, u32); 2],
    }

    impl Model for RmwRace {
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, _tid: usize) -> bool {
            true
        }
        fn done(&self, tid: usize) -> bool {
            self.pc[tid].1 == 1
        }
        fn step(&mut self, tid: usize) {
            let (loads, stores, stash) = self.pc[tid];
            if loads == 0 {
                self.pc[tid] = (1, stores, self.value);
            } else {
                self.value = stash + 1;
                self.pc[tid] = (loads, 1, stash);
            }
        }
        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn explorer_finds_the_lost_update_interleaving() {
        // 2 threads x 2 steps: 4!/(2!2!) = 6 schedules.
        let init = RmwRace {
            value: 0,
            pc: [(0, 0, 0); 2],
        };
        let stats = explore(&init, 100).expect("no invariant to violate");
        assert_eq!(stats.schedules, 6);
        assert_eq!(stats.max_depth, 4);
        // Replay a racy schedule: both load before either stores.
        let racy = replay(&init, &[0, 1, 0, 1]).expect("valid schedule");
        assert_eq!(racy.value, 1, "one update lost");
        let serial = replay(&init, &[0, 0, 1, 1]).expect("valid schedule");
        assert_eq!(serial.value, 2);
    }

    /// A model that deadlocks: thread 0 waits for a flag only thread 1
    /// sets, but thread 1 waits for thread 0 first.
    #[derive(Clone, Debug)]
    struct Deadlock {
        a: bool,
        b: bool,
    }

    impl Model for Deadlock {
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, tid: usize) -> bool {
            if tid == 0 {
                self.b
            } else {
                self.a
            }
        }
        fn done(&self, _tid: usize) -> bool {
            self.a && self.b
        }
        fn step(&mut self, tid: usize) {
            if tid == 0 {
                self.a = true;
            } else {
                self.b = true;
            }
        }
        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlocks_are_reported_with_their_schedule() {
        let err = explore(&Deadlock { a: false, b: false }, 100).expect_err("must deadlock");
        assert!(err.message.contains("deadlock"), "{err}");
        assert!(err.schedule.is_empty(), "deadlocked in the initial state");
    }

    #[test]
    fn schedule_budget_is_a_hard_error() {
        let init = RmwRace {
            value: 0,
            pc: [(0, 0, 0); 2],
        };
        let err = explore(&init, 3).expect_err("6 schedules > budget of 3");
        assert!(err.message.contains("budget"), "{err}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let init = RmwRace {
            value: 0,
            pc: [(0, 0, 0); 2],
        };
        let a = sample(&init, 7, 50).expect("clean");
        let b = sample(&init, 7, 50).expect("clean");
        assert_eq!(a, b, "same seed, same walk");
        assert_eq!(a.schedules, 50);
    }

    #[test]
    fn replay_rejects_invalid_schedules() {
        let init = Deadlock { a: false, b: false };
        let err = replay(&init, &[0]).expect_err("thread 0 is blocked initially");
        assert!(err.message.contains("not runnable"), "{err}");
    }
}
