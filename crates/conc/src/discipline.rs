//! The lock-discipline analyzer.
//!
//! A token-level, intra-procedural scanner over Rust source that enforces
//! the concurrency conventions the serving layer depends on. It is
//! deliberately *not* a type checker: it tracks brace scope, `let`
//! bindings of guard-producing calls, and a declared vocabulary of lock
//! acquirers, entry points and hot-path functions. That is enough to catch
//! the real regressions (a guard held across planning, a lock sneaking
//! into a row loop, an undisciplined `Ordering::Relaxed`) without any
//! dependency on `syn` — the repo builds offline.
//!
//! ## Rules
//!
//! | id | fires when |
//! |---|---|
//! | `conc/guard-across-call`   | a live guard spans a call into an optimizer/engine entry point |
//! | `conc/lock-order`          | a lock is acquired out of the declared global order (or re-acquired while held) |
//! | `conc/hot-path-lock`       | any lock acquisition inside a declared hot-path function |
//! | `conc/guard-across-unwind` | a live guard spans a `catch_unwind` call |
//! | `conc/unbounded-channel`   | `mpsc::channel()` (unbounded) instead of `sync_channel` |
//! | `conc/relaxed-ordering`    | `Ordering::Relaxed` anywhere (allowlist the justified ones) |
//!
//! Intentional exceptions live in a checked-in allowlist
//! ([`crate::allow`]) keyed by `(rule, file suffix, function)` with a
//! mandatory justification, so `qconc --deny` stays a clean CI gate while
//! every exception remains visible and reviewed.
//!
//! ## Known approximations
//!
//! - Guard liveness is lexical: a `let` guard lives to the end of its
//!   block (or an explicit `drop(g)`), a temporary to the end of its
//!   statement. Non-lexical lifetimes shortening a guard are ignored —
//!   the analyzer over-approximates, which is the safe direction.
//! - The analysis is intra-procedural: a helper that acquires and returns
//!   a guard is modeled by naming the helper as an acquirer (`stats`,
//!   `inflight`), not by interprocedural inference.

use cse_diag::Severity;
use cse_source::lexer::{lex, Tok, TokKind};
use cse_source::scope::{ScopeEvent, ScopeTracker};

pub use cse_source::finding::Finding;

pub mod rules {
    pub const GUARD_ACROSS_CALL: &str = "conc/guard-across-call";
    pub const LOCK_ORDER: &str = "conc/lock-order";
    pub const HOT_PATH_LOCK: &str = "conc/hot-path-lock";
    pub const GUARD_ACROSS_UNWIND: &str = "conc/guard-across-unwind";
    pub const UNBOUNDED_CHANNEL: &str = "conc/unbounded-channel";
    pub const RELAXED_ORDERING: &str = "conc/relaxed-ordering";
    pub const STALE_ALLOW: &str = "conc/stale-allow";

    /// Every rule the analyzer can emit (stable order, used by reports).
    pub const ALL: &[&str] = &[
        GUARD_ACROSS_CALL,
        LOCK_ORDER,
        HOT_PATH_LOCK,
        GUARD_ACROSS_UNWIND,
        UNBOUNDED_CHANNEL,
        RELAXED_ORDERING,
        STALE_ALLOW,
    ];
}

/// How an acquirer call names the lock it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockName {
    /// `x.recv.lock()` acquires the lock named after the receiver field
    /// (`recv`).
    Receiver,
    /// The acquirer always takes one specific lock (`inflight()` →
    /// `inflight`).
    Fixed(&'static str),
}

/// One declared lock-acquiring function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquirer {
    /// Method / function name whose call takes the lock.
    pub name: &'static str,
    pub lock: LockName,
    /// Whether the call *returns* the guard (`lock()`, `inflight()`), so
    /// the caller holds it per normal binding/temporary scope — versus an
    /// internal acquisition (`should_fail()`) released before the call
    /// returns. Internal acquirers still count for `conc/hot-path-lock`
    /// and are checked against held guards for `conc/lock-order`, but
    /// leave no guard live in the caller.
    pub returns_guard: bool,
}

impl Acquirer {
    pub const fn guard(name: &'static str, lock: LockName) -> Self {
        Acquirer {
            name,
            lock,
            returns_guard: true,
        }
    }

    pub const fn internal(name: &'static str, lock: LockName) -> Self {
        Acquirer {
            name,
            lock,
            returns_guard: false,
        }
    }
}

/// The analyzer's declared vocabulary. [`DisciplineConfig::repo_default`]
/// encodes this repository's conventions; tests build synthetic configs.
#[derive(Debug, Clone)]
pub struct DisciplineConfig {
    /// Functions whose call acquires a lock.
    pub acquirers: Vec<Acquirer>,
    /// Global acquisition order. Acquiring locks[i] while holding locks[j]
    /// with i < j violates `conc/lock-order`. Locks not listed are exempt.
    pub lock_order: Vec<&'static str>,
    /// Functions considered hot paths: any acquisition inside fires
    /// `conc/hot-path-lock`.
    pub hot_paths: Vec<&'static str>,
    /// Optimizer / engine entry points that must never run under a guard.
    pub entry_points: Vec<&'static str>,
}

impl DisciplineConfig {
    /// The repository's declared discipline:
    ///
    /// - acquirers: `.lock()` (named by receiver), the serve layer's
    ///   `inflight()` helper, the stats helper (historical — the stats
    ///   mutex is now atomic counters, the rule stays armed against
    ///   regressions), and `should_fail` (the failpoint registry locks
    ///   internally).
    /// - lock order: `stats` before `inflight` (a worker updates counters
    ///   only after leaving the inflight table).
    /// - hot paths: the interpreter's operator/row loops, the optimizer's
    ///   candidate/enumeration phases, and the per-request serving path.
    /// - entry points: planning and execution — holding any serve-layer
    ///   guard across them is the contention bug class that flattened
    ///   multi-worker throughput (ROADMAP item 1).
    pub fn repo_default() -> Self {
        DisciplineConfig {
            acquirers: vec![
                Acquirer::guard("lock", LockName::Receiver),
                Acquirer::guard("stats", LockName::Fixed("stats")),
                Acquirer::guard("inflight", LockName::Fixed("inflight")),
                Acquirer::internal("should_fail", LockName::Fixed("failpoints")),
            ],
            lock_order: vec!["stats", "inflight"],
            hot_paths: vec![
                // cse-exec: interpreter operator and row loops.
                "run_inner",
                "deliver",
                "aggregate",
                "ensure_spool",
                "eval",
                "accepts",
                // cse-core: the CSE phase's candidate and enumeration hot
                // loops.
                "cse_phase",
                "run_generation",
                "create_candidates",
                "generate_for_set",
                "choose_best",
                // cse-serve: the per-request path every worker runs.
                "submit_with_deadline",
                "worker_loop",
                "watchdog_loop",
                "process",
                "run_attempt",
                "run_attempt_inner",
            ],
            entry_points: vec![
                "optimize_sql",
                "optimize_plan",
                "optimize_plan_with_facts",
                "execute",
                "execute_strict",
                "execute_cancelable",
                "execute_governed",
                "lint_batch",
            ],
        }
    }
}

/// A guard the scanner currently considers live.
#[derive(Debug, Clone)]
struct Guard {
    /// `let` binding name; `None` for a statement temporary.
    binding: Option<String>,
    lock: String,
    /// Brace depth at the binding site: the guard dies when the scanner
    /// leaves that block.
    depth: usize,
    /// Statement temporaries additionally die at the next `;` at their
    /// depth.
    temp: bool,
}

/// Scan one file's source, returning findings in byte order.
pub fn scan_file(file: &str, src: &str, cfg: &DisciplineConfig) -> Vec<Finding> {
    let toks = lex(src);
    let mut out: Vec<Finding> = Vec::new();

    let mut scopes = ScopeTracker::new();
    let mut guards: Vec<Guard> = Vec::new();
    // `let` statement tracking: Some(binding) once `let [mut] name` has
    // been seen in the current statement.
    let mut stmt_let: Option<String> = None;
    let mut awaiting_let_binding = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match scopes.feed(&toks, i) {
            ScopeEvent::Enter(_) => {
                stmt_let = None;
                awaiting_let_binding = false;
            }
            ScopeEvent::Exit => {
                guards.retain(|g| g.depth <= scopes.depth());
                stmt_let = None;
                awaiting_let_binding = false;
            }
            ScopeEvent::Stmt => {
                guards.retain(|g| !(g.temp && g.depth == scopes.depth()));
                stmt_let = None;
                awaiting_let_binding = false;
            }
            ScopeEvent::FnName => {}
            ScopeEvent::Other => {
                if let TokKind::Ident(name) = &t.kind {
                    scan_ident(
                        file,
                        cfg,
                        &toks,
                        i,
                        name,
                        &scopes,
                        &mut guards,
                        &mut stmt_let,
                        &mut awaiting_let_binding,
                        &mut out,
                    );
                }
            }
        }
        i += 1;
    }
    out
}

/// Rule logic for one identifier token (everything that is not scope
/// bookkeeping). Split out of [`scan_file`] so the walk stays readable.
#[allow(clippy::too_many_arguments)]
fn scan_ident(
    file: &str,
    cfg: &DisciplineConfig,
    toks: &[Tok],
    i: usize,
    name: &str,
    scopes: &ScopeTracker,
    guards: &mut Vec<Guard>,
    stmt_let: &mut Option<String>,
    awaiting_let_binding: &mut bool,
    out: &mut Vec<Finding>,
) {
    let t = &toks[i];
    let depth = scopes.depth();
    let next_is_paren = toks.get(i + 1).is_some_and(|n| n.is_punct(b'('));

    if name == "let" {
        *awaiting_let_binding = true;
    } else if *awaiting_let_binding {
        if name != "mut" {
            *stmt_let = Some(name.to_string());
            *awaiting_let_binding = false;
        }
    } else if name == "drop" && next_is_paren {
        if let Some(TokKind::Ident(dropped)) = toks.get(i + 2).map(|t| &t.kind) {
            if toks.get(i + 3).is_some_and(|t| t.is_punct(b')')) {
                guards.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
            }
        }
    } else if name == "catch_unwind" && !guards.is_empty() {
        out.push(Finding {
            rule: rules::GUARD_ACROSS_UNWIND,
            file: file.to_string(),
            func: scopes.current_fn(),
            message: format!(
                "guard on `{}` held across catch_unwind; a panic here \
                 poisons the lock while unwinding through foreign frames",
                held_locks(guards)
            ),
            span: (t.start, t.end),
            severity: Severity::Error,
        });
    } else if name == "Relaxed"
        && i >= 3
        && toks[i - 1].is_punct(b':')
        && toks[i - 2].is_punct(b':')
        && toks[i - 3].is_ident("Ordering")
    {
        out.push(Finding {
            rule: rules::RELAXED_ORDERING,
            file: file.to_string(),
            func: scopes.current_fn(),
            message: "Ordering::Relaxed requires an allowlist entry justifying why \
                      no happens-before edge is needed"
                .to_string(),
            span: (t.start, t.end),
            severity: Severity::Warning,
        });
    } else if name == "channel"
        && next_is_paren
        && i >= 3
        && toks[i - 1].is_punct(b':')
        && toks[i - 2].is_punct(b':')
        && toks[i - 3].is_ident("mpsc")
    {
        out.push(Finding {
            rule: rules::UNBOUNDED_CHANNEL,
            file: file.to_string(),
            func: scopes.current_fn(),
            message: "mpsc::channel() is unbounded; use sync_channel with an \
                      explicit capacity so backpressure is a design decision"
                .to_string(),
            span: (t.start, t.end),
            severity: Severity::Warning,
        });
    } else if next_is_paren && cfg.entry_points.contains(&name) {
        if !guards.is_empty() {
            out.push(Finding {
                rule: rules::GUARD_ACROSS_CALL,
                file: file.to_string(),
                func: scopes.current_fn(),
                message: format!(
                    "guard on `{}` held across call to `{name}`; planning and \
                     execution must never run under a serve-layer lock",
                    held_locks(guards)
                ),
                span: (t.start, t.end),
                severity: Severity::Error,
            });
        }
    } else if next_is_paren {
        if let Some(acq) = cfg.acquirers.iter().find(|a| a.name == name) {
            let lock = match &acq.lock {
                LockName::Fixed(l) => (*l).to_string(),
                LockName::Receiver => receiver_name(toks, i),
            };
            let func = scopes.current_fn();
            if cfg.hot_paths.iter().any(|h| *h == func) {
                out.push(Finding {
                    rule: rules::HOT_PATH_LOCK,
                    file: file.to_string(),
                    func: func.clone(),
                    message: format!(
                        "lock `{lock}` acquired inside hot-path function \
                         `{func}`; hot loops must stay lock-free"
                    ),
                    span: (t.start, t.end),
                    severity: Severity::Warning,
                });
            }
            for g in guards.iter() {
                if g.lock == lock {
                    out.push(Finding {
                        rule: rules::LOCK_ORDER,
                        file: file.to_string(),
                        func: func.clone(),
                        message: format!(
                            "lock `{lock}` re-acquired while already held \
                             (self-deadlock on a non-reentrant mutex)"
                        ),
                        span: (t.start, t.end),
                        severity: Severity::Error,
                    });
                } else if let (Some(ni), Some(hi)) = (
                    cfg.lock_order.iter().position(|l| *l == lock),
                    cfg.lock_order.iter().position(|l| *l == g.lock),
                ) {
                    if ni < hi {
                        out.push(Finding {
                            rule: rules::LOCK_ORDER,
                            file: file.to_string(),
                            func: func.clone(),
                            message: format!(
                                "lock `{lock}` acquired while holding `{}`; \
                                 declared order is {}",
                                g.lock,
                                cfg.lock_order.join(" -> ")
                            ),
                            span: (t.start, t.end),
                            severity: Severity::Error,
                        });
                    }
                }
            }
            // Internal acquirers release before returning, so no guard
            // survives the call in the caller.
            if acq.returns_guard {
                guards.push(Guard {
                    binding: stmt_let.clone(),
                    lock,
                    depth,
                    temp: stmt_let.is_none(),
                });
            }
        }
    }
}

/// Comma-joined names of the currently held locks (diagnostic text).
fn held_locks(guards: &[Guard]) -> String {
    let mut names: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
    names.dedup();
    names.join("`, `")
}

/// For `a.b.lock()`, the receiver field naming the lock (`b`). Falls back
/// to `<unknown>` when the shape is not `ident . acquirer`.
fn receiver_name(toks: &[Tok], acquirer_idx: usize) -> String {
    if acquirer_idx >= 2 && toks[acquirer_idx - 1].is_punct(b'.') {
        if let Some(name) = toks[acquirer_idx - 2].ident() {
            return name.to_string();
        }
    }
    "<unknown>".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DisciplineConfig {
        DisciplineConfig {
            acquirers: vec![
                Acquirer::guard("lock", LockName::Receiver),
                Acquirer::guard("stats", LockName::Fixed("stats")),
                Acquirer::guard("inflight", LockName::Fixed("inflight")),
                Acquirer::internal("try_fail", LockName::Fixed("failpoints")),
            ],
            lock_order: vec!["stats", "inflight"],
            hot_paths: vec!["hot"],
            entry_points: vec!["optimize_sql", "execute_strict"],
        }
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        scan_file("test.rs", src, &cfg())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn guard_across_call_fires_on_let_bound_guard() {
        let src = r#"
            fn serve(&self) {
                let g = self.state.lock();
                let plan = optimize_sql(cat, sql, cfg);
                g.record(plan);
            }
        "#;
        assert_eq!(rules_of(src), vec![rules::GUARD_ACROSS_CALL]);
    }

    #[test]
    fn dropping_the_guard_clears_the_finding() {
        let src = r#"
            fn serve(&self) {
                let g = self.state.lock();
                drop(g);
                let plan = optimize_sql(cat, sql, cfg);
            }
        "#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn block_scoped_guard_does_not_leak() {
        let src = r#"
            fn serve(&self) {
                {
                    let g = self.state.lock();
                    g.touch();
                }
                let plan = optimize_sql(cat, sql, cfg);
            }
        "#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = r#"
            fn serve(&self) {
                self.state.lock().bump();
                execute_strict(plan);
            }
        "#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn temporary_spanning_a_call_in_one_statement_fires() {
        let src = r#"
            fn serve(&self) {
                self.state.lock().record(optimize_sql(cat, sql, cfg));
            }
        "#;
        assert_eq!(rules_of(src), vec![rules::GUARD_ACROSS_CALL]);
    }

    #[test]
    fn lock_order_violation_and_reacquisition() {
        let src = r#"
            fn a(&self) {
                let i = self.inflight();
                let s = self.stats();
            }
            fn b(&self) {
                let s = self.stats();
                let i = self.inflight();
            }
            fn c(&self) {
                let s = self.stats();
                let s2 = self.stats();
            }
        "#;
        let found = scan_file("test.rs", src, &cfg());
        let in_fn = |f: &str| -> Vec<&'static str> {
            found
                .iter()
                .filter(|x| x.func == f)
                .map(|x| x.rule)
                .collect()
        };
        assert_eq!(in_fn("a"), vec![rules::LOCK_ORDER], "inflight then stats");
        assert!(in_fn("b").is_empty(), "declared order is fine");
        assert_eq!(in_fn("c"), vec![rules::LOCK_ORDER], "re-acquisition");
    }

    #[test]
    fn internal_acquirer_leaves_no_guard_live() {
        // `try_fail` locks internally and returns a bool; two calls in a
        // row (or a call under a let binding) must not read as the
        // failpoints lock being held across the second call. This was a
        // real false positive against a govern test before acquirers
        // distinguished guard-returning from internal acquisition.
        let src = r#"
            fn f(&self) {
                let a = self.reg.try_fail("x");
                let b = self.reg.try_fail("x");
                assert!(a != b);
            }
        "#;
        assert!(scan_file("test.rs", src, &cfg()).is_empty());
        // But an internal acquisition in a hot path still fires.
        let hot = r#"
            fn hot(&self) { let a = self.reg.try_fail("x"); }
        "#;
        let found = scan_file("test.rs", hot, &cfg());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, rules::HOT_PATH_LOCK);
    }

    #[test]
    fn hot_path_lock_fires_only_in_hot_functions() {
        let src = r#"
            fn hot(&self) { let g = self.state.lock(); }
            fn cold(&self) { let g = self.state.lock(); }
        "#;
        let found = scan_file("test.rs", src, &cfg());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, rules::HOT_PATH_LOCK);
        assert_eq!(found[0].func, "hot");
    }

    #[test]
    fn guard_across_unwind() {
        let src = r#"
            fn serve(&self) {
                let g = self.state.lock();
                let r = catch_unwind(AssertUnwindSafe(|| work()));
            }
        "#;
        assert_eq!(rules_of(src), vec![rules::GUARD_ACROSS_UNWIND]);
    }

    #[test]
    fn unbounded_channel_and_relaxed_ordering() {
        let src = r#"
            fn wire() {
                let (tx, rx) = mpsc::channel();
                let (tx2, rx2) = mpsc::sync_channel(1);
                let id = next.fetch_add(1, Ordering::Relaxed);
                let ok = flag.load(Ordering::Acquire);
            }
        "#;
        assert_eq!(
            rules_of(src),
            vec![rules::UNBOUNDED_CHANNEL, rules::RELAXED_ORDERING]
        );
    }

    #[test]
    fn fn_definitions_are_not_calls() {
        // `fn execute(...)` defines an entry point; it must not count as a
        // call, and `fn lock(...)` must not count as an acquisition.
        let src = r#"
            fn execute(&self, plan: &Plan) { run(plan); }
            fn lock(&self) -> Guard { self.inner.lock() }
        "#;
        let found = scan_file("test.rs", src, &cfg());
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn function_attribution_is_innermost() {
        let src = r#"
            fn outer(&self) {
                fn inner_helper(s: &S) { let g = s.state.lock(); }
                let plan = optimize_sql(cat, sql, cfg);
            }
        "#;
        // The guard inside inner_helper dies with its block, so the
        // optimize_sql call in outer is clean.
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            fn doc() {
                // let g = self.stats(); optimize_sql(...)
                let s = "Ordering::Relaxed mpsc::channel()";
            }
        "#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn receiver_naming() {
        let src = r#"
            fn f(&self) {
                let a = self.queue.lock();
                let b = self.breaker.lock();
            }
        "#;
        let cfg = DisciplineConfig {
            acquirers: vec![Acquirer::guard("lock", LockName::Receiver)],
            lock_order: vec!["queue", "breaker"],
            hot_paths: vec![],
            entry_points: vec![],
        };
        // queue -> breaker matches the declared order: clean.
        assert!(scan_file("t.rs", src, &cfg).is_empty());
        let bad = r#"
            fn f(&self) {
                let b = self.breaker.lock();
                let a = self.queue.lock();
            }
        "#;
        let found = scan_file("t.rs", bad, &cfg);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, rules::LOCK_ORDER);
        assert!(found[0].message.contains("queue"), "{}", found[0].message);
    }
}
