//! Logical operators as stored in the memo, and group expressions.

use cse_algebra::{AggExpr, ColRef, RelId, Scalar, SortOrder};
use std::fmt;

/// A memo-resident logical operator. Children are group references held by
/// the enclosing [`GroupExpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Base-table (or delta-table) instance scan.
    Get { rel: RelId },
    /// Row filter (1 child).
    Filter { pred: Scalar },
    /// Inner join (2 children); `pred` is TRUE for a cross join.
    Join { pred: Scalar },
    /// Group-by + aggregation (1 child). `out` is the synthetic rel of the
    /// aggregate outputs; alternative aggregate expressions in the same
    /// group (e.g. eager-aggregation rewrites) share the same `out`.
    Aggregate {
        keys: Vec<ColRef>,
        aggs: Vec<AggExpr>,
        out: RelId,
    },
    /// Final named projection (1 child).
    Project { exprs: Vec<(String, Scalar)> },
    /// Result ordering (1 child).
    Sort { keys: Vec<(Scalar, SortOrder)> },
    /// Dummy root tying batch statements together (n children).
    Batch,
}

impl Op {
    pub fn arity(&self) -> usize {
        match self {
            Op::Get { .. } => 0,
            Op::Filter { .. } | Op::Aggregate { .. } | Op::Project { .. } | Op::Sort { .. } => 1,
            Op::Join { .. } => 2,
            Op::Batch => usize::MAX, // variable
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Op::Get { .. } => "Get",
            Op::Filter { .. } => "Filter",
            Op::Join { .. } => "Join",
            Op::Aggregate { .. } => "Aggregate",
            Op::Project { .. } => "Project",
            Op::Sort { .. } => "Sort",
            Op::Batch => "Batch",
        }
    }
}

/// Identifier of a group in the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Identifier of a group expression in the memo arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupExprId(pub u32);

/// A single operator referencing child groups: the memo's unit of sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupExpr {
    pub op: Op,
    pub children: Vec<GroupId>,
}

impl GroupExpr {
    pub fn new(op: Op, children: Vec<GroupId>) -> Self {
        GroupExpr { op, children }
    }

    /// Stable dedup key. `Op` contains f64 literals (via `Value`), which
    /// have `PartialEq` but not `Eq`/`Hash`; keying on the debug rendering
    /// of the normalized payload sidesteps that while remaining
    /// deterministic.
    pub fn dedup_key(&self) -> String {
        format!("{:?}|{:?}", self.op, self.children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::RelId;

    #[test]
    fn arity() {
        assert_eq!(Op::Get { rel: RelId(0) }.arity(), 0);
        assert_eq!(
            Op::Join {
                pred: Scalar::true_()
            }
            .arity(),
            2
        );
    }

    #[test]
    fn dedup_key_distinguishes_children() {
        let a = GroupExpr::new(
            Op::Join {
                pred: Scalar::true_(),
            },
            vec![GroupId(0), GroupId(1)],
        );
        let b = GroupExpr::new(
            Op::Join {
                pred: Scalar::true_(),
            },
            vec![GroupId(1), GroupId(0)],
        );
        assert_ne!(a.dedup_key(), b.dedup_key());
        let a2 = a.clone();
        assert_eq!(a.dedup_key(), a2.dedup_key());
    }
}
