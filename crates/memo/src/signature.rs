//! Table signatures (paper §3).
//!
//! A table signature `S_e = [G_e; T_e]` exists iff `e` is an SPJG
//! expression: `G_e` says whether a group-by is present, `T_e` is the
//! multiset of source tables. The rules of the paper's Figure 2 compute the
//! signature of an operator from its inputs' signatures alone, so the memo
//! computes them incrementally as groups are created — the "extremely
//! lightweight" property the paper requires.
//!
//! Delta tables (view maintenance, §6.4) are included with a `Δ` prefix so
//! a delta-driven expression never shares a signature with a base-table
//! expression over the same table.

use crate::op::Op;
use cse_algebra::{PlanContext, RelKind};
use std::fmt;

/// `[G; {tables}]` — tables kept as a *sorted multiset* of names so that
/// self-joins are distinguished from single references.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableSignature {
    pub grouped: bool,
    pub tables: Vec<String>,
}

impl TableSignature {
    fn leaf(table: String) -> Self {
        TableSignature {
            grouped: false,
            tables: vec![table],
        }
    }

    /// Number of source tables (with multiplicity).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Is `self`'s table multiset a sub-multiset of `other`'s? Used by the
    /// containment heuristic (paper Definition 4.2, first condition).
    pub fn tables_subset_of(&self, other: &TableSignature) -> bool {
        let mut it = other.tables.iter();
        'outer: for t in &self.tables {
            for o in it.by_ref() {
                match o.as_str().cmp(t.as_str()) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

impl fmt::Display for TableSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}; {{{}}}]",
            if self.grouped { "T" } else { "F" },
            self.tables.join(",")
        )
    }
}

/// Figure 2's rules: compute the signature of `op` from its children's
/// signatures. `None` means "no signature" (S_e = ∅): the expression is not
/// SPJG, or a child already lost its signature.
pub fn compute_signature(
    ctx: &PlanContext,
    op: &Op,
    children: &[Option<&TableSignature>],
) -> Option<TableSignature> {
    match op {
        Op::Get { rel } => {
            let info = ctx.rel(*rel);
            let name = match info.kind {
                RelKind::Base => info.name.clone(),
                RelKind::Delta => format!("Δ{}", info.name),
                // Aggregate outputs never appear as Get leaves.
                RelKind::AggOutput => return None,
            };
            Some(TableSignature::leaf(name))
        }
        // Select and Project preserve the signature only below a group-by.
        Op::Filter { .. } | Op::Project { .. } => {
            let c = children.first().copied().flatten()?;
            if c.grouped {
                None
            } else {
                Some(c.clone())
            }
        }
        Op::Join { .. } => {
            let l = children.first().copied().flatten()?;
            let r = children.get(1).copied().flatten()?;
            if l.grouped || r.grouped {
                return None;
            }
            let mut tables = Vec::with_capacity(l.tables.len() + r.tables.len());
            tables.extend(l.tables.iter().cloned());
            tables.extend(r.tables.iter().cloned());
            tables.sort();
            Some(TableSignature {
                grouped: false,
                tables,
            })
        }
        Op::Aggregate { .. } => {
            let c = children.first().copied().flatten()?;
            if c.grouped {
                // At most one group-by in an SPJG expression.
                None
            } else {
                Some(TableSignature {
                    grouped: true,
                    tables: c.tables.clone(),
                })
            }
        }
        Op::Sort { .. } | Op::Batch => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::Scalar;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn ctx_with(tables: &[&str]) -> (PlanContext, Vec<cse_algebra::RelId>) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        let rels = tables
            .iter()
            .map(|t| ctx.add_base_rel(*t, *t, schema.clone(), b))
            .collect();
        (ctx, rels)
    }

    #[test]
    fn leaf_and_join() {
        let (ctx, rels) = ctx_with(&["b_tab", "a_tab"]);
        let sa = compute_signature(&ctx, &Op::Get { rel: rels[0] }, &[]).unwrap();
        let sb = compute_signature(&ctx, &Op::Get { rel: rels[1] }, &[]).unwrap();
        let j = compute_signature(
            &ctx,
            &Op::Join {
                pred: Scalar::true_(),
            },
            &[Some(&sa), Some(&sb)],
        )
        .unwrap();
        assert_eq!(j.tables, vec!["a_tab".to_string(), "b_tab".to_string()]);
        assert!(!j.grouped);
    }

    #[test]
    fn filter_preserves_below_groupby_only() {
        let (ctx, rels) = ctx_with(&["t"]);
        let s = compute_signature(&ctx, &Op::Get { rel: rels[0] }, &[]).unwrap();
        let f = compute_signature(
            &ctx,
            &Op::Filter {
                pred: Scalar::true_(),
            },
            &[Some(&s)],
        )
        .unwrap();
        assert_eq!(f, s);
        let grouped = TableSignature {
            grouped: true,
            tables: vec!["t".into()],
        };
        assert!(compute_signature(
            &ctx,
            &Op::Filter {
                pred: Scalar::true_()
            },
            &[Some(&grouped)]
        )
        .is_none());
    }

    #[test]
    fn aggregate_sets_flag_once() {
        let (ctx, rels) = ctx_with(&["t"]);
        let s = compute_signature(&ctx, &Op::Get { rel: rels[0] }, &[]).unwrap();
        let agg_op = Op::Aggregate {
            keys: vec![],
            aggs: vec![],
            out: cse_algebra::RelId(99),
        };
        let g = compute_signature(&ctx, &agg_op, &[Some(&s)]).unwrap();
        assert!(g.grouped);
        // Second aggregate on top: no signature.
        assert!(compute_signature(&ctx, &agg_op, &[Some(&g)]).is_none());
    }

    #[test]
    fn self_join_multiset() {
        let (ctx, rels) = ctx_with(&["t", "t"]);
        let sa = compute_signature(&ctx, &Op::Get { rel: rels[0] }, &[]).unwrap();
        let sb = compute_signature(&ctx, &Op::Get { rel: rels[1] }, &[]).unwrap();
        let j = compute_signature(
            &ctx,
            &Op::Join {
                pred: Scalar::true_(),
            },
            &[Some(&sa), Some(&sb)],
        )
        .unwrap();
        assert_eq!(j.tables, vec!["t".to_string(), "t".to_string()]);
        // {t} is a sub-multiset of {t,t} but not vice versa.
        assert!(sa.tables_subset_of(&j));
        assert!(!j.tables_subset_of(&sa));
    }

    #[test]
    fn subset_checks() {
        let a = TableSignature {
            grouped: false,
            tables: vec!["a".into(), "b".into()],
        };
        let abc = TableSignature {
            grouped: false,
            tables: vec!["a".into(), "b".into(), "c".into()],
        };
        assert!(a.tables_subset_of(&abc));
        assert!(!abc.tables_subset_of(&a));
        assert!(a.tables_subset_of(&a));
    }

    #[test]
    fn display() {
        let s = TableSignature {
            grouped: true,
            tables: vec!["a".into(), "b".into()],
        };
        assert_eq!(s.to_string(), "[T; {a,b}]");
    }
}
