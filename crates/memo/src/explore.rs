//! Exploration: transformation rules applied to memo expressions.
//!
//! Three rules suffice for the paper's workloads: join commutativity, join
//! associativity (with predicate redistribution over rel sets, restricted
//! to connected join orders), and eager aggregation (pre-aggregating one
//! join input — the source of the paper's `E4`/`E5`-style pre-aggregation
//! candidates in §6.1).

use crate::memo::Memo;
use crate::op::{GroupExpr, GroupExprId, GroupId, Op};
use cse_algebra::{AggExpr, AggFunc, ColRef, RelSet, Scalar};

/// Exploration limits and switches.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Hard cap on memo expressions (exploration stops when exceeded).
    pub max_gexprs: usize,
    /// Enable the eager-aggregation rule.
    pub enable_eager_agg: bool,
    /// Largest table count of the pre-aggregated join side. Pre-aggregates
    /// over wide subsets explode the memo without ever winning (their
    /// group-bys are huge); the paper's E4/E5-style candidates involve 2-3
    /// tables.
    pub max_eager_agg_rels: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_gexprs: 200_000,
            enable_eager_agg: true,
            max_eager_agg_rels: 3,
        }
    }
}

/// Exhaustively apply the rules until fixpoint (or the expression cap).
/// Returns the number of expressions added.
pub fn explore(memo: &mut Memo, cfg: &ExploreConfig) -> usize {
    let start = memo.num_gexprs();
    let mut i = 0usize;
    while i < memo.num_gexprs() {
        if memo.num_gexprs() >= cfg.max_gexprs {
            break;
        }
        let id = GroupExprId(i as u32);
        apply_join_commute(memo, id);
        apply_join_assoc(memo, id);
        if cfg.enable_eager_agg {
            apply_eager_agg(memo, id, cfg.max_eager_agg_rels);
        }
        i += 1;
    }
    memo.num_gexprs() - start
}

/// Join(p)[l, r] → Join(p)[r, l].
fn apply_join_commute(memo: &mut Memo, id: GroupExprId) {
    let e = memo.gexpr(id);
    if let Op::Join { pred } = &e.op {
        let commuted = GroupExpr::new(
            Op::Join { pred: pred.clone() },
            vec![e.children[1], e.children[0]],
        );
        let group = memo.group_of(id);
        memo.add_gexpr(commuted, Some(group));
    }
}

/// (ll ⋈p2 lr) ⋈p1 r  →  ll ⋈top (lr ⋈inner r), keeping only connected
/// shapes (the inner and the top join must each have a conjunct spanning
/// their two sides).
fn apply_join_assoc(memo: &mut Memo, id: GroupExprId) {
    let e = memo.gexpr(id);
    let (p1, l, r) = match &e.op {
        Op::Join { pred } => (pred.clone(), e.children[0], e.children[1]),
        _ => return,
    };
    // Collect candidate left-child join expressions first (borrow rules).
    let left_joins: Vec<(Scalar, GroupId, GroupId)> = memo
        .group(l)
        .exprs
        .iter()
        .filter_map(|&eid| {
            let le = memo.gexpr(eid);
            match &le.op {
                Op::Join { pred } => Some((pred.clone(), le.children[0], le.children[1])),
                _ => None,
            }
        })
        .collect();
    let r_rels = memo.group(r).props.rels;
    let group = memo.group_of(id);
    for (p2, ll, lr) in left_joins {
        let ll_rels = memo.group(ll).props.rels;
        let lr_rels = memo.group(lr).props.rels;
        let inner_rels = lr_rels.union(r_rels);
        let mut inner_conj = Vec::new();
        let mut top_conj = Vec::new();
        for c in p1.conjuncts().into_iter().chain(p2.conjuncts()) {
            if c.rels().is_subset(inner_rels) {
                inner_conj.push(c);
            } else {
                top_conj.push(c);
            }
        }
        let spans = |conjs: &[Scalar], a: RelSet, b: RelSet| {
            conjs
                .iter()
                .any(|c| !c.rels().intersect(a).is_empty() && !c.rels().intersect(b).is_empty())
        };
        if !spans(&inner_conj, lr_rels, r_rels) || !spans(&top_conj, ll_rels, inner_rels) {
            continue; // would create a cross product
        }
        let inner = GroupExpr::new(
            Op::Join {
                pred: Scalar::and(inner_conj).normalize(),
            },
            vec![lr, r],
        );
        let (_, inner_group, _) = memo.add_gexpr(inner, None);
        let top = GroupExpr::new(
            Op::Join {
                pred: Scalar::and(top_conj).normalize(),
            },
            vec![ll, inner_group],
        );
        memo.add_gexpr(top, Some(group));
    }
}

/// γ_keys;aggs (l ⋈p r)  →  γ_keys;aggs' (l ⋈p γ_partial(r))
/// when every aggregate argument comes from `r`. The partial group-by keys
/// are the original keys from `r` plus every `r` column the join predicate
/// needs; the final aggregate re-aggregates partial results (SUM of partial
/// SUMs / COUNTs, MIN of MINs, ...), which is exactly the rollup the
/// covering-subexpression consumers use too.
fn apply_eager_agg(memo: &mut Memo, id: GroupExprId, max_rels: usize) {
    let e = memo.gexpr(id);
    let (keys, aggs, out, child) = match &e.op {
        Op::Aggregate { keys, aggs, out } => (keys.clone(), aggs.clone(), *out, e.children[0]),
        _ => return,
    };
    // Only direct Join children (one level is enough to seed candidates;
    // deeper shapes arise through join reassociation first).
    let joins: Vec<(Scalar, GroupId, GroupId)> = memo
        .group(child)
        .exprs
        .iter()
        .filter_map(|&eid| {
            let je = memo.gexpr(eid);
            match &je.op {
                Op::Join { pred } => Some((pred.clone(), je.children[0], je.children[1])),
                _ => None,
            }
        })
        .collect();
    let group = memo.group_of(id);
    for (p, l, r) in joins {
        let r_rels = memo.group(r).props.rels;
        if r_rels.len() > max_rels {
            continue;
        }
        // All aggregate arguments must reference only r's rels (CountStar
        // qualifies trivially).
        let args_from_r = aggs.iter().all(|a| match &a.arg {
            Some(arg) => arg.rels().is_subset(r_rels),
            None => true,
        });
        if !args_from_r || aggs.is_empty() {
            continue;
        }
        // Partial keys: original keys from r + r columns used by the join
        // predicate.
        let mut partial_keys: Vec<ColRef> = keys
            .iter()
            .copied()
            .filter(|k| r_rels.contains(k.rel))
            .collect();
        for c in p.columns() {
            if r_rels.contains(c.rel) && !partial_keys.contains(&c) {
                partial_keys.push(c);
            }
        }
        partial_keys.sort();
        if partial_keys.is_empty() {
            continue; // cross join with no keys: not useful
        }
        // Every original key must be available above the partial aggregate.
        let l_rels = memo.group(l).props.rels;
        let keys_ok = keys
            .iter()
            .all(|k| l_rels.contains(k.rel) || partial_keys.contains(k));
        if !keys_ok {
            continue;
        }
        let partial_aggs: Vec<AggExpr> = aggs.iter().map(AggExpr::normalize).collect();
        let partial_out =
            memo.agg_out_for(r, &partial_keys, &partial_aggs, memo.group(r).props.block);
        let partial = GroupExpr::new(
            Op::Aggregate {
                keys: partial_keys,
                aggs: partial_aggs,
                out: partial_out,
            },
            vec![r],
        );
        let (_, partial_group, _) = memo.add_gexpr(partial, None);
        let join = GroupExpr::new(Op::Join { pred: p.clone() }, vec![l, partial_group]);
        let (_, join_group, _) = memo.add_gexpr(join, None);
        // Final aggregate: same keys and the same output rel, but each
        // aggregate now rolls up the partial column.
        let final_aggs: Vec<AggExpr> = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let partial_col = Scalar::Col(ColRef::new(partial_out, i as u16));
                match a.func {
                    AggFunc::CountStar | AggFunc::Count => AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(partial_col),
                    },
                    _ => a.rollup_over(partial_col),
                }
            })
            .collect();
        let final_agg = GroupExpr::new(
            Op::Aggregate {
                keys: keys.clone(),
                aggs: final_aggs,
                out,
            },
            vec![join_group],
        );
        memo.add_gexpr(final_agg, Some(group));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::{LogicalPlan, PlanContext, RelId};
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn setup(n: usize) -> (PlanContext, Vec<RelId>) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let names = ["t0", "t1", "t2", "t3", "t4"];
        let rels = (0..n)
            .map(|i| ctx.add_base_rel(names[i], names[i], schema.clone(), b))
            .collect();
        (ctx, rels)
    }

    fn chain_join(rels: &[RelId]) -> LogicalPlan {
        let mut plan = LogicalPlan::get(rels[0]);
        for w in rels.windows(2) {
            plan = plan.join(
                LogicalPlan::get(w[1]),
                Scalar::eq(Scalar::col(w[0], 0), Scalar::col(w[1], 0)),
            );
        }
        plan
    }

    #[test]
    fn commute_doubles_join_exprs() {
        let (ctx, rels) = setup(2);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&chain_join(&rels));
        explore(&mut memo, &ExploreConfig::default());
        // Original + commuted.
        assert_eq!(memo.group(g).exprs.len(), 2);
    }

    #[test]
    fn assoc_generates_alternative_orders() {
        let (ctx, rels) = setup(3);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&chain_join(&rels));
        let added = explore(&mut memo, &ExploreConfig::default());
        assert!(added > 0);
        // The root group must now contain a right-deep alternative:
        // some expr whose right child covers 2 rels.
        let has_right_deep = memo.group(g).exprs.iter().any(|&eid| {
            let e = memo.gexpr(eid);
            matches!(e.op, Op::Join { .. }) && memo.group(e.children[1]).props.rels.len() == 2
        });
        assert!(has_right_deep);
    }

    #[test]
    fn exploration_reaches_fixpoint() {
        let (ctx, rels) = setup(4);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&chain_join(&rels));
        explore(&mut memo, &ExploreConfig::default());
        let n = memo.num_gexprs();
        let added = explore(&mut memo, &ExploreConfig::default());
        assert_eq!(added, 0, "second exploration must add nothing");
        assert_eq!(memo.num_gexprs(), n);
    }

    #[test]
    fn no_cross_products_created() {
        // t0-t1-t2 chain: the order (t0 ⋈ t2) would be a cross product and
        // must not appear.
        let (ctx, rels) = setup(3);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&chain_join(&rels));
        explore(&mut memo, &ExploreConfig::default());
        for g in memo.groups() {
            let bad = RelSet::from_iter([rels[0], rels[2]]);
            assert!(
                g.props.rels != bad,
                "cross-product group {:?} was created",
                g.id
            );
        }
    }

    #[test]
    fn eager_agg_creates_partial_aggregate() {
        let (mut ctx, rels) = setup(2);
        let blk = ctx.new_block();
        let out = ctx.add_agg_output(&[DataType::Float], blk);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(chain_join(&rels)),
            keys: vec![ColRef::new(rels[0], 0)],
            aggs: vec![AggExpr::sum(Scalar::col(rels[1], 1))],
            out,
        };
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&plan);
        explore(&mut memo, &ExploreConfig::default());
        // Some group must now be a grouped signature over t1 alone
        // (the partial aggregate).
        let partial = memo.groups().find(|gr| {
            gr.props
                .signature
                .as_ref()
                .is_some_and(|s| s.grouped && s.tables == vec!["t1".to_string()])
        });
        assert!(partial.is_some(), "partial aggregate group missing");
        // And the aggregate's own group gained an eager alternative.
        assert!(memo.group(g).exprs.len() >= 2);
    }

    #[test]
    fn eager_agg_disabled() {
        let (mut ctx, rels) = setup(2);
        let blk = ctx.new_block();
        let out = ctx.add_agg_output(&[DataType::Float], blk);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(chain_join(&rels)),
            keys: vec![ColRef::new(rels[0], 0)],
            aggs: vec![AggExpr::sum(Scalar::col(rels[1], 1))],
            out,
        };
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&plan);
        explore(
            &mut memo,
            &ExploreConfig {
                enable_eager_agg: false,
                ..Default::default()
            },
        );
        assert_eq!(memo.group(g).exprs.len(), 1);
    }
}
