//! # cse-memo
//!
//! Cascades-style memo: groups of logically equivalent expressions stored
//! as a DAG (paper §2.1), transformation-rule exploration, and incremental
//! table-signature computation (paper §3).

// Fallible paths must surface `Result`s, not panic; tests may unwrap.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod explore;
pub mod memo;
pub mod op;
pub mod signature;

pub use explore::{explore, ExploreConfig};
pub use memo::{Group, LogicalProps, Memo, ProvenFacts};
pub use op::{GroupExpr, GroupExprId, GroupId, Op};
pub use signature::{compute_signature, TableSignature};
