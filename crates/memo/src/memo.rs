//! The memo: a DAG of groups of logically-equivalent expressions
//! (Goldstein/Graefe's Cascades structure, paper §2.1).

use crate::op::{GroupExpr, GroupExprId, GroupId, Op};
use crate::signature::{compute_signature, TableSignature};
use cse_algebra::{AggExpr, BlockId, ColRef, LogicalPlan, PlanContext, RelSet, Scalar};
use std::collections::{BTreeSet, HashMap};

/// Facts *proven* by a front-end analyzer (qlint) and threaded through
/// the memo so construction can consult them without plumbing a parameter
/// through every call site.
///
/// Soundness contract: each entry is a proof obtained upstream, but any
/// consumer must still **re-verify the fact locally** in its own
/// representation (e.g. via `cse-algebra::implies` over the branch it is
/// about to rewrite) and treat a mismatch as a no-op. The facts are a
/// trigger/cache, never a license.
#[derive(Debug, Clone, Default)]
pub struct ProvenFacts {
    /// Normalized conjuncts the analyzer proved implied by their
    /// statement's sibling conjuncts.
    pub redundant_conjuncts: BTreeSet<Scalar>,
}

impl ProvenFacts {
    pub fn is_empty(&self) -> bool {
        self.redundant_conjuncts.is_empty()
    }
}

/// Logical properties shared by all expressions of a group.
#[derive(Debug, Clone)]
pub struct LogicalProps {
    /// Base/delta table instances below this group.
    pub rels: RelSet,
    /// The query block, when all rels agree (None for Batch and for groups
    /// spanning blocks, e.g. CSE definitions joined into several queries).
    pub block: Option<BlockId>,
    /// Table signature (paper §3); `None` when the group is not SPJG.
    pub signature: Option<TableSignature>,
    /// Globally-identified columns the group exposes.
    pub output_cols: Vec<ColRef>,
}

/// A set of logically equivalent expressions.
#[derive(Debug, Clone)]
pub struct Group {
    pub id: GroupId,
    /// Expressions in insertion order; the first is the originally
    /// inserted shape (used for acyclic tree extraction).
    pub exprs: Vec<GroupExprId>,
    pub props: LogicalProps,
    /// Group expressions (in other groups) referencing this group.
    pub parents: Vec<GroupExprId>,
}

/// The memo structure.
///
/// `Clone` exists for the degradation ladder in `cse-core`: each ladder
/// rung runs the CSE phase on its own copy, so a panic or budget trip in
/// one attempt can never leave the next attempt a half-mutated memo.
#[derive(Debug, Clone)]
pub struct Memo {
    /// Table-instance registry; mutable because exploration (eager
    /// aggregation) allocates new synthetic output rels.
    pub ctx: PlanContext,
    groups: Vec<Group>,
    gexprs: Vec<GroupExpr>,
    gexpr_group: Vec<GroupId>,
    dedup: HashMap<String, GroupExprId>,
    /// Deterministic synthetic-out allocation for exploration-created
    /// partial aggregates: (child group, keys, aggs) -> out rel.
    agg_out_cache: HashMap<String, cse_algebra::RelId>,
    root: Option<GroupId>,
    /// Analyzer-proven facts (see [`ProvenFacts`]); empty unless the
    /// pipeline ran qlint over the batch.
    pub facts: ProvenFacts,
}

impl Memo {
    pub fn new(ctx: PlanContext) -> Self {
        Memo {
            ctx,
            groups: Vec::new(),
            gexprs: Vec::new(),
            gexpr_group: Vec::new(),
            dedup: HashMap::new(),
            agg_out_cache: HashMap::new(),
            root: None,
            facts: ProvenFacts::default(),
        }
    }

    pub fn root(&self) -> GroupId {
        self.root.expect("no plan inserted")
    }

    pub fn set_root(&mut self, g: GroupId) {
        self.root = Some(g);
    }

    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn num_gexprs(&self) -> usize {
        self.gexprs.len()
    }

    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    pub fn groups(&self) -> impl Iterator<Item = &Group> {
        self.groups.iter()
    }

    pub fn gexpr(&self, id: GroupExprId) -> &GroupExpr {
        &self.gexprs[id.0 as usize]
    }

    pub fn group_of(&self, id: GroupExprId) -> GroupId {
        self.gexpr_group[id.0 as usize]
    }

    /// Insert a group expression. If an identical expression exists, the
    /// existing (id, group) is returned. Otherwise it is appended to
    /// `target` (when given) or to a freshly created group.
    /// Returns (gexpr id, group id, was_new).
    pub fn add_gexpr(
        &mut self,
        e: GroupExpr,
        target: Option<GroupId>,
    ) -> (GroupExprId, GroupId, bool) {
        let key = e.dedup_key();
        if let Some(&id) = self.dedup.get(&key) {
            return (id, self.gexpr_group[id.0 as usize], false);
        }
        let gid = match target {
            Some(g) => g,
            None => self.new_group_for(&e),
        };
        let id = GroupExprId(self.gexprs.len() as u32);
        for &c in &e.children {
            self.groups[c.0 as usize].parents.push(id);
        }
        self.gexprs.push(e);
        self.gexpr_group.push(gid);
        self.groups[gid.0 as usize].exprs.push(id);
        self.dedup.insert(key, id);
        (id, gid, true)
    }

    fn new_group_for(&mut self, e: &GroupExpr) -> GroupId {
        let props = self.derive_props(e);
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            id,
            exprs: Vec::new(),
            props,
            parents: Vec::new(),
        });
        id
    }

    fn derive_props(&self, e: &GroupExpr) -> LogicalProps {
        let child_props: Vec<&LogicalProps> = e
            .children
            .iter()
            .map(|c| &self.groups[c.0 as usize].props)
            .collect();
        let rels = match &e.op {
            Op::Get { rel } => RelSet::single(*rel),
            _ => child_props
                .iter()
                .fold(RelSet::EMPTY, |acc, p| acc.union(p.rels)),
        };
        let block = match &e.op {
            Op::Get { rel } => Some(self.ctx.rel(*rel).block),
            Op::Batch => None,
            _ => {
                let blocks: Vec<Option<BlockId>> = child_props.iter().map(|p| p.block).collect();
                if blocks.iter().all(|b| *b == blocks[0]) {
                    blocks.first().copied().flatten()
                } else {
                    None
                }
            }
        };
        let child_sigs: Vec<Option<&TableSignature>> =
            child_props.iter().map(|p| p.signature.as_ref()).collect();
        let signature = compute_signature(&self.ctx, &e.op, &child_sigs);
        let output_cols = self.derive_output_cols(e, &child_props);
        LogicalProps {
            rels,
            block,
            signature,
            output_cols,
        }
    }

    fn derive_output_cols(&self, e: &GroupExpr, child_props: &[&LogicalProps]) -> Vec<ColRef> {
        match &e.op {
            Op::Get { rel } => {
                let n = self.ctx.rel(*rel).schema.len();
                (0..n).map(|i| ColRef::new(*rel, i as u16)).collect()
            }
            Op::Filter { .. } | Op::Sort { .. } => child_props
                .first()
                .map(|p| p.output_cols.clone())
                .unwrap_or_default(),
            Op::Join { .. } => {
                let mut cols: Vec<ColRef> = child_props
                    .iter()
                    .flat_map(|p| p.output_cols.iter().copied())
                    .collect();
                cols.sort();
                cols.dedup();
                cols
            }
            Op::Aggregate { keys, aggs, out } => {
                let mut cols = keys.clone();
                cols.extend((0..aggs.len()).map(|i| ColRef::new(*out, i as u16)));
                cols
            }
            Op::Project { .. } | Op::Batch => Vec::new(),
        }
    }

    /// Insert a whole logical plan bottom-up with full deduplication;
    /// returns the root group. Identical subexpressions across statements
    /// land in the same group automatically.
    pub fn insert_plan(&mut self, plan: &LogicalPlan) -> GroupId {
        let gid = self.insert_rec(plan);
        if self.root.is_none() {
            self.root = Some(gid);
        }
        gid
    }

    fn insert_rec(&mut self, plan: &LogicalPlan) -> GroupId {
        let (op, children) = match plan {
            LogicalPlan::Get { rel } => (Op::Get { rel: *rel }, vec![]),
            LogicalPlan::Filter { input, pred } => (
                Op::Filter {
                    pred: pred.normalize(),
                },
                vec![self.insert_rec(input)],
            ),
            LogicalPlan::Join { left, right, pred } => {
                let l = self.insert_rec(left);
                let r = self.insert_rec(right);
                (
                    Op::Join {
                        pred: pred.normalize(),
                    },
                    vec![l, r],
                )
            }
            LogicalPlan::Aggregate {
                input,
                keys,
                aggs,
                out,
            } => (
                Op::Aggregate {
                    keys: keys.clone(),
                    aggs: aggs.iter().map(AggExpr::normalize).collect(),
                    out: *out,
                },
                vec![self.insert_rec(input)],
            ),
            LogicalPlan::Project { input, exprs } => (
                Op::Project {
                    exprs: exprs.clone(),
                },
                vec![self.insert_rec(input)],
            ),
            LogicalPlan::Sort { input, keys } => (
                Op::Sort { keys: keys.clone() },
                vec![self.insert_rec(input)],
            ),
            LogicalPlan::Batch { children } => {
                let kids: Vec<GroupId> = children.iter().map(|c| self.insert_rec(c)).collect();
                (Op::Batch, kids)
            }
        };
        let (_, gid, _) = self.add_gexpr(GroupExpr::new(op, children), None);
        gid
    }

    /// Deterministic synthetic-out rel for an exploration-created partial
    /// aggregate, so re-running a rule reuses the same rel (keeps dedup
    /// sound).
    pub fn agg_out_for(
        &mut self,
        child: GroupId,
        keys: &[ColRef],
        aggs: &[AggExpr],
        block: Option<BlockId>,
    ) -> cse_algebra::RelId {
        let key = format!("{child:?}|{keys:?}|{aggs:?}");
        self.agg_out_for_key(key, aggs, block)
    }

    /// Like [`Memo::agg_out_for`] but with a caller-provided cache key —
    /// used by covering-subexpression construction so repeated (trial)
    /// constructions of the same aggregate shape reuse one synthetic rel
    /// instead of exhausting the instance budget.
    pub fn agg_out_for_key(
        &mut self,
        key: String,
        aggs: &[AggExpr],
        block: Option<BlockId>,
    ) -> cse_algebra::RelId {
        if let Some(&r) = self.agg_out_cache.get(&key) {
            return r;
        }
        let types: Vec<cse_storage::DataType> = aggs.iter().map(|a| self.ctx.agg_type(a)).collect();
        let blk = block.unwrap_or_else(|| self.ctx.new_block());
        let r = self.ctx.add_agg_output(&types, blk);
        self.agg_out_cache.insert(key, r);
        r
    }

    /// Extract the originally-inserted operator tree of a group (first
    /// expression, recursively). Acyclic because first expressions mirror
    /// the inserted plan shapes.
    pub fn extract_first_tree(&self, g: GroupId) -> LogicalPlan {
        let e = self.gexpr(self.group(g).exprs[0]);
        self.tree_of(e)
    }

    fn tree_of(&self, e: &GroupExpr) -> LogicalPlan {
        let mut children: Vec<LogicalPlan> = e
            .children
            .iter()
            .map(|c| self.extract_first_tree(*c))
            .collect();
        match &e.op {
            Op::Get { rel } => LogicalPlan::Get { rel: *rel },
            Op::Filter { pred } => LogicalPlan::Filter {
                input: Box::new(children.remove(0)),
                pred: pred.clone(),
            },
            Op::Join { pred } => {
                let right = Box::new(children.remove(1));
                LogicalPlan::Join {
                    left: Box::new(children.remove(0)),
                    right,
                    pred: pred.clone(),
                }
            }
            Op::Aggregate { keys, aggs, out } => LogicalPlan::Aggregate {
                input: Box::new(children.remove(0)),
                keys: keys.clone(),
                aggs: aggs.clone(),
                out: *out,
            },
            Op::Project { exprs } => LogicalPlan::Project {
                input: Box::new(children.remove(0)),
                exprs: exprs.clone(),
            },
            Op::Sort { keys } => LogicalPlan::Sort {
                input: Box::new(children.remove(0)),
                keys: keys.clone(),
            },
            Op::Batch => LogicalPlan::Batch { children },
        }
    }

    /// All groups that are descendants of `g` (including `g`), following
    /// every expression of every group.
    pub fn descendants(&self, g: GroupId) -> Vec<GroupId> {
        let mut seen = vec![false; self.groups.len()];
        let mut stack = vec![g];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            if seen[cur.0 as usize] {
                continue;
            }
            seen[cur.0 as usize] = true;
            out.push(cur);
            for &eid in &self.group(cur).exprs {
                for &c in &self.gexpr(eid).children {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Is `desc` a descendant group of `anc` (or equal)?
    pub fn is_descendant(&self, desc: GroupId, anc: GroupId) -> bool {
        self.descendants(anc).contains(&desc)
    }

    /// Debug rendering of the whole memo.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for g in &self.groups {
            let _ = writeln!(
                s,
                "{} rels={} sig={} ({} exprs)",
                g.id,
                g.props.rels,
                g.props
                    .signature
                    .as_ref()
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "∅".into()),
                g.exprs.len()
            );
            for &eid in &g.exprs {
                let e = self.gexpr(eid);
                let kids: Vec<String> = e.children.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(s, "  {} [{}]", e.op.name(), kids.join(","));
            }
        }
        s
    }
}

/// Convenience: the signature of a group, if any.
impl Memo {
    pub fn signature_of(&self, g: GroupId) -> Option<&TableSignature> {
        self.group(g).props.signature.as_ref()
    }

    /// Corruption-injection hook for the `cse-verify` adversarial test
    /// suite: overwrite a group's incrementally maintained signature so the
    /// signature audit can be exercised. Never call this from production
    /// code — it deliberately breaks the §3/Fig. 2 invariant.
    #[doc(hidden)]
    pub fn override_signature(&mut self, g: GroupId, sig: Option<TableSignature>) {
        self.groups[g.0 as usize].props.signature = sig;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_algebra::Scalar;
    use cse_storage::{DataType, Schema};
    use std::sync::Arc;

    fn setup3() -> (PlanContext, Vec<cse_algebra::RelId>) {
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
        ]));
        let rels = ["aa", "bb", "cc"]
            .iter()
            .map(|t| ctx.add_base_rel(*t, *t, schema.clone(), b))
            .collect();
        (ctx, rels)
    }

    fn join_plan(rels: &[cse_algebra::RelId]) -> LogicalPlan {
        LogicalPlan::get(rels[0])
            .join(
                LogicalPlan::get(rels[1]),
                Scalar::eq(Scalar::col(rels[0], 0), Scalar::col(rels[1], 0)),
            )
            .join(
                LogicalPlan::get(rels[2]),
                Scalar::eq(Scalar::col(rels[1], 0), Scalar::col(rels[2], 0)),
            )
    }

    #[test]
    fn insert_dedups_shared_subtrees() {
        let (ctx, rels) = setup3();
        let mut memo = Memo::new(ctx);
        let p = join_plan(&rels);
        let g1 = memo.insert_plan(&p);
        let before = memo.num_gexprs();
        let g2 = memo.insert_plan(&p);
        assert_eq!(g1, g2);
        assert_eq!(memo.num_gexprs(), before);
    }

    #[test]
    fn group_props() {
        let (ctx, rels) = setup3();
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&join_plan(&rels));
        let props = &memo.group(g).props;
        assert_eq!(props.rels.len(), 3);
        let sig = props.signature.as_ref().unwrap();
        assert!(!sig.grouped);
        assert_eq!(sig.tables, vec!["aa", "bb", "cc"]);
        assert_eq!(props.output_cols.len(), 6);
    }

    #[test]
    fn extract_first_tree_roundtrip() {
        let (ctx, rels) = setup3();
        let mut memo = Memo::new(ctx);
        let p = join_plan(&rels);
        let g = memo.insert_plan(&p);
        let t = memo.extract_first_tree(g);
        // Same normal form.
        let n1 = cse_algebra::SpjgNormal::from_plan(&p).unwrap();
        let n2 = cse_algebra::SpjgNormal::from_plan(&t).unwrap();
        assert_eq!(n1.spj, n2.spj);
    }

    #[test]
    fn descendants_include_leaves() {
        let (ctx, rels) = setup3();
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&join_plan(&rels));
        let d = memo.descendants(g);
        assert_eq!(d.len(), 5); // 3 gets + 2 joins
        assert!(memo.is_descendant(d[d.len() - 1], g));
    }

    #[test]
    fn batch_groups_have_no_signature() {
        let (ctx, rels) = setup3();
        let mut memo = Memo::new(ctx);
        let b = LogicalPlan::Batch {
            children: vec![join_plan(&rels)],
        };
        let g = memo.insert_plan(&b);
        assert!(memo.signature_of(g).is_none());
    }

    #[test]
    fn parents_tracked() {
        let (ctx, rels) = setup3();
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&join_plan(&rels));
        // aa's Get group is referenced by one join expr.
        let get_group = memo
            .groups()
            .find(|g| g.props.rels == RelSet::single(rels[0]) && g.props.signature.is_some())
            .unwrap();
        assert_eq!(get_group.parents.len(), 1);
    }
}
