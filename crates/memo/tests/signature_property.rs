//! Property test: `TableSignature::tables_subset_of` (the merge-scan over
//! two sorted multisets used by containment heuristic H-containment, paper
//! Definition 4.2) must agree with a naive multiset-count oracle on random
//! table multisets — including self-joins (repeated names) and Δ-prefixed
//! delta tables from the view-maintenance path (§6.4).

use cse_memo::TableSignature;
use cse_storage::testkit::TestRng;
use std::collections::HashMap;

/// Oracle: `a ⊆ b` as multisets iff every name's count in `a` is ≤ its
/// count in `b`.
fn naive_submultiset(a: &[String], b: &[String]) -> bool {
    let mut counts: HashMap<&str, isize> = HashMap::new();
    for t in b {
        *counts.entry(t.as_str()).or_insert(0) += 1;
    }
    for t in a {
        let c = counts.entry(t.as_str()).or_insert(0);
        *c -= 1;
        if *c < 0 {
            return false;
        }
    }
    true
}

/// Small name pool with deliberate collisions (self-joins are the point)
/// and Δ-prefixed variants, which must stay distinct from their base names.
fn random_tables(rng: &mut TestRng, max_len: usize) -> Vec<String> {
    const POOL: [&str; 7] = [
        "lineitem",
        "orders",
        "customer",
        "t",
        "Δlineitem",
        "Δorders",
        "Δt",
    ];
    let len = rng.range_usize(0, max_len + 1);
    let mut tables: Vec<String> = (0..len).map(|_| rng.pick(&POOL).to_string()).collect();
    // Signatures keep their multiset sorted; mirror that invariant.
    tables.sort();
    tables
}

fn sig(tables: Vec<String>, grouped: bool) -> TableSignature {
    TableSignature { grouped, tables }
}

#[test]
fn subset_of_matches_naive_multiset_oracle() {
    let mut rng = TestRng::new(0x5169_2007);
    let mut subset_hits = 0usize;
    for case in 0..4000 {
        let a = random_tables(&mut rng, 6);
        let b = random_tables(&mut rng, 6);
        let sa = sig(a.clone(), rng.chance(0.5));
        let sb = sig(b.clone(), rng.chance(0.5));
        let expect = naive_submultiset(&a, &b);
        subset_hits += usize::from(expect);
        assert_eq!(
            sa.tables_subset_of(&sb),
            expect,
            "case {case}: {a:?} ⊆ {b:?} should be {expect}"
        );
        // And the mirrored direction, for free.
        assert_eq!(
            sb.tables_subset_of(&sa),
            naive_submultiset(&b, &a),
            "case {case} (mirrored): {b:?} ⊆ {a:?}"
        );
    }
    // The generator must actually exercise both outcomes.
    assert!(subset_hits > 100, "only {subset_hits} positive cases drawn");
    assert!(
        subset_hits < 3900,
        "only {} negative cases drawn",
        4000 - subset_hits
    );
}

#[test]
fn subset_of_is_reflexive_and_respects_extension() {
    let mut rng = TestRng::new(0xC5E0_0703);
    for _ in 0..1000 {
        let a = random_tables(&mut rng, 5);
        let sa = sig(a.clone(), false);
        // Reflexivity: every multiset contains itself.
        assert!(sa.tables_subset_of(&sa), "{a:?} ⊆ {a:?}");
        // Extension: a ⊆ a ∪ {extra}, and (a ∪ {extra}) ⊄ a when the
        // extra raises some count above a's.
        let extra = rng.pick(&["lineitem", "part", "Δorders"]).to_string();
        let mut bigger = a.clone();
        bigger.push(extra);
        bigger.sort();
        let sb = sig(bigger.clone(), false);
        assert!(sa.tables_subset_of(&sb), "{a:?} ⊆ {bigger:?}");
        assert!(!sb.tables_subset_of(&sa), "{bigger:?} ⊄ {a:?}");
    }
}

#[test]
fn delta_prefix_never_matches_base_table() {
    // The Δ prefix exists precisely so a delta-driven expression can never
    // be mistaken for a base-table expression over the same table.
    let base = sig(vec!["lineitem".into()], false);
    let delta = sig(vec!["Δlineitem".into()], false);
    assert!(!base.tables_subset_of(&delta));
    assert!(!delta.tables_subset_of(&base));
}
