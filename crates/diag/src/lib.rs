//! # cse-diag
//!
//! Structured diagnostics shared by the static analyzers: the post-hoc
//! plan/memo invariant verifier (`cse-verify`) and the frontend batch
//! linter (`cse-lint`). Every pass reports violations through these types
//! so callers (pipeline, CLI, bench report, tests, CI gates) can filter by
//! rule and severity instead of parsing strings.
//!
//! Rule-id *namespaces* stay with the analyzer that owns them:
//! `cse-verify` keeps its `provenance/…`, `signature/…`, `compat/…`,
//! `covering/…`, `costing/…`, `downgrade/…` families; `cse-lint` owns the
//! `lint/…` family. This crate only provides the carrier types.

use std::collections::BTreeSet;
use std::fmt;

/// How bad a finding is. `Error` means a soundness invariant is violated
/// (verify: the plan must not be executed; lint: the statement cannot be
/// bound); `Warning` flags suspicious but not provably wrong states;
/// `Note` carries advisory facts such as sharing opportunities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable identifier (e.g. `signature/mismatch`, `lint/contradiction`).
    pub rule_id: &'static str,
    /// Group / candidate / plan / statement path the finding refers to
    /// (e.g. `G12`, `cse#3/member[1]`, `stmt[0]`).
    pub path: String,
    pub message: String,
    /// Half-open byte range `[start, end)` into the analyzed source text,
    /// when the finding maps back to concrete syntax (lint diagnostics do;
    /// memo-level verify diagnostics don't).
    pub span: Option<(u32, u32)>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity, self.rule_id, self.path, self.message
        )?;
        if let Some((s, e)) = self.span {
            write!(f, " (bytes {s}..{e})")?;
        }
        Ok(())
    }
}

/// The merged output of one or more analyzer passes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Self {
        Report::default()
    }

    fn push(
        &mut self,
        severity: Severity,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        span: Option<(u32, u32)>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity,
            rule_id,
            path: path.into(),
            message: message.into(),
            span,
        });
    }

    /// Record an `Error`-severity finding.
    pub fn error(
        &mut self,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Error, rule_id, path, message, None);
    }

    /// Record a `Warning`-severity finding.
    pub fn warn(
        &mut self,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Warning, rule_id, path, message, None);
    }

    /// Record a `Note`-severity finding.
    pub fn note(
        &mut self,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Note, rule_id, path, message, None);
    }

    /// Record an `Error`-severity finding with a source span.
    pub fn error_at(
        &mut self,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        span: (u32, u32),
    ) {
        self.push(Severity::Error, rule_id, path, message, Some(span));
    }

    /// Record a `Warning`-severity finding with a source span.
    pub fn warn_at(
        &mut self,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        span: (u32, u32),
    ) {
        self.push(Severity::Warning, rule_id, path, message, Some(span));
    }

    /// Record a `Note`-severity finding with a source span.
    pub fn note_at(
        &mut self,
        rule_id: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        span: (u32, u32),
    ) {
        self.push(Severity::Note, rule_id, path, message, Some(span));
    }

    /// Fold another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// No findings at all (the acceptance state for healthy plans).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct rules that fired.
    pub fn fired_rules(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.rule_id).collect()
    }

    /// Human-readable rendering, one diagnostic per line, under the
    /// default `verification` label.
    pub fn render(&self) -> String {
        self.render_as("verification")
    }

    /// [`Report::render`] with a caller-chosen label (e.g. `lint` for the
    /// analyzer, `verification` for the memo invariant passes).
    pub fn render_as(&self, label: &str) -> String {
        if self.is_clean() {
            return format!("{label}: clean (0 diagnostics)");
        }
        let mut s = format!(
            "{label}: {} diagnostic(s), {} error(s)\n",
            self.diagnostics.len(),
            self.error_count()
        );
        for d in &self.diagnostics {
            s.push_str(&format!("  {d}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn spanless_display_is_unchanged() {
        let mut r = Report::new();
        r.error("signature/mismatch", "G3", "stored != recomputed");
        assert_eq!(
            r.diagnostics[0].to_string(),
            "error: [signature/mismatch] G3: stored != recomputed"
        );
    }

    #[test]
    fn spans_render_in_display() {
        let mut r = Report::new();
        r.warn_at("lint/contradiction", "stmt[0]", "always false", (10, 28));
        let text = r.diagnostics[0].to_string();
        assert!(text.contains("(bytes 10..28)"), "{text}");
        assert_eq!(r.diagnostics[0].span, Some((10, 28)));
    }

    #[test]
    fn counts_by_severity() {
        let mut r = Report::new();
        r.note("lint/share-hint", "stmt[0]+stmt[1]", "compatible");
        r.warn("lint/tautology", "stmt[1]", "always true");
        r.error("lint/bind-error", "stmt[2]", "unknown column");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.diagnostics.len(), 3);
        assert!(!r.is_clean());
    }
}
