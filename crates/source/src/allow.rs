//! Checked-in, justified allowlists shared by the source analyzers.
//!
//! Format (one entry per line, `#` comments, blank lines ignored):
//!
//! ```text
//! rule-id  file-suffix  function  justification text...
//! ```
//!
//! The first three whitespace-separated fields key the entry; everything
//! after the third field is the mandatory justification. `function` may be
//! `*` to cover a whole file. An entry matches a finding when the rule id
//! is equal, the finding's file path ends with `file-suffix`, and the
//! enclosing function matches.
//!
//! Keying on `(rule, file, function)` instead of byte spans keeps entries
//! stable across unrelated edits: reformatting a file must not invalidate
//! its exceptions, while renaming or deleting the excepted function makes
//! the entry *stale* — and stale entries are themselves findings
//! (`conc/stale-allow`, `audit/stale-allow`), so each list can only
//! shrink back to truth, never silently rot.

use crate::finding::Finding;
use cse_diag::Severity;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file_suffix: String,
    pub func: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for stale-entry reporting).
    pub line: usize,
}

impl AllowEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && f.file.ends_with(&self.file_suffix)
            && (self.func == "*" || self.func == f.func)
    }
}

/// Parse the allowlist text, validating rule ids against the owning
/// analyzer's `known_rules`. Errors name the offending line; an entry
/// without a justification is an error — undocumented exceptions are the
/// failure mode this file format exists to prevent.
pub fn parse_allowlist(text: &str, known_rules: &[&str]) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split the three key fields on whitespace *runs* (columns may be
        // space-aligned); the remainder is the justification.
        let mut rest = line;
        let mut field = || {
            rest = rest.trim_start();
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let f = &rest[..end];
            rest = &rest[end..];
            f.to_string()
        };
        let rule = field();
        let file_suffix = field();
        let func = field();
        let justification = rest.trim().to_string();
        if rule.is_empty() || file_suffix.is_empty() || func.is_empty() {
            return Err(format!(
                "allowlist line {}: expected `rule file-suffix function justification`, got: {raw}",
                idx + 1
            ));
        }
        if !known_rules.contains(&rule.as_str()) {
            return Err(format!(
                "allowlist line {}: unknown rule `{rule}`; known rules: {}",
                idx + 1,
                known_rules.join(", ")
            ));
        }
        if justification.is_empty() {
            return Err(format!(
                "allowlist line {}: entry for {rule} at {file_suffix}::{func} has no \
                 justification — every exception must say why it is sound",
                idx + 1
            ));
        }
        entries.push(AllowEntry {
            rule,
            file_suffix,
            func,
            justification,
            line: idx + 1,
        });
    }
    Ok(entries)
}

/// The result of filtering findings through the allowlist.
#[derive(Debug, Default)]
pub struct Filtered {
    /// Findings no entry covered: these gate `--deny`.
    pub denied: Vec<Finding>,
    /// Covered findings, with the entry's justification attached.
    pub allowed: Vec<(Finding, String)>,
    /// Entries that covered nothing: stale, reported as findings.
    pub stale: Vec<AllowEntry>,
}

/// Split `findings` by the allowlist, and surface unused entries as stale
/// so the list cannot rot.
pub fn apply_allowlist(findings: Vec<Finding>, entries: &[AllowEntry]) -> Filtered {
    let mut used = vec![false; entries.len()];
    let mut out = Filtered::default();
    for f in findings {
        match entries.iter().position(|e| e.matches(&f)) {
            Some(idx) => {
                used[idx] = true;
                let justification = entries[idx].justification.clone();
                out.allowed.push((f, justification));
            }
            None => out.denied.push(f),
        }
    }
    for (idx, e) in entries.iter().enumerate() {
        if !used[idx] {
            out.stale.push(e.clone());
        }
    }
    out
}

/// A stale entry rendered as a deniable finding. `list_name` is the
/// allowlist's display name (`qconc.allow`, `qaudit.allow`) and
/// `stale_rule` the owning analyzer's stale-entry rule id.
pub fn stale_finding(e: &AllowEntry, list_name: &str, stale_rule: &'static str) -> Finding {
    Finding {
        rule: stale_rule,
        file: list_name.to_string(),
        func: format!("line {}", e.line),
        message: format!(
            "allowlist entry `{} {} {}` matched no finding; remove it (the excepted \
             code was fixed, moved, or renamed)",
            e.rule, e.file_suffix, e.func
        ),
        span: (0, 0),
        severity: Severity::Warning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["x/one", "x/two", "x/stale-allow"];

    fn finding(rule: &'static str, file: &str, func: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            func: func.to_string(),
            message: "m".to_string(),
            span: (0, 1),
            severity: Severity::Warning,
        }
    }

    #[test]
    fn parse_and_match() {
        let text = "\
# a comment
x/one crates/a/src/f.rs bump monotonic counter, no ordering needed
x/two crates/a/src/f.rs *    whole-file exception
";
        let entries = parse_allowlist(text, RULES).expect("parses");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches(&finding("x/one", "/abs/crates/a/src/f.rs", "bump")));
        assert!(!entries[0].matches(&finding("x/one", "/abs/crates/a/src/f.rs", "other")));
        assert!(entries[1].matches(&finding("x/two", "crates/a/src/f.rs", "anything")));
    }

    #[test]
    fn justification_is_mandatory() {
        let err = parse_allowlist("x/one a.rs f", RULES).unwrap_err();
        assert!(err.contains("no justification"), "{err}");
    }

    #[test]
    fn unknown_rules_are_rejected_against_the_owning_set() {
        let err = parse_allowlist("y/not-ours a.rs f because reasons", RULES).unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        assert!(
            err.contains("x/one"),
            "error teaches the valid rules: {err}"
        );
    }

    #[test]
    fn stale_entries_surface() {
        let entries =
            parse_allowlist("x/one gone.rs vanished_fn refactored away", RULES).expect("parses");
        let filtered = apply_allowlist(vec![finding("x/one", "live.rs", "f")], &entries);
        assert_eq!(filtered.denied.len(), 1);
        assert_eq!(filtered.stale.len(), 1);
        let s = stale_finding(&filtered.stale[0], "qtest.allow", "x/stale-allow");
        assert_eq!(s.rule, "x/stale-allow");
        assert_eq!(s.file, "qtest.allow");
        assert!(s.message.contains("vanished_fn"), "{}", s.message);
    }

    #[test]
    fn first_matching_entry_wins_and_is_marked_used() {
        let text = "\
x/one a.rs f justified once
x/one a.rs * justified broadly
";
        let entries = parse_allowlist(text, RULES).expect("parses");
        let filtered = apply_allowlist(
            vec![finding("x/one", "a.rs", "f"), finding("x/one", "a.rs", "g")],
            &entries,
        );
        assert_eq!(filtered.allowed.len(), 2);
        assert!(filtered.stale.is_empty());
        assert!(filtered.denied.is_empty());
    }
}
