//! Brace-scope tracking over the token stream.
//!
//! Both analyzers need the same structural facts while walking a file's
//! tokens: how deeply nested am I, which function am I inside, which
//! `impl` block does that function belong to, and is this region test
//! code. [`ScopeTracker::feed`] consumes one token at a time and keeps
//! those facts current; the returned [`ScopeEvent`] tells the caller what
//! structural transition (if any) the token caused, so rule logic can key
//! off statement and block boundaries without re-deriving them.
//!
//! ## Known approximations
//!
//! - The tracker is token-level: macro bodies are scanned as ordinary
//!   code, and a `{` inside a macro invocation counts as a block.
//! - The `impl` target type is recovered heuristically: the last
//!   angle-depth-zero identifier of the type path (after `for` when
//!   present), which resolves `impl fmt::Display for Severity` to
//!   `Severity` and `impl<T: Clone> Wrapper<T>` to `Wrapper`. `impl
//!   Trait`-in-argument/return position is excluded by requiring item
//!   position (outside parentheses, no function header pending).
//! - Test regions are attribute-driven: an attribute containing the
//!   identifier `test` (and not `not`, so `#[cfg(not(test))]` stays
//!   live code) marks the next braced item — `#[cfg(test)] mod tests`,
//!   `#[test] fn` — as a test region until its closing brace.

use crate::lexer::{Tok, TokKind};

/// What kind of block a `{` opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// The body of a `fn` whose name was just pushed.
    Fn,
    /// The body of an `impl` block whose target type was just pushed.
    Impl,
    /// Any other block (control flow, expression, module, struct, ...).
    Other,
}

/// The structural transition one token caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeEvent {
    /// Entered a block; [`ScopeTracker::depth`] is already incremented.
    Enter(BlockKind),
    /// Left a block; depth is already decremented and any function /
    /// impl frames that ended with it are already popped.
    Exit,
    /// A `;` at the current depth — a statement (or item) boundary.
    Stmt,
    /// This identifier is the name in `fn name` — a definition, not a
    /// call or use.
    FnName,
    /// No structural transition.
    Other,
}

struct FnFrame {
    name: String,
    /// Depth *inside* the body: the frame pops when depth drops below it.
    body_depth: usize,
}

struct ImplFrame {
    type_name: String,
    body_depth: usize,
}

/// Pending `impl` header: tokens between `impl` and its `{` are folded
/// into the eventual target type name.
struct PendingImpl {
    /// Angle-bracket nesting inside the header (`<T: Clone>` etc).
    angle_depth: usize,
    /// Last angle-depth-zero identifier seen since `impl` (or since
    /// `for`, which resets it).
    last_path_ident: Option<String>,
}

/// Attribute scanning state (`#[...]`).
enum AttrState {
    Idle,
    /// Saw `#`, expecting `[`.
    Hash,
    /// Inside `#[...]` at the given bracket depth, collecting idents.
    Body {
        depth: usize,
        test: bool,
        not: bool,
    },
}

/// See the module docs. Feed every token in order; query between feeds.
pub struct ScopeTracker {
    depth: usize,
    paren_depth: usize,
    fns: Vec<FnFrame>,
    impls: Vec<ImplFrame>,
    pending_fn: Option<String>,
    pending_impl: Option<PendingImpl>,
    attr: AttrState,
    /// A test-marking attribute was closed and awaits its braced item.
    test_attr_pending: bool,
    /// Depth of the innermost test region's body, when inside one.
    test_region_depth: Option<usize>,
}

impl Default for ScopeTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopeTracker {
    pub fn new() -> Self {
        ScopeTracker {
            depth: 0,
            paren_depth: 0,
            fns: Vec::new(),
            impls: Vec::new(),
            pending_fn: None,
            pending_impl: None,
            attr: AttrState::Idle,
            test_attr_pending: false,
            test_region_depth: None,
        }
    }

    /// Current brace nesting depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Innermost enclosing function name, or `<module>` at item level.
    pub fn current_fn(&self) -> String {
        self.fns
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<module>".to_string())
    }

    /// Target type of the innermost enclosing `impl` block, if any.
    pub fn current_impl(&self) -> Option<&str> {
        self.impls.last().map(|f| f.type_name.as_str())
    }

    /// Inside a `#[cfg(test)]` / `#[test]` region?
    /// Current round-paren nesting depth. Lets consumers distinguish a
    /// statement-ending `;` from one inside a signature type
    /// (`fn g(t: [u8; 4])`), mirroring the tracker's own pending-fn
    /// handling.
    pub fn paren_depth(&self) -> usize {
        self.paren_depth
    }

    pub fn in_test_region(&self) -> bool {
        self.test_region_depth.is_some()
    }

    /// Consume `toks[i]`, updating all tracked facts. Must be called for
    /// every token, in order, exactly once.
    pub fn feed(&mut self, toks: &[Tok], i: usize) -> ScopeEvent {
        let t = &toks[i];

        // Attribute state machine runs first: tokens inside `#[...]` are
        // attribute metadata, not scope structure (cfg predicates may
        // contain parentheses that must not skew paren_depth).
        match &mut self.attr {
            AttrState::Idle => {}
            AttrState::Hash => {
                if t.is_punct(b'[') {
                    self.attr = AttrState::Body {
                        depth: 1,
                        test: false,
                        not: false,
                    };
                } else {
                    self.attr = AttrState::Idle;
                }
                if matches!(self.attr, AttrState::Body { .. }) {
                    return ScopeEvent::Other;
                }
            }
            AttrState::Body { depth, test, not } => {
                match &t.kind {
                    TokKind::Punct(b'[') => *depth += 1,
                    TokKind::Punct(b']') => {
                        *depth -= 1;
                        if *depth == 0 {
                            if *test && !*not {
                                self.test_attr_pending = true;
                            }
                            self.attr = AttrState::Idle;
                        }
                    }
                    TokKind::Ident(name) if name == "test" => *test = true,
                    TokKind::Ident(name) if name == "not" => *not = true,
                    _ => {}
                }
                return ScopeEvent::Other;
            }
        }

        // Pending impl header: fold tokens into the target type name.
        if let Some(p) = &mut self.pending_impl {
            match &t.kind {
                TokKind::Punct(b'<') => {
                    p.angle_depth += 1;
                    return ScopeEvent::Other;
                }
                TokKind::Punct(b'>') => {
                    p.angle_depth = p.angle_depth.saturating_sub(1);
                    return ScopeEvent::Other;
                }
                TokKind::Ident(name) if p.angle_depth == 0 => {
                    if name == "for" {
                        p.last_path_ident = None;
                    } else {
                        p.last_path_ident = Some(name.clone());
                    }
                    return ScopeEvent::Other;
                }
                TokKind::Punct(b'{') => {
                    let type_name = p
                        .last_path_ident
                        .take()
                        .unwrap_or_else(|| "<unknown>".to_string());
                    self.pending_impl = None;
                    self.depth += 1;
                    self.impls.push(ImplFrame {
                        type_name,
                        body_depth: self.depth,
                    });
                    self.note_region_start();
                    return ScopeEvent::Enter(BlockKind::Impl);
                }
                TokKind::Punct(b';') => {
                    // `impl Foo;` is not Rust, but never wedge on it.
                    self.pending_impl = None;
                    return ScopeEvent::Stmt;
                }
                _ => return ScopeEvent::Other,
            }
        }

        match &t.kind {
            TokKind::Punct(b'#') => {
                self.attr = AttrState::Hash;
                ScopeEvent::Other
            }
            TokKind::Punct(b'(') => {
                self.paren_depth += 1;
                ScopeEvent::Other
            }
            TokKind::Punct(b')') => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                ScopeEvent::Other
            }
            TokKind::Punct(b'{') => {
                self.depth += 1;
                let kind = if let Some(name) = self.pending_fn.take() {
                    self.fns.push(FnFrame {
                        name,
                        body_depth: self.depth,
                    });
                    BlockKind::Fn
                } else {
                    BlockKind::Other
                };
                self.note_region_start();
                ScopeEvent::Enter(kind)
            }
            TokKind::Punct(b'}') => {
                self.depth = self.depth.saturating_sub(1);
                while self.fns.last().is_some_and(|f| f.body_depth > self.depth) {
                    self.fns.pop();
                }
                while self.impls.last().is_some_and(|f| f.body_depth > self.depth) {
                    self.impls.pop();
                }
                if self.test_region_depth.is_some_and(|d| d > self.depth) {
                    self.test_region_depth = None;
                }
                ScopeEvent::Exit
            }
            TokKind::Punct(b';') => {
                // A `fn f();` trait declaration has no body, and an
                // attribute on `mod x;` / `use ...;` marks nothing. But a
                // `;` inside parens (`fn g(t: [u8; 4])`) is part of a
                // type, not a statement end — the pending fn survives it.
                if self.paren_depth == 0 {
                    self.pending_fn = None;
                    self.test_attr_pending = false;
                }
                ScopeEvent::Stmt
            }
            TokKind::Ident(name) => {
                let prev_ident_is_fn = i > 0 && toks[i - 1].is_ident("fn");
                if prev_ident_is_fn {
                    self.pending_fn = Some(name.clone());
                    ScopeEvent::FnName
                } else if name == "impl" && self.paren_depth == 0 && self.pending_fn.is_none() {
                    // Item position: an `impl` block header starts. (In
                    // argument or return position — `impl Into<String>` —
                    // either parens are open or a fn header is pending.)
                    self.pending_impl = Some(PendingImpl {
                        angle_depth: 0,
                        last_path_ident: None,
                    });
                    ScopeEvent::Other
                } else {
                    ScopeEvent::Other
                }
            }
            _ => ScopeEvent::Other,
        }
    }

    /// A block just opened at `self.depth`: if a test-marking attribute
    /// was pending, this block is its item body.
    fn note_region_start(&mut self) {
        if self.test_attr_pending {
            self.test_attr_pending = false;
            if self.test_region_depth.is_none() {
                self.test_region_depth = Some(self.depth);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Drive the tracker over `src`, recording `(fn, impl, in_test)` at
    /// every occurrence of the identifier `probe`.
    fn probe_points(src: &str) -> Vec<(String, Option<String>, bool)> {
        let toks = lex(src);
        let mut tracker = ScopeTracker::new();
        let mut out = Vec::new();
        for i in 0..toks.len() {
            tracker.feed(&toks, i);
            if toks[i].is_ident("probe") {
                out.push((
                    tracker.current_fn(),
                    tracker.current_impl().map(|s| s.to_string()),
                    tracker.in_test_region(),
                ));
            }
        }
        out
    }

    #[test]
    fn function_and_impl_attribution() {
        let src = r#"
            fn free() { probe(); }
            impl Server {
                fn method(&self) { probe(); }
            }
            impl fmt::Display for Severity {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { probe() }
            }
            probe();
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0], ("free".into(), None, false));
        assert_eq!(pts[1], ("method".into(), Some("Server".into()), false));
        assert_eq!(pts[2], ("fmt".into(), Some("Severity".into()), false));
        assert_eq!(pts[3], ("<module>".into(), None, false));
    }

    #[test]
    fn generic_impl_headers_resolve_to_the_type() {
        let src = r#"
            impl<T: Clone> Wrapper<T> { fn get(&self) { probe(); } }
            impl<'a> Iterator for Rows<'a> { fn next(&mut self) { probe(); } }
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0].1.as_deref(), Some("Wrapper"));
        assert_eq!(pts[1].1.as_deref(), Some("Rows"));
    }

    #[test]
    fn impl_trait_in_signatures_is_not_a_block() {
        let src = r#"
            fn take(x: impl Into<String>) -> bool { probe(x) }
            fn give() -> impl Iterator<Item = u32> { probe() }
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0], ("take".into(), None, false));
        assert_eq!(pts[1], ("give".into(), None, false));
    }

    #[test]
    fn test_regions_cover_mods_and_fns_but_not_cfg_not_test() {
        let src = r#"
            fn live() { probe(); }
            #[cfg(test)]
            mod tests {
                use super::*;
                fn helper() { probe(); }
                #[test]
                fn case() { probe(); }
            }
            #[cfg(not(test))]
            fn also_live() { probe(); }
            #[test]
            fn top_level_test() { probe(); }
        "#;
        let pts = probe_points(src);
        assert!(!pts[0].2, "live code");
        assert!(pts[1].2, "helper inside cfg(test) mod");
        assert!(pts[2].2, "test fn inside cfg(test) mod");
        assert!(!pts[3].2, "cfg(not(test)) is live code");
        assert!(pts[4].2, "top-level #[test] fn");
    }

    #[test]
    fn attribute_on_semicolon_item_marks_nothing() {
        let src = r#"
            #[cfg(test)]
            mod tests;
            fn live() { probe(); }
        "#;
        let pts = probe_points(src);
        assert!(!pts[0].2);
    }

    #[test]
    fn nested_fns_pop_back_to_the_outer_frame() {
        let src = r#"
            fn outer() {
                fn inner() { probe(); }
                probe();
            }
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0].0, "inner");
        assert_eq!(pts[1].0, "outer");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        // `fn f(&self);` must not leave a pending frame that swallows the
        // next block.
        let src = r#"
            trait T { fn declared(&self); }
            fn real() { probe(); }
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0].0, "real");
    }

    #[test]
    fn derive_attributes_do_not_open_test_regions() {
        let src = r#"
            #[derive(Debug, Clone)]
            struct S { x: u32 }
            fn live() { probe(); }
        "#;
        let pts = probe_points(src);
        assert!(!pts[0].2);
    }

    #[test]
    fn array_type_semicolon_in_signature_keeps_the_pending_fn() {
        // The `;` in `[u8; 4]` is inside the parameter parens, not a
        // statement end — the body must still attribute to `takes_array`.
        let src = r#"
            fn takes_array(t: [u8; 4]) -> u8 { probe() }
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0], ("takes_array".into(), None, false));
    }

    #[test]
    fn cfg_parens_do_not_skew_paren_depth() {
        // If the cfg predicate's parens leaked into paren_depth, the
        // following `impl` would be rejected as non-item-position.
        let src = r#"
            #[cfg(feature = "lock-stats")]
            struct Gated;
            impl Server { fn m(&self) { probe(); } }
        "#;
        let pts = probe_points(src);
        assert_eq!(pts[0].1.as_deref(), Some("Server"));
    }
}
