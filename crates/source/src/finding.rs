//! The carrier type analyzers hand to allowlists and diagnostics.

use cse_diag::Severity;

/// One analyzer finding, pre-allowlist. `file` is the path as given to
/// the scanner; `func` is the innermost enclosing function (`<module>`
/// at item level).
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub func: String,
    pub message: String,
    pub span: (u32, u32),
    pub severity: Severity,
}

impl Finding {
    /// Diagnostic path: `file::function`.
    pub fn path(&self) -> String {
        format!("{}::{}", self.file, self.func)
    }
}
