//! Deterministic source-file collection for the analyzer CLIs.

use std::path::{Path, PathBuf};

/// Recursively collect every `.rs` file under `dir` into `out`. Silently
/// skips unreadable directories (the caller decides whether an empty scan
/// is an error). Callers sort + dedup the final list for determinism.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
