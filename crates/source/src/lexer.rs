//! A minimal hand-rolled Rust token scanner.
//!
//! The discipline analyzer ([`crate::discipline`]) does not need a real
//! parser — it needs identifiers, punctuation and brace structure with
//! byte-accurate spans, and it needs comments, strings, char literals and
//! lifetimes to *not* masquerade as code. That is exactly what this lexer
//! produces; everything else (numbers, operators it does not care about)
//! is passed through as opaque punctuation or skipped.
//!
//! The repo builds offline, so this stays dependency-free by design: no
//! `syn`, no `proc-macro2`. The cost is that the analyzer is token-level
//! and intra-procedural; the benefit is that it runs on any source state,
//! even mid-refactor files that do not parse yet.

/// One token with its half-open byte span `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: u32,
    pub end: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `lock`, ...). Raw identifiers
    /// (`r#type`) carry their unprefixed name.
    Ident(String),
    /// Single punctuation byte (`{`, `}`, `(`, `)`, `;`, `.`, `:`, ...).
    /// Multi-byte operators arrive as consecutive tokens (`::` is `:`,`:`).
    Punct(u8),
    /// String / char / byte literal (contents discarded).
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    /// Numeric literal (value discarded).
    Number,
}

impl Tok {
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize `src`. Never fails: malformed trailing constructs (an
/// unterminated string or comment) consume the rest of the input as one
/// literal, which is the right behaviour for an analyzer that must keep
/// going on files mid-edit.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let n = b.len();
    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n {
            if b[i + 1] == b'/' {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if b[i + 1] == b'*' {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        let start = i;
        // Raw strings / raw identifiers / byte strings: r"..."; r#"..."#;
        // br#"..."#; b"..."; r#ident.
        if (c == b'r' || c == b'b') && i + 1 < n {
            let (prefix_len, is_raw) = match (c, b.get(i + 1)) {
                (b'r', Some(&b'"')) | (b'r', Some(&b'#')) => (1, true),
                (b'b', Some(&b'"')) => (1, false),
                (b'b', Some(&b'r')) if matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')) => {
                    (2, true)
                }
                _ => (0, false),
            };
            if prefix_len > 0 {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if is_raw && hashes > 0 && j < n && is_ident_start(b[j]) {
                    // Raw identifier `r#type`: emit the bare name.
                    let id_start = j;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident(src[id_start..j].to_string()),
                        start: start as u32,
                        end: j as u32,
                    });
                    i = j;
                    continue;
                }
                if j < n && b[j] == b'"' {
                    // Raw (or plain byte) string: scan for `"` + hashes.
                    j += 1;
                    'scan: while j < n {
                        if b[j] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        if !is_raw && b[j] == b'\\' {
                            j += 1; // skip escaped char in b"..."
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        start: start as u32,
                        end: j as u32,
                    });
                    i = j;
                    continue;
                }
                // `r` / `b` not followed by a string: fall through to the
                // identifier path below.
            }
        }
        // Plain strings.
        if c == b'"' {
            let mut j = i + 1;
            while j < n {
                if b[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if b[j] == b'"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                start: start as u32,
                end: j.min(n) as u32,
            });
            i = j.min(n);
            continue;
        }
        // Lifetimes vs char literals.
        if c == b'\'' {
            // `'static`, `'a` — lifetime when an ident follows and is not
            // closed by another quote (that would be a char like 'a').
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 2;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == b'\'' && j == i + 2 {
                    // 'x' — single-char literal.
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        start: start as u32,
                        end: (j + 1) as u32,
                    });
                    i = j + 1;
                } else {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        start: start as u32,
                        end: j as u32,
                    });
                    i = j;
                }
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '{', ...
            let mut j = i + 1;
            if j < n && b[j] == b'\\' {
                j += 2;
            } else {
                j += 1;
            }
            while j < n && b[j] != b'\'' {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                start: start as u32,
                end: (j + 1).min(n) as u32,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(src[i..j].to_string()),
                start: start as u32,
                end: j as u32,
            });
            i = j;
            continue;
        }
        // Numbers. A `.` continues the number only when followed by a
        // digit, so range expressions (`0..10`) stay three tokens.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                if j < n && (is_ident_continue(b[j])) {
                    j += 1;
                    continue;
                }
                if j + 1 < n && b[j] == b'.' && b[j + 1].is_ascii_digit() && b[j - 1] != b'.' {
                    j += 1;
                    continue;
                }
                break;
            }
            toks.push(Tok {
                kind: TokKind::Number,
                start: start as u32,
                end: j as u32,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation byte.
        toks.push(Tok {
            kind: TokKind::Punct(c),
            start: start as u32,
            end: (i + 1) as u32,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // let g = self.lock(); not code
            /* nested /* block */ lock() */
            let s = "lock() inside a string";
            let r = r#"raw "lock" string"#;
            let c = '{'; let esc = '\'';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let lits = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 1, "'x' is a char literal");
    }

    #[test]
    fn braces_balance_in_real_code() {
        let src = "impl T { fn a(&self) { if x { y(); } } fn b() {} }";
        let toks = lex(src);
        let open = toks.iter().filter(|t| t.is_punct(b'{')).count();
        let close = toks.iter().filter(|t| t.is_punct(b'}')).count();
        assert_eq!(open, close);
        assert_eq!(open, 4);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let src = "let guard = q.lock();";
        let toks = lex(src);
        let lock = toks.iter().find(|t| t.is_ident("lock")).expect("lock tok");
        assert_eq!(&src[lock.start as usize..lock.end as usize], "lock");
    }

    #[test]
    fn ranges_do_not_swallow_numbers() {
        let toks = lex("for i in 0..10 { a[i] = 1.5; }");
        let numbers = toks.iter().filter(|t| t.kind == TokKind::Number).count();
        assert_eq!(numbers, 3, "0, 10 and 1.5");
    }

    #[test]
    fn raw_identifiers_lex_bare() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }
}
