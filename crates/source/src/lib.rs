//! # cse-source — the shared source-analysis foundation
//!
//! The workspace carries two token-level static analyzers over its own
//! Rust source: `cse-conc` (lock discipline for the serving layer) and
//! `cse-audit` (panic-path and contract-drift auditing). Both need the
//! same substrate, which lives here so the next analyzer gets it for
//! free:
//!
//! - [`lexer`] — a dependency-free Rust token scanner with byte-accurate
//!   spans that keeps comments, strings, char literals and lifetimes from
//!   masquerading as code. No `syn`, no `proc-macro2`: the repo builds
//!   offline, and a token-level analyzer keeps working on files mid-edit.
//! - [`scope`] — a brace-scope tracker over the token stream: nesting
//!   depth, innermost enclosing function, enclosing `impl` block target
//!   type, and `#[cfg(test)]` / `#[test]` region detection.
//! - [`finding`] — the carrier type analyzers hand to allowlists and
//!   `cse_diag::Report`.
//! - [`allow`] — the checked-in, justified allowlist shared by `qconc`
//!   and `qaudit`: `(rule, file-suffix, function)` keys, mandatory
//!   justifications, stale-entry detection so lists can only shrink back
//!   to truth.
//! - [`walk`] — deterministic `.rs` file collection for the CLI drivers.

pub mod allow;
pub mod finding;
pub mod lexer;
pub mod scope;
pub mod walk;

pub use allow::{apply_allowlist, parse_allowlist, stale_finding, AllowEntry, Filtered};
pub use finding::Finding;
pub use lexer::{lex, Tok, TokKind};
pub use scope::{BlockKind, ScopeEvent, ScopeTracker};
pub use walk::collect_rs;
